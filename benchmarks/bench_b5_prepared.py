"""B5 — prepared statements and the plan cache: frontend cost to ~zero.

PRIMA's engineering workloads re-run the same molecule query with
different key values (the repeated-query regime of the Wisconsin
tradition).  Every entry point used to re-lex, re-parse, re-validate,
and re-plan the MQL text per call; the prepared redesign does that work
once and binds parameters at pipeline-open time.  This bench measures
the repeated point query of the acceptance shape — ``WHERE key = ?
ORDER BY a LIMIT ?`` — three ways over one database:

* **prepared** — ``db.prepare(...)`` once, then R × ``stmt.execute``
  with fresh bindings.  Gate (hard assertion): the whole phase performs
  **exactly one parse** (``statements_parsed``) and zero plan builds
  after the prepare.
* **re-parsed** — R × ``db.execute(text, ..., use_cache=False)``: the
  old per-call frontend cost.  Gate (regression marker): prepared
  execution must be measurably faster than this baseline.
* **plan cache** — R × plain ``db.query(literal_text)`` of *repeated
  text*: the shared cache under the unprepared path; one parse, R−1
  hits (hard assertion).

A serving scenario re-executes a server-side statement handle
(EXECUTE_PREPARED) and reports the request bytes against re-shipping the
text through plain OPEN messages — the no-text-reshipped protocol win.

Timing-based findings go into the JSON ``regressions`` list, which CI's
bench-smoke job fails on (``benchmarks/check_regressions.py``).
"""

from __future__ import annotations

import time

from _util import emit_bench
from common import print_header, print_table

from repro import Prima

N_ITEMS = 4_000
REPEAT = 1_000
QUERY = "SELECT ALL FROM item WHERE n = ? ORDER BY grp LIMIT ?"


def build_database(n_items: int = N_ITEMS) -> Prima:
    db = Prima()
    db.execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, "
               "n: INTEGER, grp: INTEGER) KEYS_ARE (n)")
    for i in range(n_items):
        db.insert_atom("item", {"n": i, "grp": i % 97})
    return db


def _best_of(rounds: int, run) -> tuple[float, dict[str, object]]:
    """Fastest wall-time of ``rounds`` runs; stats come from the last."""
    best_ms = None
    stats: dict[str, object] = {}
    for _ in range(max(rounds, 1)):
        wall_ms, stats = run()
        if best_ms is None or wall_ms < best_ms:
            best_ms = wall_ms
    return best_ms, stats


def run_prepared(db: Prima, repeat: int = REPEAT,
                 rounds: int = 3) -> dict[str, object]:
    stmt = db.prepare(QUERY)

    def once() -> tuple[float, dict[str, object]]:
        db.reset_accounting()
        started = time.perf_counter()
        delivered = 0
        for i in range(repeat):
            delivered += len(stmt.execute(i % N_ITEMS, 5).materialize())
        wall_ms = (time.perf_counter() - started) * 1000.0
        report = db.io_report()
        return wall_ms, {
            "delivered": delivered,
            "statements_parsed": report.get("statements_parsed", 0),
            "statements_planned": report.get("statements_planned", 0),
            "prepared_executions": report.get("prepared_executions", 0),
        }

    wall_ms, stats = _best_of(rounds, once)
    return {"mode": "prepared", "wall_ms": round(wall_ms, 3),
            "per_exec_us": round(wall_ms * 1000.0 / repeat, 2), **stats}


def run_reparsed(db: Prima, repeat: int = REPEAT,
                 rounds: int = 3) -> dict[str, object]:
    def once() -> tuple[float, dict[str, object]]:
        db.reset_accounting()
        started = time.perf_counter()
        delivered = 0
        for i in range(repeat):
            result = db.execute(QUERY, i % N_ITEMS, 5, use_cache=False)
            delivered += len(result.materialize())
        wall_ms = (time.perf_counter() - started) * 1000.0
        report = db.io_report()
        return wall_ms, {
            "delivered": delivered,
            "statements_parsed": report.get("statements_parsed", 0),
            "statements_planned": report.get("statements_planned", 0),
        }

    wall_ms, stats = _best_of(rounds, once)
    return {"mode": "re-parsed", "wall_ms": round(wall_ms, 3),
            "per_exec_us": round(wall_ms * 1000.0 / repeat, 2), **stats}


def run_cached_text(db: Prima, repeat: int = REPEAT,
                    rounds: int = 3) -> dict[str, object]:
    text = "SELECT ALL FROM item WHERE n = 123 ORDER BY grp LIMIT 5"
    db.data.plan_cache.clear()

    def once() -> tuple[float, dict[str, object]]:
        db.data.plan_cache.clear()
        db.reset_accounting()
        started = time.perf_counter()
        delivered = 0
        for _ in range(repeat):
            delivered += len(db.query(text).materialize())
        wall_ms = (time.perf_counter() - started) * 1000.0
        report = db.io_report()
        return wall_ms, {
            "delivered": delivered,
            "statements_parsed": report.get("statements_parsed", 0),
            "plan_cache_hits": report.get("plan_cache_hits", 0),
            "plan_cache_misses": report.get("plan_cache_misses", 0),
        }

    wall_ms, stats = _best_of(rounds, once)
    return {"mode": "plan cache (repeated text)",
            "wall_ms": round(wall_ms, 3),
            "per_exec_us": round(wall_ms * 1000.0 / repeat, 2), **stats}


def run_serving(db: Prima, repeat: int = 200) -> dict[str, object]:
    """EXECUTE_PREPARED vs re-shipped OPEN: request bytes per execute."""
    manager = db.serve()
    session = manager.open("bench")
    stmt = session.prepare(QUERY)
    stmt.execute(0, 5).materialize()          # warm the statement handle
    before = manager.stats.snapshot()["bytes_sent"]
    for i in range(repeat):
        stmt.execute(i % N_ITEMS, 5).materialize()
    prepared_bytes = manager.stats.snapshot()["bytes_sent"] - before
    before = manager.stats.snapshot()["bytes_sent"]
    for i in range(repeat):
        session.query(QUERY, args=(i % N_ITEMS, 5)).materialize()
    open_bytes = manager.stats.snapshot()["bytes_sent"] - before
    session.close()
    return {
        "repeat": repeat,
        "execute_prepared_bytes": prepared_bytes,
        "reshipped_open_bytes": open_bytes,
        "bytes_saved_per_exec": round(
            (open_bytes - prepared_bytes) / repeat, 1),
    }


def report(n_items: int = N_ITEMS, repeat: int = REPEAT) -> None:
    print_header(
        "B5 — prepared statements / plan cache (repeated point query)",
        f"{QUERY!r}, {repeat:,} executions over {n_items:,} item atoms",
    )
    regressions: list[str] = []
    db = build_database(n_items)
    prepared = run_prepared(db, repeat)
    reparsed = run_reparsed(db, repeat)
    cached = run_cached_text(db, repeat)
    serving = run_serving(db)

    rows = [prepared, reparsed, cached]
    print_table(
        ["mode", "wall ms", "µs/exec", "parsed", "planned"],
        [[r["mode"], r["wall_ms"], r["per_exec_us"],
          r.get("statements_parsed"), r.get("statements_planned", "-")]
         for r in rows],
    )
    print()
    print(f"serving: EXECUTE_PREPARED request stream "
          f"{serving['execute_prepared_bytes']:,} B vs re-shipped OPEN "
          f"{serving['reshipped_open_bytes']:,} B "
          f"({serving['bytes_saved_per_exec']} B saved/exec)")

    # Hard gates — deterministic counter properties of the redesign.
    assert prepared["statements_parsed"] == 0, (
        f"{repeat} prepared re-executions parsed "
        f"{prepared['statements_parsed']} times (expected 0 after the "
        f"single prepare — 1 parse per statement total)"
    )
    assert prepared["statements_planned"] == 0, (
        f"prepared re-executions re-planned "
        f"{prepared['statements_planned']} times"
    )
    assert prepared["delivered"] == repeat
    assert reparsed["statements_parsed"] == repeat
    assert cached["statements_parsed"] == 1
    assert cached["plan_cache_hits"] == repeat - 1
    assert serving["execute_prepared_bytes"] < serving["reshipped_open_bytes"]

    # Timing gate — a regression marker, CI fails on it.
    speedup = reparsed["wall_ms"] / max(prepared["wall_ms"], 1e-9)
    if speedup <= 1.0:
        regressions.append(
            f"prepared execution ({prepared['wall_ms']} ms) not faster "
            f"than re-parsed execution ({reparsed['wall_ms']} ms)"
        )
    print(f"\nspeedup prepared vs re-parsed: {speedup:.2f}x")

    emit_bench("bench_b5_prepared", {
        "bench": "b5_prepared",
        "query": QUERY,
        "n_molecules": n_items,
        "repeat": repeat,
        "modes": rows,
        "serving": serving,
        "speedup_prepared_vs_reparsed": round(speedup, 2),
    }, db=db, regressions=regressions)


# ---------------------------------------------------------------------------
# pytest entries (kept small so the tier-1 run stays fast)
# ---------------------------------------------------------------------------

def test_prepared_parses_once() -> None:
    db = build_database(300)
    outcome = run_prepared(db, repeat=50, rounds=1)
    assert outcome["statements_parsed"] == 0
    assert outcome["statements_planned"] == 0
    assert outcome["delivered"] == 50


def test_cache_hits_for_repeated_text() -> None:
    db = build_database(300)
    outcome = run_cached_text(db, repeat=20, rounds=1)
    assert outcome["statements_parsed"] == 1
    assert outcome["plan_cache_hits"] == 19


if __name__ == "__main__":
    report()
