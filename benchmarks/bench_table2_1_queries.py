"""E-T2.1 — Table 2.1: the four hand-picked query examples, verbatim.

Runs queries (a)-(d) of the paper's Table 2.1 against a generated BREP
database (seeds brep_no=1713 and solid_no=4711 planted by the generator)
and reports result shapes, chosen plans, and latencies.
"""

from __future__ import annotations

import sys
import pathlib
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import brep_database, print_header, print_table

QUERIES = {
    "a (vertical, network)": (
        "SELECT ALL FROM brep-face-edge-point "
        "WHERE brep_no = 1713 (* qualification *)"
    ),
    "b (vertical, recursive)": (
        "SELECT ALL FROM piece_list (* pre-defined molecule type *) "
        "WHERE piece_list (0).solid_no = 4711 (* seed qualification *)"
    ),
    "c (horizontal + projection)": (
        "SELECT solid_no, description (* unqualified projection *) "
        "FROM solid WHERE sub = EMPTY"
    ),
    "d (branching + quantifier + qualified projection)": """
        SELECT edge, (point,
         face := SELECT face_id, square_dim
                 FROM face (* qualified projection q3, p2 *)
                 WHERE square_dim > 1.9E1)
        FROM brep-edge (face, point)
        WHERE brep_no = 1713 (* qualification q1 *)
        AND EXISTS_AT_LEAST (2) edge: edge.length > 1.0E0
        (* quantified restriction q2 *)
    """,
}


def run_query(db, mql: str):
    started = time.perf_counter()
    result = db.query(mql)
    result.materialize()       # drain the lazy cursor inside the timing
    elapsed_ms = 1000 * (time.perf_counter() - started)
    return result, elapsed_ms


def report(n_solids: int = 16):
    handles = brep_database(n_solids)
    db = handles.db
    print_header(f"Table 2.1 — the four query examples "
                 f"({n_solids}-solid BREP database)")
    rows = []
    for name, mql in QUERIES.items():
        result, elapsed_ms = run_query(db, mql)
        root_plan = db.explain(mql).splitlines()[1].strip()
        rows.append([
            name,
            len(result),
            result.atom_count(),
            f"{elapsed_ms:.1f} ms",
            root_plan.replace("root: ", ""),
        ])
    print_table(["query", "molecules", "atoms", "latency", "root access"],
                rows)
    molecule = db.query(QUERIES["b (vertical, recursive)"])[0]
    print(f"\npiece_list(4711): assembly of {molecule.atom_count()} solids, "
          f"recursion depth {molecule.depth() - 1}")


# -- pytest-benchmark targets ---------------------------------------------------

def _db():
    return brep_database(8).db


def test_query_a_vertical(benchmark):
    db = _db()
    result = benchmark(db.query, QUERIES["a (vertical, network)"])
    assert len(result) == 1 and result[0].atom_count() == 27


def test_query_b_recursive(benchmark):
    db = _db()
    result = benchmark(db.query, QUERIES["b (vertical, recursive)"])
    assert len(result) == 1


def test_query_c_horizontal(benchmark):
    db = _db()
    result = benchmark(db.query, QUERIES["c (horizontal + projection)"])
    assert len(result) == 8


def test_query_d_miscellaneous(benchmark):
    db = _db()
    result = benchmark(
        db.query,
        QUERIES["d (branching + quantifier + qualified projection)"])
    assert len(result) == 1


if __name__ == "__main__":
    report()
