"""A6 — deferred update limits the immediate overhead of redundancy (3.2).

An atom type carrying several redundant structures (two sort orders, one
partition, one cluster membership) is updated in bursts.  Compared are:

* immediate propagation — every modify refreshes all copies on the spot
  (propagate after each statement);
* deferred propagation — modifies touch only the base record, the
  redundant copies are refreshed once at commit.

Deferred wins twice: the modify latency itself, and re-modified atoms
(hot-spot updates) collapse into a single refresh.
"""

from __future__ import annotations

import sys
import pathlib
import random
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import print_header, print_table

from repro import Prima

N_ATOMS = 150


def make_db() -> Prima:
    db = Prima()
    db.execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, x: REAL, "
               "y: REAL, note: CHAR_VAR)")
    db.query("SELECT ALL FROM part")
    for index in range(N_ATOMS):
        db.insert_atom("part", {"x": float(index), "y": float(-index),
                                "note": f"part {index}"})
    db.execute_ldl("""
        CREATE SORT ORDER part_x ON part (x);
        CREATE SORT ORDER part_y ON part (y);
        CREATE PARTITION part_note ON part (note)
    """)
    db.commit()
    return db


def run(n_updates: int, hot_fraction: float, immediate: bool):
    db = make_db()
    surrogates = list(db.access.atoms.addresses.surrogates("part"))
    rng = random.Random(5)
    hot = surrogates[:max(1, int(len(surrogates) * 0.1))]
    started = time.perf_counter()
    for step in range(n_updates):
        target = rng.choice(hot) if rng.random() < hot_fraction \
            else rng.choice(surrogates)
        db.modify_atom(target, {"x": float(step)})
        if immediate:
            db.access.propagate_deferred()
    modify_ms = 1000 * (time.perf_counter() - started)
    started = time.perf_counter()
    refreshes = db.access.propagate_deferred()
    commit_ms = 1000 * (time.perf_counter() - started)
    propagated = db.access.counters.get("deferred_propagated")
    return modify_ms, commit_ms, propagated, refreshes


def report():
    print_header("A6 — immediate vs. deferred propagation of redundancy",
                 "3 redundant structures, hot-spot update bursts")
    rows = []
    for n_updates, hot_fraction in ((150, 0.0), (150, 0.8), (400, 0.8)):
        imm_modify, _imm_commit, imm_refreshes, _ = run(
            n_updates, hot_fraction, immediate=True)
        def_modify, def_commit, def_refreshes, _ = run(
            n_updates, hot_fraction, immediate=False)
        rows.append([
            n_updates, f"{hot_fraction:.0%}",
            f"{imm_modify:.0f}", imm_refreshes,
            f"{def_modify:.0f} + {def_commit:.0f}", def_refreshes,
        ])
    print_table(
        ["updates", "hot share", "immediate: ms", "refreshes",
         "deferred: modify + commit ms", "refreshes"],
        rows,
    )
    print("\nShape check: deferred keeps the modify path cheap and, under")
    print("hot spots, collapses repeated updates into one refresh per copy.")


def test_deferred_fewer_refreshes_under_hotspots(benchmark):
    def run_both():
        immediate = run(120, 0.9, immediate=True)
        deferred = run(120, 0.9, immediate=False)
        return immediate, deferred

    immediate, deferred = benchmark(run_both)
    assert deferred[2] < immediate[2]      # fewer refreshes
    assert deferred[0] < immediate[0]      # cheaper modify path


if __name__ == "__main__":
    report()
