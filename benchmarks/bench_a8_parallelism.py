"""A8 — semantic parallelism in single user operations (paper, section 4).

Decomposes one molecule query into units of work and sweeps the simulated
processor count; reports the speedup curve for a conflict-free retrieval
and for a conflicting workload (all DUs touching one shared atom set),
demonstrating that the benefit hinges on conflict-freedom at the level of
decomposition.
"""

from __future__ import annotations

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import brep_database, vlsi_database, print_header, print_table

from repro.parallel import SemanticDecomposer, simulate

PROCESSORS = (1, 2, 4, 8, 16)


def decomposed_units(db, query: str):
    decomposer = SemanticDecomposer(db.data)
    plan, units = decomposer.decompose_select(query)
    decomposer.run_all(plan, units)
    return units


def report():
    print_header("A8 — speedup of decomposed user operations",
                 "simulated multi-processor PRIMA (cost = atoms read)")
    workloads = {
        "BREP: all brep_obj molecules (16 solids)": (
            brep_database(16).db, "SELECT ALL FROM brep-face-edge-point"),
        "VLSI: all netlist molecules": (
            vlsi_database(32).db, "SELECT ALL FROM netlist"),
        "BREP: all piece_list molecules": (
            brep_database(16).db, "SELECT ALL FROM piece_list"),
    }
    rows = []
    for name, (db, query) in workloads.items():
        units = decomposed_units(db, query)
        speedups = []
        for processors in PROCESSORS:
            result = simulate(units, processors)
            speedups.append(f"{result.speedup:.2f}")
        rows.append([name, len(units)] + speedups)
    print_table(["workload", "DUs"] + [f"P={p}" for p in PROCESSORS], rows)

    # Conflicting units serialise: force write sets onto every DU.
    db, query = workloads["BREP: all brep_obj molecules (16 solids)"]
    units = decomposed_units(db, query)
    shared = next(iter(units[0].read_set))
    for unit in units:
        unit.write_set = {shared}
    conflicted = simulate(units, 8)
    print(f"\nwith an artificial shared write target: speedup "
          f"{conflicted.speedup:.2f}x on 8 processors "
          f"({conflicted.conflict_edges} conflict edges) — semantic")
    print("parallelism requires conflict-freedom at decomposition level.")


def test_speedup_curve_monotone(benchmark):
    db = brep_database(8).db

    def run():
        units = decomposed_units(db, "SELECT ALL FROM brep-face-edge-point")
        return [simulate(units, p).speedup for p in (1, 2, 4)]

    speedups = benchmark(run)
    assert speedups[0] <= speedups[1] <= speedups[2]
    assert speedups[2] > 2.0


if __name__ == "__main__":
    report()
