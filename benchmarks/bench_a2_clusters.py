"""A2 — atom clusters speed up construction of frequent molecules (3.2).

Sweeps the database size and measures vertical access (the brep_obj
molecule) with and without an atom cluster: simulated I/O time, block
transfers, and the atoms-read shape.  The cluster should win by a roughly
constant factor per molecule, paying one chained transfer instead of one
positioning per atom region.
"""

from __future__ import annotations

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import cold_buffer, print_header, print_table

from repro import Prima
from repro.workloads import brep

QUERY = "SELECT ALL FROM brep-face-edge-point"


def run(n_solids: int, with_cluster: bool):
    db = Prima(buffer_capacity=32 * 8192)
    handles = brep.generate(db, n_solids=n_solids)
    if with_cluster:
        db.execute_ldl("CREATE ATOM_CLUSTER bc FROM brep-face-edge-point")
        db.commit()
    cold_buffer(db)
    db.reset_accounting()
    result = db.query(QUERY)
    molecules = result.materialize()   # drain the cursor before counters
    report_data = db.io_report()
    assert len(molecules) == n_solids
    return report_data


def report():
    print_header("A2 — molecule construction with / without atom clusters",
                 QUERY)
    rows = []
    for n_solids in (2, 4, 8, 16):
        plain = run(n_solids, with_cluster=False)
        clustered = run(n_solids, with_cluster=True)
        speedup = plain["io_time_ms"] / max(clustered["io_time_ms"], 1e-9)
        rows.append([
            n_solids,
            f"{plain['io_time_ms']:.0f}",
            f"{clustered['io_time_ms']:.0f}",
            f"{speedup:.1f}x",
            plain.get("blocks_read", 0),
            clustered.get("blocks_read", 0),
            clustered.get("molecules_from_cluster", 0),
        ])
    print_table(
        ["solids", "I/O ms (traversal)", "I/O ms (cluster)", "speedup",
         "blocks (traversal)", "blocks (cluster)", "served from cluster"],
        rows,
    )
    print("\nShape check: the cluster wins by a stable factor; every")
    print("molecule is served from its materialised cluster record.")


def test_cluster_speeds_up_vertical_access(benchmark):
    def run_both():
        return run(4, False), run(4, True)
    plain, clustered = benchmark(run_both)
    assert clustered["io_time_ms"] < plain["io_time_ms"]
    assert clustered["molecules_from_cluster"] == 4


if __name__ == "__main__":
    report()
