"""CI gate: fail when any benchmark JSON reports a regression marker.

Benches emit their measurements via :func:`common.emit_json`; a bench
that detects a (typically timing-based) regression records it under the
``"regressions"`` key of its payload instead of raising — deterministic
structural properties stay hard assertions inside the bench itself.
This script scans a results directory and exits non-zero when any
payload carries a non-empty marker list, so the bench-smoke job *fails*
on a regression rather than merely uploading the evidence.

Usage: ``python benchmarks/check_regressions.py [results_dir]``
(default: ``benchmarks/results`` or ``$BENCH_RESULTS_DIR``).
"""

from __future__ import annotations

import glob
import json
import os
import sys


def scan(directory: str) -> int:
    paths = sorted(glob.glob(os.path.join(directory, "*.json")))
    if not paths:
        print(f"no benchmark JSON found under {directory!r}")
        return 1
    failures = 0
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        markers = payload.get("regressions") or []
        if markers:
            failures += 1
            print(f"REGRESSION {path}:")
            for marker in markers:
                print(f"  - {marker}")
        else:
            print(f"ok {path}")
    return 1 if failures else 0


if __name__ == "__main__":
    results_dir = sys.argv[1] if len(sys.argv) > 1 else os.environ.get(
        "BENCH_RESULTS_DIR",
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "results"),
    )
    sys.exit(scan(results_dir))
