"""A9 — set-orientation cuts workstation-host communication (section 4).

Checkout of engineering objects over the simulated LAN: the set-oriented
MAD interface ships whole molecule sets in one message pair; the
record-at-a-time baseline pays one round trip per atom.  Sweeps the
checked-out object size and reports messages, bytes, and simulated
communication time, plus the checkin cost after local editing.
"""

from __future__ import annotations

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import print_header, print_table

from repro import Prima
from repro.coupling import PrimaServer, Workstation
from repro.workloads import brep


def run(n_solids: int, query: str):
    db = Prima()
    brep.generate(db, n_solids=n_solids)

    set_server = PrimaServer(db)
    set_station = Workstation(set_server)
    result = set_station.checkout(query, set_oriented=True)

    rec_server = PrimaServer(db)
    rec_station = Workstation(rec_server)
    rec_station.checkout(query, set_oriented=False)

    return result, set_server.stats, rec_server.stats, set_station


def report():
    print_header("A9 — set-oriented vs. record-at-a-time checkout")
    rows = []
    for n_solids, query, label in (
        (2, "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713",
         "1 molecule"),
        (4, "SELECT ALL FROM brep-face-edge-point", "4 molecules"),
        (8, "SELECT ALL FROM brep-face-edge-point", "8 molecules"),
    ):
        result, set_stats, rec_stats, _station = run(n_solids, query)
        rows.append([
            label, result.atom_count(),
            set_stats.messages, rec_stats.messages,
            f"{set_stats.comm_time_ms:.0f}", f"{rec_stats.comm_time_ms:.0f}",
            f"{rec_stats.comm_time_ms / max(set_stats.comm_time_ms, 1e-9):.0f}x",
        ])
    print_table(
        ["checkout", "atoms", "msgs (set)", "msgs (record)",
         "comm ms (set)", "comm ms (record)", "reduction"],
        rows,
    )

    # local work + checkin
    db = Prima()
    handles = brep.generate(db, n_solids=4)
    server = PrimaServer(db)
    station = Workstation(server)
    molecule = station.checkout(
        "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713")[0]
    before = server.stats.messages
    for edge in molecule.component_list("face")[0].component_list("edge"):
        station.read(edge.surrogate)
        station.modify(edge.surrogate, {"length": 1.5})
    local_msgs = server.stats.messages - before
    applied = station.commit()
    checkin_msgs = server.stats.messages - before
    print(f"\nlocal work: {local_msgs} messages for "
          f"{station.buffer.local_reads + station.buffer.local_writes} "
          f"local operations; checkin of {applied} modified atoms: "
          f"{checkin_msgs} messages")
    print("Shape check: locality of reference is served by the object")
    print("buffer; the host sees one message pair per commit.")


def test_set_orientation_reduces_messages(benchmark):
    def run_one():
        return run(2, "SELECT ALL FROM brep-face-edge-point "
                      "WHERE brep_no = 1713")
    _result, set_stats, rec_stats, _station = benchmark(run_one)
    assert set_stats.messages == 2
    assert rec_stats.messages > 20 * set_stats.messages


if __name__ == "__main__":
    report()
