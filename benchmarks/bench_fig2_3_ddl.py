"""E-F2.3 — Fig. 2.3: the solid representation expressed in the MAD-DDL.

Compiles the figure's DDL verbatim (five atom types with the extended type
concept — IDENTIFIER, REF_TO, SET_OF with cardinalities, RECORD, HULL_DIM —
plus the four molecule type definitions including the recursive
piece_list) and reports what landed in the catalog, then measures DDL
compile throughput.
"""

from __future__ import annotations

import sys
import pathlib
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import print_header, print_table

from repro import Prima
from repro.workloads.brep import FIG_2_3_DDL, FIG_2_3_MOLECULE_TYPES


def compile_schema() -> Prima:
    db = Prima()
    db.execute_script(FIG_2_3_DDL)
    db.execute_script(FIG_2_3_MOLECULE_TYPES)
    return db


def report():
    print_header("Fig. 2.3 — solid representation in the MAD-DDL",
                 "catalog contents after compiling the figure verbatim")
    db = compile_schema()
    rows = []
    for name in db.schema.atom_type_names():
        atom_type = db.schema.atom_type(name)
        refs = atom_type.reference_attrs()
        rows.append([
            name,
            len(atom_type.attributes),
            len(refs),
            ", ".join(atom_type.keys) or "-",
        ])
    print_table(["atom type", "attributes", "reference attrs", "KEYS_ARE"],
                rows)

    print()
    rows = []
    for name in db.catalog.names():
        molecule_type = db.catalog.get(name)
        assert molecule_type is not None
        rows.append([name, repr(molecule_type.root),
                     "yes" if molecule_type.recursive else "no"])
    print_table(["molecule type", "structure", "recursive"], rows)

    associations = list(db.schema.associations())
    kinds = {}
    for assoc in associations:
        kinds[assoc.kind] = kinds.get(assoc.kind, 0) + 1
    print(f"\nassociation directions: {len(associations)} "
          f"({', '.join(f'{k}: {v}' for k, v in sorted(kinds.items()))})")

    started = time.perf_counter()
    runs = 20
    for _ in range(runs):
        compile_schema()
    elapsed = time.perf_counter() - started
    print(f"DDL compile throughput: {runs / elapsed:,.1f} schemas/s "
          f"({1000 * elapsed / runs:.1f} ms per full Fig. 2.3 schema)")


def test_fig_2_3_ddl_compiles(benchmark):
    db = benchmark(compile_schema)
    assert db.schema.atom_type_names() == \
        ["brep", "edge", "face", "point", "solid"]
    assert db.catalog.names() == \
        ["brep_obj", "edge_obj", "face_obj", "piece_list"]


if __name__ == "__main__":
    report()
