"""B10 — live queries: skip cost, notify latency, event-loop lag.

PR 10 adds server-pushed subscriptions with epoch-delta invalidation
(:mod:`repro.live`).  Three properties carry the design and are gated
here (markers land in the JSON ``regressions`` list CI fails on):

* **skip gate** — a commit to a type outside every subscription's
  dependency set must cost one set lookup, *never* a re-evaluation:
  100 commits to an unrelated type with a ``deliver="requery"``
  subscription registered must bump ``invalidations_skipped`` 100
  times and ``subscription_requeries`` zero times;
* **latency gate** — the commit→client-NOTIFY-frame path over the
  daemon socket (typed delta → index → send queue → wire → client
  skim) must stay interactive: median under ``LATENCY_CAP_MS``
  (generous — the gate catches a stall, not a slow box);
* **lag gate** — with ``FLEET`` socket subscribers all notified per
  commit, the daemon's event loop must keep turning: mean
  ``event_loop_lag_ms`` under ``LAG_CAP_MS``, and every subscriber
  receives every frame with an identical payload.
"""

from __future__ import annotations

import statistics
import time

from _util import emit_bench
from common import print_header, print_table

import repro
from repro.serve import PrimaDaemon, SessionManager

N_UNRELATED = 100
N_LATENCY = 20
FLEET = 32
LATENCY_CAP_MS = 250.0
LAG_CAP_MS = 100.0


def build_instance() -> repro.Prima:
    db = repro.Prima()
    db.execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, "
               "n: INTEGER, grp: INTEGER) KEYS_ARE (n)")
    db.execute("CREATE ATOM_TYPE noise (noise_id: IDENTIFIER, "
               "k: INTEGER) KEYS_ARE (k)")
    for i in range(60):
        db.insert_atom("part", {"n": i, "grp": i % 4})
    return db


def bench_skip_cost(db, conn) -> dict:
    """Commits to an unrelated type: set lookups, zero re-evaluations."""
    conn.subscribe("SELECT ALL FROM part WHERE grp = 1",
                   deliver="requery")
    db.reset_accounting()
    started = time.perf_counter()
    for i in range(N_UNRELATED):
        db.insert_atom("noise", {"k": 10_000 + i})
    wall_ms = (time.perf_counter() - started) * 1000.0
    report = db.io_report()
    return {
        "commits": N_UNRELATED,
        "wall_ms": round(wall_ms, 3),
        "invalidations_skipped": report.get("invalidations_skipped", 0),
        "invalidations_fired": report.get("invalidations_fired", 0),
        "subscription_requeries": report.get("subscription_requeries", 0),
    }


def bench_notify_latency(db, conn) -> dict:
    """Commit → NOTIFY frame at the client, over the daemon socket."""
    conn.subscribe("SELECT ALL FROM part")
    conn.notifications(timeout=0.2)   # drain anything pending
    latencies = []
    for i in range(N_LATENCY):
        committed = time.perf_counter()
        db.insert_atom("part", {"n": 1000 + i, "grp": 2})
        frames = []
        while not frames:
            frames = conn.notifications(timeout=1.0)
        latencies.append((time.perf_counter() - committed) * 1000.0)
    return {
        "commits": N_LATENCY,
        "median_ms": round(statistics.median(latencies), 3),
        "p90_ms": round(sorted(latencies)[int(0.9 * len(latencies))], 3),
        "max_ms": round(max(latencies), 3),
    }


def bench_fleet_lag(db, manager, daemon) -> dict:
    """32 subscribers, every commit fans out to all of them."""
    conns = [daemon.connect(name=f"sub-{i}") for i in range(FLEET)]
    try:
        for conn in conns:
            conn.subscribe("SELECT ALL FROM part")
        fanned = 0
        payload_sets = set()
        for i in range(5):
            db.insert_atom("part", {"n": 2000 + i, "grp": 3})
        for conn in conns:
            frames = []
            deadline = time.monotonic() + 10.0
            while len(frames) < 5 and time.monotonic() < deadline:
                frames.extend(conn.notifications(timeout=0.25))
            fanned += len(frames)
            payload_sets.add(tuple(
                (f.epoch, f.types, f.catalog_changed) for f in frames))
        lag = manager.metrics.histograms().get("event_loop_lag_ms")
        mean_lag = (lag["sum"] / lag["count"]) if lag and lag["count"] \
            else 0.0
        return {
            "subscribers": FLEET,
            "frames_delivered": fanned,
            "frames_expected": FLEET * 5,
            "identical_payloads": len(payload_sets) == 1,
            "event_loop_lag_mean_ms": round(mean_lag, 3),
            "lag_samples": lag["count"] if lag else 0,
        }
    finally:
        for conn in conns:
            conn.close()


def main() -> None:
    print_header("B10 — live queries",
                 "epoch-delta invalidation, push latency, fleet fan-out")
    db = build_instance()
    manager = SessionManager(db, max_sessions=FLEET + 4)
    regressions: list[str] = []
    with PrimaDaemon(manager, reap_interval=0.05) as daemon:
        with daemon.connect(name="skip") as conn:
            skip = bench_skip_cost(db, conn)
        with daemon.connect(name="latency") as conn:
            latency = bench_notify_latency(db, conn)
        fleet = bench_fleet_lag(db, manager, daemon)

    print_table(
        ["figure", "value"],
        [["unrelated commits", skip["commits"]],
         ["  skipped / requeried", f"{skip['invalidations_skipped']} / "
                                   f"{skip['subscription_requeries']}"],
         ["notify median / p90 (ms)", f"{latency['median_ms']} / "
                                      f"{latency['p90_ms']}"],
         ["fleet frames", f"{fleet['frames_delivered']} / "
                          f"{fleet['frames_expected']}"],
         ["event-loop lag mean (ms)", fleet["event_loop_lag_mean_ms"]]],
    )

    if skip["subscription_requeries"] != 0:
        regressions.append(
            f"unrelated commits re-evaluated "
            f"{skip['subscription_requeries']} time(s) (want 0)")
    if skip["invalidations_skipped"] < N_UNRELATED:
        regressions.append(
            f"only {skip['invalidations_skipped']}/{N_UNRELATED} "
            f"unrelated commits counted as skips")
    if latency["median_ms"] > LATENCY_CAP_MS:
        regressions.append(
            f"median notify latency {latency['median_ms']}ms "
            f"> {LATENCY_CAP_MS}ms")
    if fleet["frames_delivered"] != fleet["frames_expected"]:
        regressions.append(
            f"fleet delivered {fleet['frames_delivered']} frames, "
            f"expected {fleet['frames_expected']}")
    if not fleet["identical_payloads"]:
        regressions.append("fleet subscribers saw divergent payloads")
    if fleet["event_loop_lag_mean_ms"] > LAG_CAP_MS:
        regressions.append(
            f"mean event-loop lag {fleet['event_loop_lag_mean_ms']}ms "
            f"> {LAG_CAP_MS}ms")

    emit_bench("b10_live", {
        "skip_cost": skip,
        "notify_latency": latency,
        "fleet": fleet,
    }, db=db, regressions=regressions)


if __name__ == "__main__":
    main()
