"""B6 — snapshot reads + process-parallel construction: lock-free scaling.

PR 6 retired the session-wide ``engine_lock``: read pipelines pin a
copy-on-write snapshot epoch (:mod:`repro.access.snapshots`) instead of
taking type-level S locks, and the serving layer serialises only writers
behind the narrow :class:`~repro.util.rwlock.ReadWriteLock`.  The
construction fabric gained a ``fork``-based process pool
(:mod:`repro.parallel`) whose children build molecules against their
copy-on-write engine images.

On a single-core CI box wall-clock scaling is noise, so the gates are
**structural** (hard assertions + regression markers) and the timings
ride along as data:

* snapshot reads acquire **zero** type-level S locks (the lock table
  counts grants per mode);
* readers make progress while a peer session *retains* a type-level X
  (Moss inheritance keeps the lock until session close — under PR 5
  semantics every such read deadlocked or raised);
* the engine lock's reader side genuinely overlaps
  (``max_concurrent_readers`` across a session fan-out);
* a cursor pinned before a write never sees it (isolation under churn);
* the process pool produces results identical to threads and serial,
  on **distinct worker PIDs**.

Comparative misses land in the JSON ``regressions`` list, which CI's
bench-smoke job fails on (``benchmarks/check_regressions.py``).
"""

from __future__ import annotations

import os
import threading
import time

from _util import emit_bench
from common import print_header, print_table

from repro import Prima
from repro.serve import ServeLoop

N_ITEMS = 6_000
GROUPS = 8
SESSION_SWEEP = (1, 2, 4, 8)
FETCH_SIZE = 32


def build_database() -> Prima:
    db = Prima()
    db.execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, "
               "n: INTEGER, grp: INTEGER) KEYS_ARE (n)")
    for i in range(N_ITEMS):
        db.insert_atom("item", {"n": i, "grp": i % GROUPS})
    db.execute_ldl("CREATE SORT ORDER item_so ON item (n)")
    return db


def read_scaling(db: Prima, regressions: list[str]) -> dict[str, object]:
    """Sessions sweep: throughput as data, zero S grants as the gate."""
    rows_expected = N_ITEMS // GROUPS
    sweep = []
    for sessions in SESSION_SWEEP:
        manager = db.serve(max_sessions=sessions, admission="queue")
        locks = manager.txns.locks
        s_before, x_before = locks.grants["S"], locks.grants["X"]

        def job(group: int):
            def run(session):
                result = session.query(
                    f"SELECT ALL FROM item WHERE grp = {group % GROUPS}",
                    fetch_size=FETCH_SIZE)
                return len([m for m in result])
            return run

        started = time.perf_counter()
        counts = ServeLoop(manager).run(
            [job(g) for g in range(sessions)])
        elapsed = time.perf_counter() - started
        if counts != [rows_expected] * sessions:
            regressions.append(
                f"{sessions} sessions delivered {counts} rows "
                f"(want {rows_expected} each)"
            )
        s_grants = locks.grants["S"] - s_before
        if s_grants:
            regressions.append(
                f"{sessions}-session read sweep took {s_grants} "
                f"type-level S locks (snapshot reads must take none)"
            )
        assert s_grants == 0, "snapshot reads acquired S locks"
        assert locks.grants["X"] == x_before, "a read acquired an X lock"
        sweep.append({
            "sessions": sessions,
            "rows_per_session": rows_expected,
            "elapsed_s": round(elapsed, 4),
            "rows_per_s": round(sessions * rows_expected / elapsed, 1),
            "s_lock_grants": s_grants,
            "peak_concurrent_readers":
                manager.engine.max_concurrent_readers,
        })
    return {"sweep": sweep}


def reader_overlap(db: Prima, regressions: list[str]) -> dict[str, object]:
    """Structural proof that the reader side is shared: a fan-out of
    threads meets inside the engine lock (impossible under PR 5's
    engine RLock, where ``max_concurrent_readers`` could never pass 1).
    """
    manager = db.serve(max_sessions=4, admission="queue")
    fanout = 4
    barrier = threading.Barrier(fanout, timeout=30)

    def read() -> None:
        with manager.engine.reader():
            barrier.wait()

    threads = [threading.Thread(target=read, daemon=True)
               for _ in range(fanout)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    peak = manager.engine.max_concurrent_readers
    if peak < 2:
        regressions.append(
            f"engine lock reader side never overlapped (peak {peak})"
        )
    assert peak >= 2, "readers serialised inside the engine lock"
    return {"fanout": fanout, "peak_concurrent_readers": peak}


def reads_under_retained_x(db: Prima,
                           regressions: list[str]) -> dict[str, object]:
    """Readers progress while a peer session retains type-level X."""
    manager = db.serve(max_sessions=4, admission="queue")
    writer = manager.open(name="writer")
    writer.execute(f"INSERT item (n = {N_ITEMS + 1})")
    delivered = []
    try:
        for g in range(3):
            reader = manager.open()
            rows = reader.query(f"SELECT ALL FROM item WHERE grp = {g}",
                                fetch_size=FETCH_SIZE)
            delivered.append(len([m for m in rows]))
            reader.close()
    finally:
        writer.close()
    want = [N_ITEMS // GROUPS] * 3
    if delivered != want:
        regressions.append(
            f"reads under retained X delivered {delivered} (want {want})"
        )
    return {"rows_per_reader": delivered}


def isolation_under_churn(db: Prima,
                          regressions: list[str]) -> dict[str, object]:
    """A cursor pinned before a write never sees it, batch after batch."""
    manager = db.serve(max_sessions=2, admission="queue")
    reader = manager.open(name="pinned")
    writer = manager.open(name="churn")
    cursor = reader.query("SELECT ALL FROM item WHERE grp = 0",
                          fetch_size=FETCH_SIZE)
    seen = [m.atom["n"] for m in cursor.fetch_many(FETCH_SIZE)]
    churn = 0
    while True:
        writer.execute(f"INSERT item (n = {N_ITEMS + 100 + churn}, "
                       f"grp = 0)")
        churn += 1
        batch = cursor.fetch_many(FETCH_SIZE)
        if not batch:
            break
        seen.extend(m.atom["n"] for m in batch)
    expected = [n for n in range(N_ITEMS) if n % GROUPS == 0]
    if seen != expected:
        regressions.append(
            f"pinned cursor saw {len(seen)} rows across {churn} "
            f"concurrent commits (want {len(expected)} epoch rows)"
        )
    assert seen == expected, "snapshot cursor leaked concurrent commits"
    fresh = len(reader.query("SELECT ALL FROM item WHERE grp = 0"))
    reader.close()
    writer.close()
    return {"commits_during_stream": churn,
            "epoch_rows": len(seen),
            "fresh_cursor_rows": fresh}


def process_pool(db: Prima, regressions: list[str]) -> dict[str, object]:
    """Thread/process parity on identical molecule sets, distinct PIDs."""
    query = "SELECT ALL FROM item WHERE grp = 3 ORDER BY n"
    serial = [m.atom["n"] for m in db.query(query)]

    started = time.perf_counter()
    threaded = db.parallel_select(query, processors=4, mode="threads")
    thread_s = time.perf_counter() - started

    started = time.perf_counter()
    forked = db.parallel_select(query, processors=4, mode="processes")
    fork_s = time.perf_counter() - started

    rows_t = [m.atom["n"] for m in threaded.result]
    rows_p = [m.atom["n"] for m in forked.result]
    if rows_t != serial or rows_p != serial:
        regressions.append("parallel modes disagree with the serial set")
    assert rows_t == rows_p == serial, "mode parity broken"
    child_pids = sorted(forked.worker_pids - {os.getpid()})
    import multiprocessing
    fork_available = "fork" in multiprocessing.get_all_start_methods()
    if fork_available and not child_pids:
        regressions.append(
            "process mode never left the parent PID (pool did not fork)"
        )
    return {
        "rows": len(serial),
        "threads_s": round(thread_s, 4),
        "processes_s": round(fork_s, 4),
        "fork_available": fork_available,
        "worker_pids": len(child_pids),
        "thread_pids": sorted(threaded.worker_pids),
    }


def main() -> None:
    print_header(
        "B6 — snapshot reads + process-parallel construction",
        f"{N_ITEMS} molecules; sessions sweep {SESSION_SWEEP}; "
        f"fetch_size={FETCH_SIZE}",
    )
    regressions: list[str] = []
    db = build_database()

    scaling = read_scaling(db, regressions)
    overlap = reader_overlap(db, regressions)
    retained = reads_under_retained_x(db, regressions)
    isolation = isolation_under_churn(db, regressions)
    pool = process_pool(db, regressions)

    print_table(
        ["sessions", "rows/s", "elapsed s", "S grants", "peak readers"],
        [[row["sessions"], row["rows_per_s"], row["elapsed_s"],
          row["s_lock_grants"], row["peak_concurrent_readers"]]
         for row in scaling["sweep"]],
    )
    print(f"\nreader overlap: peak {overlap['peak_concurrent_readers']} "
          f"concurrent readers (fanout {overlap['fanout']})")
    print(f"reads under retained X: {retained['rows_per_reader']}")
    print(f"isolation: {isolation['epoch_rows']} epoch rows across "
          f"{isolation['commits_during_stream']} concurrent commits "
          f"(fresh cursor: {isolation['fresh_cursor_rows']})")
    print(f"pool parity: {pool['rows']} rows; threads {pool['threads_s']}s "
          f"vs processes {pool['processes_s']}s on "
          f"{pool['worker_pids']} forked worker(s)")
    emit_bench("bench_b6_scaling", {
        "n_items": N_ITEMS,
        "session_sweep": list(SESSION_SWEEP),
        "fetch_size": FETCH_SIZE,
        "read_scaling": scaling,
        "reader_overlap": overlap,
        "reads_under_retained_x": retained,
        "isolation_under_churn": isolation,
        "process_pool": pool,
    }, db=db, regressions=regressions)


if __name__ == "__main__":
    main()
