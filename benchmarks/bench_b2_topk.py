"""B2 — top-k pushdown: bounded-heap TopK vs. the full Sort pipeline.

An ORDER BY + LIMIT k query used to materialise and sort every
constructed molecule before Limit discarded all but k of them.  The TopK
operator fuses Sort/Offset/Limit into one bounded heap of k + offset
entries, so at most k + offset molecules are ever *retained* — and when a
sort order delivers the stream pre-ordered on a prefix of the ORDER BY,
the heap bound becomes a search argument that cuts ``MoleculeConstruct``
short after ~k roots.  This bench measures both effects over a flat
10k-molecule atom type:

* wall-time of the TopK pipeline vs. the full-sort pipeline (the same
  plan compiled with ``use_topk=False``), unordered input;
* the same comparison with a prefix-matching sort order, where TopK's
  sargable early exit stops construction itself;
* heap high-water mark and per-operator times, straight from the
  operator probes and the ``operator_time:*`` counters.
"""

from __future__ import annotations

import time

from _util import emit_bench
from common import operator_timings, print_header, print_table

from repro import Prima
from repro.data.operators import TopK
from repro.mql.parser import parse

N_ITEMS = 10_000
K = 10
OFFSET = 5
QUERY = f"SELECT ALL FROM item ORDER BY grp, n LIMIT {K} OFFSET {OFFSET}"


def build_database(n_items: int = N_ITEMS, sort_order: bool = False) -> Prima:
    db = Prima()
    db.execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, "
               "n: INTEGER, grp: INTEGER) KEYS_ARE (n)")
    for i in range(n_items):
        db.insert_atom("item", {"n": i, "grp": i % 97})
    if sort_order:
        db.execute_ldl("CREATE SORT ORDER item_by_grp ON item (grp)")
    return db


def find_topk(operator) -> TopK | None:
    if isinstance(operator, TopK):
        return operator
    for child in operator.children:
        found = find_topk(child)
        if found is not None:
            return found
    return None


def run_pipeline(db: Prima, mql: str, use_topk: bool,
                 repeat: int = 1) -> dict[str, object]:
    """Compile, drain, and measure one pipeline variant.

    ``repeat`` re-runs the whole compile+drain and keeps the *fastest*
    wall-time (construction noise over 10k molecules dwarfs the
    Sort-vs-TopK delta on unordered input); counters come from the last
    run.
    """
    best_ms = None
    for _ in range(max(repeat, 1)):
        db.reset_accounting()
        plan = db.data.plan_select(parse(mql))
        pipeline = plan.compile(db.data, use_topk=use_topk)
        started = time.perf_counter()
        delivered = 0
        while pipeline.next() is not None:
            delivered += 1
        wall_ms = (time.perf_counter() - started) * 1000.0
        pipeline.close()
        if best_ms is None or wall_ms < best_ms:
            best_ms = wall_ms
    report = db.io_report()
    topk = find_topk(pipeline)
    return {
        "pipeline": "TopK" if use_topk else "Sort+Offset+Limit",
        "wall_ms": round(best_ms, 3),
        "delivered": delivered,
        "molecules_constructed":
            report.get("operator_rows:MoleculeConstruct", 0),
        "heap_max": topk.max_heap_size if topk is not None else None,
        # The sargable early exit fires either way: as the delivery-time
        # cut (cut_short) or — since the dynamic bound pushdown — by
        # stopping the ordered walk before the beyond-bound root is
        # constructed (bounds_pushed).
        "cut_short": topk.cut_short if topk is not None else False,
        "bounds_pushed": topk.bounds_pushed if topk is not None else 0,
        "operator_time_ms": operator_timings(report),
    }


def compare(db: Prima, mql: str,
            repeat: int = 1) -> list[dict[str, object]]:
    # One unmeasured full drain first, so the buffer is equally warm for
    # both measured variants.
    run_pipeline(db, mql, use_topk=False)
    full = run_pipeline(db, mql, use_topk=False, repeat=repeat)
    topk = run_pipeline(db, mql, use_topk=True, repeat=repeat)
    return [topk, full]


def report(n_items: int = N_ITEMS) -> None:
    print_header(
        "B2 — top-k pushdown (bounded heap vs. full sort)",
        f"{QUERY!r} over {n_items:,} item atoms",
    )
    scenarios = {}
    for label, sort_order in [("unordered input", False),
                              ("prefix sort order (early exit)", True)]:
        db = build_database(n_items, sort_order=sort_order)
        rows = compare(db, QUERY, repeat=3)
        scenarios[label] = rows
        print()
        print(label)
        print_table(
            ["pipeline", "wall ms", "delivered", "constructed",
             "heap max", "cut short"],
            [[r["pipeline"], r["wall_ms"], r["delivered"],
              r["molecules_constructed"], r["heap_max"], r["cut_short"]]
             for r in rows],
        )
    payload: dict[str, object] = {
        "bench": "b2_topk",
        "query": QUERY,
        "n_molecules": n_items,
        "k": K,
        "offset": OFFSET,
        "scenarios": scenarios,
    }
    for label, rows in scenarios.items():
        topk, full = rows
        payload[f"speedup ({label})"] = \
            round(full["wall_ms"] / max(topk["wall_ms"], 1e-9), 2)
    emit_bench("bench_b2_topk", payload, db=db)
    # The CI gate: bench-smoke fails the build when a bench raises, so
    # these assertions are the benchmark regression gate.  The early-exit
    # scenario must beat the full sort decisively (it constructs ~k
    # molecules instead of all of them); the unordered scenario's win is
    # retention, its wall-time delta sits inside construction noise and
    # is reported, not gated.
    early_topk, early_full = scenarios["prefix sort order (early exit)"]
    assert early_topk["cut_short"] or early_topk["bounds_pushed"], \
        "early exit did not trigger"
    assert early_topk["molecules_constructed"] < \
        early_full["molecules_constructed"]
    assert early_topk["heap_max"] <= K + OFFSET
    assert early_topk["wall_ms"] < early_full["wall_ms"], (
        f"TopK early exit ({early_topk['wall_ms']} ms) must beat the "
        f"full sort ({early_full['wall_ms']} ms)"
    )


# ---------------------------------------------------------------------------
# pytest entries (kept small so the tier-1 run stays fast)
# ---------------------------------------------------------------------------

def test_topk_equals_full_sort_oracle() -> None:
    db = build_database(500)
    topk, full = compare(db, "SELECT ALL FROM item ORDER BY grp, n "
                             "LIMIT 7 OFFSET 2")
    assert topk["delivered"] == full["delivered"] == 7
    assert topk["heap_max"] == 9      # k + offset, never more
    oracle = [m.atom["n"] for m in
              db.query("SELECT ALL FROM item ORDER BY grp, n "
                       "LIMIT 7 OFFSET 2")]
    assert len(oracle) == 7


def test_early_exit_constructs_less() -> None:
    db = build_database(500, sort_order=True)
    topk, full = compare(db, QUERY)
    assert topk["cut_short"] or topk["bounds_pushed"]
    assert topk["molecules_constructed"] < full["molecules_constructed"]


if __name__ == "__main__":
    report()
