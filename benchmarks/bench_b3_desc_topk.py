"""B3 — descending / mixed-direction ordered scans + dynamic TopK bound.

A DESC (or mixed-direction) ORDER BY used to force the explicit Sort
pipeline breaker: every molecule was constructed, materialised and
sorted before the window discarded all but k of them.  The access layer
now walks its ordering structures in **reverse**, so a DESC ORDER BY is
served (or prefix-served) by the same sort-order/B*-tree scan that
serves the ascending case — and TopK feeds its tightening heap bound
into the walk as a *dynamic stop key*, so the B*-tree walk itself stops
at the first entry that cannot reach the result window.  Measured over a
flat 10k-molecule atom type:

* ``ORDER BY grp DESC, n DESC LIMIT k`` fully served by a reverse
  (grp, n) sort-order scan — constructs exactly k molecules — vs. the
  full-sort baseline (no sort order, ``use_topk=False``);
* ``ORDER BY grp DESC, n LIMIT k`` prefix-served by a reverse (grp)
  scan with the dynamic bound pushdown, vs. the same plan with the
  bound disconnected (``push_bound=False``) and vs. the full sort;
* index entries walked, molecules constructed, heap high-water mark and
  per-operator times, straight from the operator probes and counters.

Structural properties (construction/walk counts) are asserted hard —
they are deterministic.  Wall-time comparisons are emitted as
``regressions`` markers in the JSON payload; CI's bench-smoke job fails
the build when any bench reports a non-empty marker list (see
``benchmarks/check_regressions.py``).
"""

from __future__ import annotations

import time

from _util import emit_bench
from common import operator_timings, print_header, print_table

from repro import Prima
from repro.data.operators import TopK
from repro.mql.parser import parse

N_ITEMS = 10_000
K = 10
DESC_QUERY = f"SELECT ALL FROM item ORDER BY grp DESC, n DESC LIMIT {K}"
MIXED_QUERY = f"SELECT ALL FROM item ORDER BY grp DESC, n LIMIT {K}"


def build_database(n_items: int = N_ITEMS,
                   sort_order: tuple[str, ...] = ()) -> Prima:
    db = Prima()
    db.execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, "
               "n: INTEGER, grp: INTEGER) KEYS_ARE (n)")
    for i in range(n_items):
        db.insert_atom("item", {"n": i, "grp": i % 97})
    if sort_order:
        db.execute_ldl(
            f"CREATE SORT ORDER item_so ON item ({', '.join(sort_order)})"
        )
    return db


def find_topk(operator) -> TopK | None:
    if isinstance(operator, TopK):
        return operator
    for child in operator.children:
        found = find_topk(child)
        if found is not None:
            return found
    return None


def run_pipeline(db: Prima, mql: str, label: str, use_topk: bool = True,
                 push_bound: bool = True, repeat: int = 1) -> dict[str, object]:
    """Compile, drain, and measure one pipeline variant (fastest of
    ``repeat`` compile+drain rounds; counters from the last round)."""
    best_ms = None
    for _ in range(max(repeat, 1)):
        db.reset_accounting()
        plan = db.data.plan_select(parse(mql))
        pipeline = plan.compile(db.data, use_topk=use_topk,
                                push_bound=push_bound)
        started = time.perf_counter()
        delivered = 0
        while pipeline.next() is not None:
            delivered += 1
        wall_ms = (time.perf_counter() - started) * 1000.0
        pipeline.close()
        if best_ms is None or wall_ms < best_ms:
            best_ms = wall_ms
    report = db.io_report()
    topk = find_topk(pipeline)
    return {
        "pipeline": label,
        "wall_ms": round(best_ms, 3),
        "delivered": delivered,
        "order_served": plan.order_served_by_access,
        "order_prefix_served": plan.order_prefix_served,
        "molecules_constructed":
            report.get("operator_rows:MoleculeConstruct", 0),
        "entries_walked": report.get("sort_scan_entries_walked", 0),
        "heap_max": topk.max_heap_size if topk is not None else None,
        "bounds_pushed": topk.bounds_pushed if topk is not None else 0,
        "operator_time_ms": operator_timings(report),
    }


def measure(n_items: int = N_ITEMS,
            repeat: int = 3) -> tuple[dict[str, list], list[str], Prima]:
    """All scenario rows, the wall-time regression markers, and the
    prefix-served database (for the emitted metrics snapshot)."""
    scenarios: dict[str, list] = {}
    regressions: list[str] = []

    plain = build_database(n_items)
    served = build_database(n_items, sort_order=("grp", "n"))
    prefix = build_database(n_items, sort_order=("grp",))

    # Warm each database's buffer once before measuring.
    for db in (plain, served, prefix):
        run_pipeline(db, DESC_QUERY, "warmup", use_topk=False)

    full = run_pipeline(plain, DESC_QUERY, "full Sort baseline",
                        use_topk=False, repeat=repeat)
    reverse = run_pipeline(served, DESC_QUERY, "reverse sort-order scan",
                           repeat=repeat)
    scenarios["desc fully served"] = [reverse, full]
    assert reverse["order_served"], "reverse scan did not serve the order"
    assert reverse["molecules_constructed"] <= K, (
        f"served DESC window must construct <= k={K} molecules, "
        f"constructed {reverse['molecules_constructed']}"
    )
    if not reverse["wall_ms"] < full["wall_ms"]:
        regressions.append(
            f"desc fully served: reverse scan ({reverse['wall_ms']} ms) "
            f"did not beat the full sort ({full['wall_ms']} ms)"
        )

    mixed_full = run_pipeline(plain, MIXED_QUERY, "full Sort baseline",
                              use_topk=False, repeat=repeat)
    mixed_nobound = run_pipeline(prefix, MIXED_QUERY,
                                 "prefix scan, bound off",
                                 push_bound=False, repeat=repeat)
    mixed_bound = run_pipeline(prefix, MIXED_QUERY,
                               "prefix scan + dynamic bound",
                               repeat=repeat)
    scenarios["mixed direction, prefix served"] = \
        [mixed_bound, mixed_nobound, mixed_full]
    assert mixed_bound["order_prefix_served"] == 1
    assert mixed_bound["bounds_pushed"] > 0, "no bound was pushed down"
    # Each grp group holds ~n/97 items.  The heap fills after k entries;
    # the bound anchors on the group holding the k-th entry, so the walk
    # runs to the end of that group plus one beyond-bound probe — never
    # further, and nowhere near all n entries.
    group = -(-n_items // 97)
    walk_limit = max(K, group) + group + 1
    assert mixed_bound["entries_walked"] <= walk_limit, (
        f"bounded walk visited {mixed_bound['entries_walked']} entries, "
        f"expected <= {walk_limit}"
    )
    assert mixed_bound["molecules_constructed"] < \
        mixed_nobound["molecules_constructed"]
    if not mixed_bound["wall_ms"] < mixed_full["wall_ms"]:
        regressions.append(
            f"mixed direction: bounded prefix scan "
            f"({mixed_bound['wall_ms']} ms) did not beat the full sort "
            f"({mixed_full['wall_ms']} ms)"
        )
    return scenarios, regressions, prefix


def report(n_items: int = N_ITEMS) -> None:
    print_header(
        "B3 — descending / mixed-direction top-k (reverse scan + "
        "dynamic bound)",
        f"{DESC_QUERY!r} / {MIXED_QUERY!r} over {n_items:,} item atoms",
    )
    scenarios, regressions, prefix_db = measure(n_items)
    for label, rows in scenarios.items():
        print()
        print(label)
        print_table(
            ["pipeline", "wall ms", "delivered", "constructed",
             "walked", "heap max", "bounds pushed"],
            [[r["pipeline"], r["wall_ms"], r["delivered"],
              r["molecules_constructed"], r["entries_walked"],
              r["heap_max"], r["bounds_pushed"]] for r in rows],
        )
    payload: dict[str, object] = {
        "bench": "b3_desc_topk",
        "desc_query": DESC_QUERY,
        "mixed_query": MIXED_QUERY,
        "n_molecules": n_items,
        "k": K,
        "scenarios": scenarios,
    }
    for label, rows in scenarios.items():
        best, *_rest, full = rows
        payload[f"speedup ({label})"] = \
            round(full["wall_ms"] / max(best["wall_ms"], 1e-9), 2)
    emit_bench("bench_b3_desc_topk", payload, db=prefix_db,
               regressions=regressions)


# ---------------------------------------------------------------------------
# pytest entries (kept small so the tier-1 run stays fast)
# ---------------------------------------------------------------------------

def test_desc_served_constructs_k_and_matches_full_sort() -> None:
    served = build_database(500, sort_order=("grp", "n"))
    plain = build_database(500)
    want = [m.atom["n"] for m in plain.query(DESC_QUERY)]
    served.reset_accounting()
    got = [m.atom["n"] for m in served.query(DESC_QUERY)]
    assert got == want
    assert served.io_report().get("operator_rows:MoleculeConstruct") == K


def test_mixed_prefix_bound_cuts_walk() -> None:
    scenarios, _regressions, _db = measure(500, repeat=1)
    bound, nobound, full = scenarios["mixed direction, prefix served"]
    assert bound["delivered"] == nobound["delivered"] \
        == full["delivered"] == K
    assert bound["entries_walked"] < full["molecules_constructed"]


if __name__ == "__main__":
    report()
