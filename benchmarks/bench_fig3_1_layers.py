"""E-F3.1 — Fig. 3.1: the implementation model of PRIMA.

Traces one molecule query through the layer hierarchy of the figure,
reporting its footprint at every interface:

    data system     -> molecule sets / molecules
    access system   -> atoms / physical records
    storage system  -> page fixes (segments, pages, page sequences)
    file manager    -> block transfers

Run cold (empty buffer) and warm to separate the page-oriented from the
block-oriented layers.
"""

from __future__ import annotations

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import brep_database, cold_buffer, print_header, print_table

QUERY = "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713"


def trace(n_solids: int = 8):
    handles = brep_database(n_solids)
    db = handles.db

    cold_buffer(db)
    db.reset_accounting()
    result = db.query(QUERY)
    result.materialize()       # drain the lazy cursor before reading counters
    cold = db.io_report()

    db.reset_accounting()
    result = db.query(QUERY)
    result.materialize()
    warm = db.io_report()
    return result, cold, warm


def report():
    result, cold, warm = trace()
    molecule = result[0]
    print_header("Fig. 3.1 — one query through the implementation model",
                 QUERY)
    rows = [
        ["application layer", "molecule set", f"{len(result)} set"],
        ["data system (MAD interface)", "molecules",
         f"{len(result)} molecule, depth {molecule.depth()}"],
        ["access system (atoms)", "atoms read",
         f"{cold['atoms_read']} cold / {warm['atoms_read']} warm"],
        ["access system (records)", "physical records",
         f"{molecule.atom_count()} base records"],
        ["storage system (pages)", "page fixes",
         f"{cold['fixes']} cold / {warm['fixes']} warm"],
        ["storage system (buffer)", "hit ratio",
         f"{cold.get('hits', 0) / max(cold['fixes'], 1):.2f} cold / "
         f"{warm.get('hits', 0) / max(warm['fixes'], 1):.2f} warm"],
        ["file manager (blocks)", "blocks read",
         f"{cold.get('blocks_read', 0)} cold / "
         f"{warm.get('blocks_read', 0)} warm"],
        ["simulated device", "I/O time",
         f"{cold['io_time_ms']:.1f} ms cold / "
         f"{warm['io_time_ms']:.1f} ms warm"],
    ]
    print_table(["layer (Fig. 3.1)", "quantity", "value"], rows)
    print("\nShape check: the warm run touches zero blocks — every layer")
    print("above the file manager is served from the buffer.")


def test_layer_trace_cold_vs_warm(benchmark):
    def run():
        return trace()
    result, cold, warm = benchmark(run)
    assert len(result) == 1
    assert warm.get("blocks_read", 0) == 0
    assert cold.get("blocks_read", 0) > 0


if __name__ == "__main__":
    report()
