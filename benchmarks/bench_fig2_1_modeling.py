"""E-F2.1 — Fig. 2.1: modeling approaches to boundary representation.

The paper's figure contrasts the hierarchical (redundant), network
(relation-record), and MAD (direct & symmetric) modeling of BREP.  This
bench regenerates it as numbers: stored record counts, byte sizes, and the
cost of the *reverse* traversal (point -> faces) that hierarchies cannot
answer without scanning everything.

Expected shape (paper, 2.1): hierarchical pays ~2x records for edges and
~6x for points and must scan the whole database upward; network avoids
redundancy but adds one link record per connection and pays indirection;
MAD stores each atom once and follows back-references directly.
"""

from __future__ import annotations

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import brep_database, print_header, print_table

from repro.baselines import HierarchicalStore, NetworkStore


def build_stores(n_solids: int):
    handles = brep_database(n_solids)
    hierarchical = HierarchicalStore()
    hierarchical.load_from_prima(handles.db)
    network = NetworkStore()
    network.load_from_prima(handles.db)
    return handles, hierarchical, network


def mad_metrics(handles):
    db = handles.db
    from repro.access.encoding import encoded_size
    records = 0
    nbytes = 0
    for type_name in ("brep", "face", "edge", "point"):
        for _s, values in db.access.atoms.atoms_of_type(type_name):
            records += 1
            nbytes += encoded_size(values)
    # reverse traversal: point -> faces via back-references
    point = handles.points[0]
    faces = db.access.get(point)["face"]
    touched = 1 + len(faces)
    return records, nbytes, len(faces), touched


def report(n_solids_list=(2, 4, 8)):
    print_header(
        "Fig. 2.1 — modeling approaches to boundary representation",
        "records stored / bytes / reverse traversal (point->faces) cost",
    )
    rows = []
    for n_solids in n_solids_list:
        handles, hierarchical, network = build_stores(n_solids)
        placement = handles.db.access.get(handles.points[0])["placement"]
        h_faces, h_touched = hierarchical.reverse_traversal_cost(
            placement["x_coord"], placement["y_coord"],
            placement["z_coord"])
        n_faces, n_touched = network.faces_of_point(handles.points[0])
        m_records, m_bytes, m_faces, m_touched = mad_metrics(handles)
        rows.append([n_solids, "hierarchical", hierarchical.record_count,
                     hierarchical.byte_size, h_faces, h_touched])
        rows.append([n_solids, "network", network.record_count,
                     network.byte_size, len(n_faces), n_touched])
        rows.append([n_solids, "MAD (PRIMA)", m_records, m_bytes,
                     m_faces, m_touched])
    print_table(
        ["solids", "approach", "records", "bytes", "faces found",
         "records touched (reverse)"],
        rows,
    )
    print("\nShape check: hierarchical reverse traversal touches the whole")
    print("database; MAD touches only the answer path (symmetry).")


# -- pytest-benchmark targets -------------------------------------------------

def test_hierarchical_reverse_traversal(benchmark):
    handles, hierarchical, _network = build_stores(4)
    placement = handles.db.access.get(handles.points[0])["placement"]
    benchmark(hierarchical.reverse_traversal_cost,
              placement["x_coord"], placement["y_coord"],
              placement["z_coord"])


def test_mad_reverse_traversal(benchmark):
    handles, _hierarchical, _network = build_stores(4)
    db = handles.db

    def reverse():
        point_values = db.access.get(handles.points[0])
        return [db.access.get(face) for face in point_values["face"]]

    benchmark(reverse)


if __name__ == "__main__":
    report()
