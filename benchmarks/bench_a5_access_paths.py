"""A5 — access paths beat atom-type scans for selective access (3.2).

Sweeps the selectivity of a one-dimensional predicate over the three root
accesses the optimizer can choose — atom-type scan with a pushed-down
search argument, B*-tree access path, grid-file access path — and shows
the per-key start/stop/direction capability of the multi-dimensional path.
"""

from __future__ import annotations

import sys
import pathlib
import random
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import print_header, print_table

from repro import Prima
from repro.access.multidim import KeyCondition
from repro.access.scans import AccessPathScan, AtomTypeScan, SearchArgument

N_ATOMS = 2000


def make_db() -> Prima:
    db = Prima()
    db.execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, x: INTEGER, "
               "y: INTEGER)")
    db.query("SELECT ALL FROM part")
    rng = random.Random(11)
    for _ in range(N_ATOMS):
        db.insert_atom("part", {"x": rng.randint(0, 999),
                                "y": rng.randint(0, 999)})
    db.execute_ldl("""
        CREATE ACCESS PATH part_x ON part (x);
        CREATE ACCESS PATH part_xy ON part (x, y) USING GRID
    """)
    return db


def timed(fn) -> tuple[float, int]:
    started = time.perf_counter()
    count = sum(1 for _ in fn())
    return 1000 * (time.perf_counter() - started), count


def report():
    db = make_db()
    atoms = db.access.atoms
    btree = atoms.structure("part_x")
    grid = atoms.structure("part_xy")

    print_header("A5 — root access vs. selectivity",
                 f"{N_ATOMS} atoms, predicate x < bound")
    rows = []
    for bound in (10, 100, 500, 1000):
        scan_ms, scan_n = timed(lambda: AtomTypeScan(
            atoms, "part", search=SearchArgument(("x", "<", bound))))
        btree_ms, btree_n = timed(lambda: AccessPathScan(
            atoms, btree, [KeyCondition(stop=bound, include_stop=False)]))
        grid_ms, grid_n = timed(lambda: AccessPathScan(
            atoms, grid, [KeyCondition(stop=bound, include_stop=False),
                          KeyCondition()]))
        assert scan_n == btree_n == grid_n
        rows.append([
            f"{100 * bound // 1000}%", scan_n,
            f"{scan_ms:.1f}", f"{btree_ms:.1f}", f"{grid_ms:.1f}",
        ])
    print_table(["selectivity", "atoms", "atom-type scan ms",
                 "B*-tree ms", "grid ms"], rows)
    print("\nShape check: access paths win at low selectivity; the full")
    print("scan catches up once most atoms qualify anyway.")

    # Per-key conditions and directions in the n-dimensional space.
    conditions = [
        KeyCondition(start=100, stop=200, descending=True),
        KeyCondition(start=500, stop=600),
    ]
    box_ms, box_n = timed(lambda: AccessPathScan(atoms, grid, conditions))
    print(f"\nn-dimensional selection path (x: 200->100 descending, "
          f"y: 500..600 ascending): {box_n} atoms in {box_ms:.1f} ms")
    first = next(iter(AccessPathScan(atoms, grid, conditions)))[1]
    assert 100 <= first["x"] <= 200 and 500 <= first["y"] <= 600

    # The optimizer side of the crossover: with ANALYZE statistics the
    # planner vetoes the access path for unselective predicates.
    db.analyze("part")
    selective = db.explain("SELECT ALL FROM part WHERE x < 10")
    unselective = db.explain("SELECT ALL FROM part WHERE x < 900")
    print("\nplanner with meta-data statistics:")
    print(f"  x < 10  -> {selective.splitlines()[1].strip()}")
    print(f"  x < 900 -> {unselective.splitlines()[1].strip()}")


def test_btree_beats_scan_at_low_selectivity(benchmark):
    db = make_db()
    atoms = db.access.atoms
    btree = atoms.structure("part_x")

    def run_both():
        scan_ms, scan_n = timed(lambda: AtomTypeScan(
            atoms, "part", search=SearchArgument(("x", "<", 10))))
        btree_ms, btree_n = timed(lambda: AccessPathScan(
            atoms, btree, [KeyCondition(stop=10, include_stop=False)]))
        return scan_ms, btree_ms, scan_n, btree_n

    scan_ms, btree_ms, scan_n, btree_n = benchmark(run_both)
    assert scan_n == btree_n
    assert btree_ms < scan_ms


if __name__ == "__main__":
    report()
