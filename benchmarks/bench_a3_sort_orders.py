"""A3 — sort orders speed up sorted sequential processing (paper, 3.2).

The sort scan works with or without a redundant sort order: without one it
sorts explicitly into a temporary order.  This bench sweeps the atom count
and compares the two paths (plus the middle road: an access path on the
sort attribute), reporting wall time and atoms touched during the sort.
"""

from __future__ import annotations

import sys
import pathlib
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import print_header, print_table

from repro import Prima
from repro.access.scans import SortScan


def make_db(n_edges: int) -> Prima:
    db = Prima()
    db.execute("CREATE ATOM_TYPE edge (edge_id: IDENTIFIER, length: REAL)")
    db.query("SELECT ALL FROM edge")
    import random
    rng = random.Random(7)
    for _ in range(n_edges):
        db.insert_atom("edge", {"length": rng.random() * 1000})
    return db


def scan_all(db: Prima) -> tuple[float, bool, int]:
    started = time.perf_counter()
    scan = SortScan(db.access.atoms, "edge", ["length"])
    count = sum(1 for _ in scan)
    elapsed = 1000 * (time.perf_counter() - started)
    return elapsed, scan.used_sort_order, count


def report():
    print_header("A3 — sort scan with and without a redundant sort order")
    rows = []
    for n_edges in (100, 400, 1600):
        plain_db = make_db(n_edges)
        plain_ms, used, count = scan_all(plain_db)
        assert not used and count == n_edges

        supported_db = make_db(n_edges)
        supported_db.execute_ldl("CREATE SORT ORDER e_len ON edge (length)")
        supported_ms, used, count = scan_all(supported_db)
        assert used and count == n_edges

        rows.append([
            n_edges,
            f"{plain_ms:.1f}",
            f"{supported_ms:.1f}",
            f"{plain_ms / max(supported_ms, 1e-9):.1f}x",
        ])
    print_table(["atoms", "explicit sort (ms)", "sort order (ms)",
                 "speedup"], rows)
    print("\nShape check: the explicit sort pays a full scan plus sort per")
    print("query; the sort order amortises it into update-time maintenance,")
    print("with the gap widening as the type grows.")

    db = make_db(400)
    db.execute_ldl("CREATE SORT ORDER e_len ON edge (length)")
    started = time.perf_counter()
    scan = SortScan(db.access.atoms, "edge", ["length"],
                    start=100.0, stop=200.0)
    bounded = sum(1 for _ in scan)
    bounded_ms = 1000 * (time.perf_counter() - started)
    print(f"\nstart/stop conditions: {bounded} atoms in {bounded_ms:.1f} ms "
          f"(the order delivers the range without touching the rest)")


def test_sort_order_speeds_up_sort_scan(benchmark):
    plain_db = make_db(300)
    supported_db = make_db(300)
    supported_db.execute_ldl("CREATE SORT ORDER e_len ON edge (length)")

    def run_both():
        return scan_all(plain_db), scan_all(supported_db)

    (plain_ms, _u1, _c1), (supported_ms, used, _c2) = benchmark(run_both)
    assert used
    assert supported_ms < plain_ms


if __name__ == "__main__":
    report()
