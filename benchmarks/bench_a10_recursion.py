"""A10 — recursion strategies (paper, 3.1).

Query preparation "has to deal with the optimization of molecule join and
recursion ... and different strategies solving recursion".  This bench
compares two strategies for piece_list molecules on assembly trees of
growing depth:

* **level-wise** (the executor's strategy): expand the frontier once per
  level; every atom is read once per occurrence path;
* **naive re-traversal**: for every level k, re-derive the level from the
  seed by walking k steps — the quadratic strawman a per-level evaluator
  without frontier state would pay.

Both must produce the same atom set per level.
"""

from __future__ import annotations

import sys
import pathlib
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import print_header, print_table

from repro import Prima
from repro.workloads import brep


def level_wise(db, seed):
    reads = 0
    levels = []
    frontier = [seed]
    seen = {seed}
    while frontier:
        levels.append(list(frontier))
        next_frontier = []
        for solid in frontier:
            values = db.access.get(solid)
            reads += 1
            for child in values.get("sub") or []:
                if child not in seen:
                    seen.add(child)
                    next_frontier.append(child)
        frontier = next_frontier
    return levels, reads


def naive(db, seed):
    reads = 0
    levels = []
    depth = 0
    while True:
        # re-derive level `depth` from the seed every time
        frontier = [seed]
        for _step in range(depth):
            next_frontier = []
            for solid in frontier:
                values = db.access.get(solid)
                reads += 1
                next_frontier.extend(values.get("sub") or [])
            frontier = list(dict.fromkeys(next_frontier))
        if not frontier:
            break
        levels.append(frontier)
        depth += 1
    return levels, reads


def run(n_solids: int):
    db = Prima()
    handles = brep.generate(db, n_solids=n_solids)
    seed = db.access.atoms.find_by_key("solid", 4711)
    assert seed is not None

    started = time.perf_counter()
    lw_levels, lw_reads = level_wise(db, seed)
    lw_ms = 1000 * (time.perf_counter() - started)

    started = time.perf_counter()
    nv_levels, nv_reads = naive(db, seed)
    nv_ms = 1000 * (time.perf_counter() - started)

    assert [set(l) for l in nv_levels] == [set(l) for l in lw_levels[:len(nv_levels)]]
    return len(lw_levels), lw_reads, lw_ms, nv_reads, nv_ms


def report():
    print_header("A10 — recursion strategies on piece_list",
                 "level-wise frontier expansion vs. naive re-traversal")
    rows = []
    for n_solids in (4, 16, 64):
        depth, lw_reads, lw_ms, nv_reads, nv_ms = run(n_solids)
        rows.append([
            n_solids, depth, lw_reads, nv_reads,
            f"{nv_reads / max(lw_reads, 1):.1f}x",
            f"{lw_ms:.1f}", f"{nv_ms:.1f}",
        ])
    print_table(
        ["solids", "levels", "atom reads (level-wise)",
         "atom reads (naive)", "read blowup", "ms (level-wise)",
         "ms (naive)"],
        rows,
    )
    print("\nShape check: naive re-traversal grows quadratically with the")
    print("recursion depth; level-wise stays linear in the assembly size.")


def test_level_wise_reads_fewer_atoms(benchmark):
    def run_one():
        return run(16)
    _depth, lw_reads, _lw_ms, nv_reads, _nv_ms = benchmark(run_one)
    assert lw_reads < nv_reads


if __name__ == "__main__":
    report()
