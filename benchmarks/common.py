"""Shared infrastructure for the benchmark harness.

Every bench file is runnable two ways (DESIGN.md §7):

* ``python benchmarks/bench_*.py`` — prints the figure/table-shaped report;
* ``pytest benchmarks/ --benchmark-only`` — timings via pytest-benchmark.

Benches additionally emit their measurements as JSON via
:func:`emit_json` (one ``<bench>.json`` per bench under
``BENCH_RESULTS_DIR``, default ``benchmarks/results/``) — the CI
``bench-smoke`` job uploads these as workflow artifacts, giving the
repository a benchmark trajectory over time.
"""

from __future__ import annotations

import json
import os
from functools import lru_cache
from typing import Any, Iterable

from repro import Prima
from repro.workloads import brep, gis, vlsi


@lru_cache(maxsize=None)
def brep_database(n_solids: int = 8, **kwargs) -> brep.BrepDatabase:
    """A cached BREP database (treat as read-only across benches)."""
    return brep.generate(Prima(), n_solids=n_solids, **kwargs)


@lru_cache(maxsize=None)
def vlsi_database(n_cells: int = 24) -> vlsi.VlsiDatabase:
    return vlsi.generate(n_cells=n_cells)


@lru_cache(maxsize=None)
def gis_database(rows: int = 4, cols: int = 4) -> gis.GisDatabase:
    return gis.generate(rows=rows, cols=cols)


def emit_json(name: str, payload: dict[str, Any]) -> str:
    """Write one bench's measurements to ``<results dir>/<name>.json``.

    The directory comes from ``BENCH_RESULTS_DIR`` (default
    ``benchmarks/results/`` next to this file); the path written to is
    returned and echoed so CI logs show where the artifact landed.
    """
    directory = os.environ.get(
        "BENCH_RESULTS_DIR",
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "results"),
    )
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    print(f"\n[json] {path}")
    return path


def operator_timings(report: dict[str, Any]) -> dict[str, float]:
    """The ``operator_time:*`` counters of an ``io_report()``, in ms."""
    return {
        name.split(":", 1)[1]: round(value * 1000.0, 3)
        for name, value in report.items()
        if name.startswith("operator_time:")
    }


def print_header(title: str, subtitle: str = "") -> None:
    print()
    print("=" * 72)
    print(title)
    if subtitle:
        print(subtitle)
    print("=" * 72)


def print_table(headers: list[str], rows: Iterable[Iterable[Any]],
                widths: list[int] | None = None) -> None:
    rows = [list(map(_fmt, row)) for row in rows]
    if widths is None:
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
            else len(headers[i])
            for i in range(len(headers))
        ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def cold_buffer(db: Prima) -> None:
    """Flush and drop every buffered page so the next access pays I/O."""
    db.storage.flush()
    buffer = db.storage.buffer
    frames = getattr(buffer, "_frames", None)
    if frames is None:       # partitioned buffer
        for part in buffer._parts.values():  # noqa: SLF001
            _drop_frames(part)
        return
    _drop_frames(buffer)


def _drop_frames(buffer) -> None:
    for pid in list(buffer._frames):  # noqa: SLF001
        frame = buffer._frames.pop(pid)  # noqa: SLF001
        buffer._used_bytes -= frame.page.size  # noqa: SLF001
        buffer.policy.on_evict(pid)
