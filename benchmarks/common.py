"""Shared infrastructure for the benchmark harness.

Every bench file is runnable two ways (DESIGN.md §7):

* ``python benchmarks/bench_*.py`` — prints the figure/table-shaped report;
* ``pytest benchmarks/ --benchmark-only`` — timings via pytest-benchmark.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Iterable

from repro import Prima
from repro.workloads import brep, gis, vlsi


@lru_cache(maxsize=None)
def brep_database(n_solids: int = 8, **kwargs) -> brep.BrepDatabase:
    """A cached BREP database (treat as read-only across benches)."""
    return brep.generate(Prima(), n_solids=n_solids, **kwargs)


@lru_cache(maxsize=None)
def vlsi_database(n_cells: int = 24) -> vlsi.VlsiDatabase:
    return vlsi.generate(n_cells=n_cells)


@lru_cache(maxsize=None)
def gis_database(rows: int = 4, cols: int = 4) -> gis.GisDatabase:
    return gis.generate(rows=rows, cols=cols)


def print_header(title: str, subtitle: str = "") -> None:
    print()
    print("=" * 72)
    print(title)
    if subtitle:
        print(subtitle)
    print("=" * 72)


def print_table(headers: list[str], rows: Iterable[Iterable[Any]],
                widths: list[int] | None = None) -> None:
    rows = [list(map(_fmt, row)) for row in rows]
    if widths is None:
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
            else len(headers[i])
            for i in range(len(headers))
        ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def cold_buffer(db: Prima) -> None:
    """Flush and drop every buffered page so the next access pays I/O."""
    db.storage.flush()
    buffer = db.storage.buffer
    frames = getattr(buffer, "_frames", None)
    if frames is None:       # partitioned buffer
        for part in buffer._parts.values():  # noqa: SLF001
            _drop_frames(part)
        return
    _drop_frames(buffer)


def _drop_frames(buffer) -> None:
    for pid in list(buffer._frames):  # noqa: SLF001
        frame = buffer._frames.pop(pid)  # noqa: SLF001
        buffer._used_bytes -= frame.page.size  # noqa: SLF001
        buffer.policy.on_evict(pid)
