"""A7 — page sequences transfer long containers near-optimally (3.3).

The five page sizes do not meet the need for containers of arbitrary
length; page sequences treat many pages as a whole and are transferred by
chained I/O.  The bench stores byte strings of growing length and compares
reading them page-at-a-time (individual positioning per page) against the
chained page-sequence read, plus the relative-addressing slice read.
"""

from __future__ import annotations

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import print_header, print_table

from repro.storage.system import StorageSystem


def run(length: int, page_size: int = 2048):
    storage = StorageSystem(buffer_capacity=8 * 8192)
    storage.create_segment("blobs", page_size)
    header = storage.sequences.create("blobs")
    storage.sequences.write(header, bytes(range(256)) * (length // 256))
    storage.flush()

    def drop_cache():
        buffer = storage.buffer
        for pid in list(buffer._frames):  # noqa: SLF001
            frame = buffer._frames.pop(pid)  # noqa: SLF001
            buffer._used_bytes -= frame.page.size  # noqa: SLF001
            buffer.policy.on_evict(pid)

    drop_cache()
    storage.reset_accounting()
    storage.sequences.read(header, chained=False)
    paged = storage.io_report()

    drop_cache()
    storage.reset_accounting()
    storage.sequences.read(header, chained=True)
    chained = storage.io_report()

    drop_cache()
    storage.reset_accounting()
    storage.sequences.read_slice(header, length // 2, 64)
    sliced = storage.io_report()
    return paged, chained, sliced


def report():
    print_header("A7 — page sequences: chained I/O vs. page-at-a-time")
    rows = []
    for length in (8192, 32768, 131072):
        paged, chained, sliced = run(length)
        rows.append([
            f"{length // 1024} KB",
            paged.get("seeks", 0), f"{paged['io_time_ms']:.0f}",
            chained.get("seeks", 0), f"{chained['io_time_ms']:.0f}",
            f"{paged['io_time_ms'] / max(chained['io_time_ms'], 1e-9):.1f}x",
            sliced.get("blocks_read", 0), f"{sliced['io_time_ms']:.0f}",
        ])
    print_table(
        ["container", "seeks (paged)", "ms (paged)", "seeks (chained)",
         "ms (chained)", "speedup", "blocks (slice)", "ms (slice)"],
        rows,
    )
    print("\nShape check: chained I/O pays one positioning for the whole")
    print("sequence; the gap grows with container length.  Relative")
    print("addressing touches only the pages covering the slice.")


def test_chained_read_beats_paged(benchmark):
    def run_one():
        return run(65536)
    paged, chained, sliced = benchmark(run_one)
    assert chained["io_time_ms"] < paged["io_time_ms"]
    assert sliced.get("blocks_read", 99) <= 3


if __name__ == "__main__":
    report()
