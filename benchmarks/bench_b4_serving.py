"""B4 — the serving layer: remote streaming cursors, concurrent sessions.

The serving subsystem (:mod:`repro.serve`) multiplexes many client
sessions onto one PRIMA and streams query results through remote cursors
(OPEN / FETCH(n) / CLOSE over the coupling network's cost model) with
one-batch prefetch.  This bench gates the two properties that make the
layer worth having:

* **End-to-end early termination.**  A served ``SELECT … ORDER BY n
  LIMIT k`` fetched through a ``RemoteCursor`` with ``fetch_size=f``
  constructs **at most k molecules** server-side and never holds more
  than ``2·f`` undelivered molecules in flight (double buffering) —
  hard assertions.  A client that *abandons* an unbounded scan after k
  molecules stops server-side construction at most one batch later,
  where the whole-set ship of the old façade constructed and shipped all
  N — the modelled communication time must reflect that (regression
  marker, deterministic: the network model is a cost model, not a
  wall clock).

* **Deterministic multi-session serving.**  8 concurrent sessions
  interleaving over distinct cursors each see exactly their own molecule
  set — nothing lost, nothing duplicated, identical across repeated
  rounds (regression markers on any mismatch).

Structural properties are asserted hard; comparative properties land in
the JSON ``regressions`` list, which CI's bench-smoke job fails on
(``benchmarks/check_regressions.py``).
"""

from __future__ import annotations

from _util import emit_bench
from common import print_header, print_table

from repro import Prima
from repro.serve import ServeLoop

N_ITEMS = 10_000
GROUPS = 8
K = 60
FETCH_SIZE = 16


def build_database() -> Prima:
    db = Prima()
    db.execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, "
               "n: INTEGER, grp: INTEGER) KEYS_ARE (n)")
    for i in range(N_ITEMS):
        db.insert_atom("item", {"n": i, "grp": i % GROUPS})
    db.execute_ldl("CREATE SORT ORDER item_so ON item (n)")
    return db


def constructed(db: Prima) -> int:
    return int(db.io_report().get("operator_rows:MoleculeConstruct", 0))


def streamed_window(db: Prima, regressions: list[str]) -> dict[str, object]:
    """LIMIT k through a streaming cursor: constructs ≤ k, ≤ 2f in flight."""
    manager = db.serve(max_sessions=2)
    db.reset_accounting()
    with manager.open(name="window") as session:
        cursor = session.open_cursor(
            f"SELECT ALL FROM item ORDER BY n LIMIT {K}",
            fetch_size=FETCH_SIZE)
        rows = [molecule.atom["n"] for molecule in cursor]
    built = constructed(db)
    report = db.io_report()
    assert rows == list(range(K)), "served window delivered wrong molecules"
    assert built <= K, \
        f"LIMIT {K} constructed {built} molecules through the cursor"
    assert cursor.max_in_flight <= 2 * FETCH_SIZE, \
        f"{cursor.max_in_flight} molecules in flight (> 2*{FETCH_SIZE})"
    if built > K:
        regressions.append(f"streamed LIMIT {K} constructed {built}")
    return {
        "constructed": built,
        "max_in_flight": cursor.max_in_flight,
        "net_messages": report["net_messages"],
        "net_bytes": report["net_bytes"],
        "net_comm_time_ms": report["net_comm_time_ms"],
    }


def abandoned_scan(db: Prima, regressions: list[str]) -> dict[str, object]:
    """Abandon an unbounded scan after k molecules: streamed vs whole-set."""
    manager = db.serve(max_sessions=2)

    db.reset_accounting()
    with manager.open(name="stream") as session:
        result = session.query("SELECT ALL FROM item ORDER BY n",
                               fetch_size=FETCH_SIZE)
        consumed = [result.fetch_next() for _ in range(K)]
        result.close()
    stream_built = constructed(db)
    stream_report = db.io_report()
    assert all(m is not None for m in consumed)
    # current batch + one prefetched batch + the truncation probe
    bound = K + 2 * FETCH_SIZE + 1
    assert stream_built <= bound, \
        f"abandoned stream constructed {stream_built} (> {bound})"

    db.reset_accounting()
    with manager.open(name="whole") as session:
        result = session.query("SELECT ALL FROM item ORDER BY n",
                               fetch_size=None)
        for _ in range(K):
            result.fetch_next()
        result.close()
    whole_built = constructed(db)
    whole_report = db.io_report()
    assert whole_built >= N_ITEMS, "whole-set open should construct all"

    stream_ms = stream_report["net_comm_time_ms"]
    whole_ms = whole_report["net_comm_time_ms"]
    if stream_ms >= whole_ms:
        regressions.append(
            f"streamed abandon-after-{K} cost {stream_ms} ms of modelled "
            f"communication vs {whole_ms} ms for the whole-set ship"
        )
    return {
        "streamed": {"constructed": stream_built,
                     "net_bytes": stream_report["net_bytes"],
                     "net_comm_time_ms": stream_ms},
        "whole_set": {"constructed": whole_built,
                      "net_bytes": whole_report["net_bytes"],
                      "net_comm_time_ms": whole_ms},
    }


def concurrent_sessions(db: Prima,
                        regressions: list[str]) -> dict[str, object]:
    """8 sessions over distinct cursors: per-session results deterministic."""
    manager = db.serve(max_sessions=GROUPS, admission="queue")
    expected = [[n for n in range(N_ITEMS) if n % GROUPS == g]
                for g in range(GROUPS)]

    def job(group: int):
        def run(session):
            result = session.query(
                f"SELECT ALL FROM item WHERE grp = {group}", fetch_size=64)
            return [molecule.atom["n"] for molecule in result]
        return run

    loop = ServeLoop(manager)
    rounds = []
    for round_no in range(2):
        results = loop.run([job(g) for g in range(GROUPS)],
                           names=[f"r{round_no}-s{g}" for g in range(GROUPS)])
        rounds.append(results)
        for group, (got, want) in enumerate(zip(results, expected)):
            if got != want:
                lost = len(set(want) - set(got))
                extra = len(set(got) - set(want))
                regressions.append(
                    f"round {round_no} session {group}: {lost} lost, "
                    f"{extra} duplicated/foreign molecules"
                )
    if rounds[0] != rounds[1]:
        regressions.append("per-session results differ between rounds")
    report = manager.io_report()
    return {
        "sessions": GROUPS,
        "rows_per_session": N_ITEMS // GROUPS,
        "deterministic": rounds[0] == rounds[1] == expected,
        "sessions_peak": report["serve_sessions_peak"],
        "net_messages": report["net_messages"],
    }


def main() -> None:
    print_header(
        "B4 — serving layer: remote streaming cursors, concurrent sessions",
        f"{N_ITEMS} molecules; LIMIT {K} via fetch_size={FETCH_SIZE}; "
        f"{GROUPS} concurrent sessions",
    )
    regressions: list[str] = []
    db = build_database()

    window = streamed_window(db, regressions)
    abandon = abandoned_scan(db, regressions)
    sessions = concurrent_sessions(db, regressions)

    print_table(
        ["case", "constructed", "net bytes", "comm ms"],
        [
            [f"LIMIT {K} streamed (f={FETCH_SIZE})",
             window["constructed"], window["net_bytes"],
             window["net_comm_time_ms"]],
            [f"abandon after {K}, streamed",
             abandon["streamed"]["constructed"],
             abandon["streamed"]["net_bytes"],
             abandon["streamed"]["net_comm_time_ms"]],
            [f"abandon after {K}, whole-set ship",
             abandon["whole_set"]["constructed"],
             abandon["whole_set"]["net_bytes"],
             abandon["whole_set"]["net_comm_time_ms"]],
        ],
    )
    print(f"\nmax in flight: {window['max_in_flight']} "
          f"(bound 2*{FETCH_SIZE})")
    print(f"concurrent sessions: {sessions['sessions']} x "
          f"{sessions['rows_per_session']} rows, deterministic: "
          f"{sessions['deterministic']}")
    emit_bench("bench_b4_serving", {
        "n_items": N_ITEMS,
        "k": K,
        "fetch_size": FETCH_SIZE,
        "window": window,
        "abandoned_scan": abandon,
        "concurrent_sessions": sessions,
    }, db=db, regressions=regressions)


if __name__ == "__main__":
    main()
