"""Shared plumbing of the B-series benches.

Every ``bench_b*`` used to hand-roll the same three steps: the
reset-run-snapshot counter dance, the ``REGRESSIONS:`` trailer, and the
``emit_json`` call.  This module owns them once — and
:func:`emit_bench` additionally embeds a ``metrics_report()`` snapshot
(counters + gauges + histograms, see :mod:`repro.obs`) in every bench
JSON, so the CI artifacts carry the latency/batch-size distributions of
the run next to the figures.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from common import emit_json


def counter_snapshot(db: Any, fn: Callable[[], Any]) -> tuple[Any, dict]:
    """Run ``fn`` against freshly-zeroed accounting; returns
    ``(fn's result, io_report())`` — the counters describe exactly that
    one run."""
    db.reset_accounting()
    result = fn()
    return result, db.io_report()


def print_regressions(regressions: Iterable[str]) -> None:
    """The CI-gated trailer: one line per regression marker (silent
    when the list is empty — ``check_regressions.py`` reads the JSON,
    this print is for humans)."""
    regressions = list(regressions)
    if regressions:
        print("\nREGRESSIONS:")
        for marker in regressions:
            print(f"  - {marker}")


def emit_bench(name: str, payload: dict[str, Any], db: Any = None,
               regressions: Iterable[str] | None = None) -> str:
    """Emit one bench's JSON with the shared trimmings.

    ``regressions`` (when given) is printed and stored under the
    ``"regressions"`` key ``check_regressions.py`` gates on; ``db``
    (a :class:`~repro.db.Prima` or a cluster) contributes its
    ``metrics_report()`` under ``"metrics"`` so every artifact carries
    the run's metric distributions.
    """
    if regressions is not None:
        regressions = list(regressions)
        payload["regressions"] = regressions
        print_regressions(regressions)
    if db is not None and hasattr(db, "metrics_report"):
        payload["metrics"] = db.metrics_report()
    return emit_json(name, payload)
