"""B9 — observability overhead: tracing off must be (nearly) free.

PR 9 threads the observability layer (:mod:`repro.obs`) through every
query: ``DataSystem.watch_query`` arms a close hook that records the
query's wall-time into the ``query_latency_ms`` histogram and — when the
tracer sampled the query — rebuilds a span tree from the operators' own
measurements.  The design constraint is that the **disabled** path adds
nothing per row: one float test in ``Tracer.start``, one
``perf_counter`` pair and one histogram observe per *query*.

This bench gates that constraint on the B1 workload (the full
``SELECT ALL FROM brep-face-edge-point`` drain over a 24-solid BREP
database):

* **overhead gate** (regression marker): the instrumented path
  (``db.query`` with tracing off) must stay within ``OVERHEAD_CAP``
  of the hook-free ``DataSystem.select`` drain of the same plan (the
  PR-8 entry point, same plan cache and cursor) — medians of
  ``ROUNDS`` interleaved measurements, with an absolute slack floor of
  ``ABS_SLACK_MS`` so a sub-millisecond delta on a fast box cannot
  flake the ratio;
* **null-path gate** (hard assert): with sampling off the tracer
  returns ``None`` — no span objects are ever allocated;
* tracing **on** (sample=1.0) and a forced ``db.trace`` ride along as
  data, so the artifact shows what full tracing costs.

The marker lands in the JSON ``regressions`` list, which CI's
bench-smoke job fails on (``benchmarks/check_regressions.py``).
"""

from __future__ import annotations

import statistics
import time

from _util import emit_bench
from common import brep_database, print_header, print_table

from repro.mql.parser import parse

QUERY = "SELECT ALL FROM brep-face-edge-point"
N_SOLIDS = 24
ROUNDS = 9
OVERHEAD_CAP = 0.05
ABS_SLACK_MS = 2.0


def _drain_bare(db) -> tuple[float, int]:
    """The pre-observability entry point: ``DataSystem.select`` builds
    the same plan-cached pipeline and ``ResultSet`` but arms no
    per-query accounting hook — the PR-8 baseline."""
    statement = parse(QUERY)
    started = time.perf_counter()
    result = db.data.select(statement)
    delivered = len(result.materialize())
    result.close()
    wall_ms = (time.perf_counter() - started) * 1000.0
    return wall_ms, delivered


def _drain_instrumented(db) -> tuple[float, int]:
    """The real entry point: ``db.query`` arms the per-query hook."""
    started = time.perf_counter()
    result = db.query(QUERY)
    delivered = len(result.materialize())
    result.close()
    wall_ms = (time.perf_counter() - started) * 1000.0
    return wall_ms, delivered


def measure(n_solids: int = N_SOLIDS,
            rounds: int = ROUNDS) -> dict[str, object]:
    """Interleaved medians: bare vs tracing-off vs tracing-on."""
    db = brep_database(n_solids).db
    db.obs.disable_tracing()
    assert db.data.obs.tracer.start("probe") is None, \
        "disabled tracer allocated a span"

    # Warm the buffer and the plan cache before any measured round.
    _drain_bare(db)
    _drain_instrumented(db)

    bare, off, on = [], [], []
    rows = None
    for _ in range(max(rounds, 1)):
        db.obs.disable_tracing()
        bare_ms, bare_rows = _drain_bare(db)
        off_ms, off_rows = _drain_instrumented(db)
        db.obs.enable_tracing(1.0)
        on_ms, on_rows = _drain_instrumented(db)
        db.obs.disable_tracing()
        assert bare_rows == off_rows == on_rows
        rows = bare_rows
        bare.append(bare_ms)
        off.append(off_ms)
        on.append(on_ms)
    return {
        "rows": rows,
        "rounds": rounds,
        "bare_ms": round(statistics.median(bare), 3),
        "tracing_off_ms": round(statistics.median(off), 3),
        "tracing_on_ms": round(statistics.median(on), 3),
    }


def forced_trace(n_solids: int = N_SOLIDS) -> dict[str, object]:
    """One forced trace: the span tree the artifact carries as data."""
    db = brep_database(n_solids).db
    span = db.trace(QUERY)
    return {"rendered": span.render(), "tree": span.to_dict()}


def main() -> None:
    print_header(
        "B9 — observability overhead (tracing off vs bare drain)",
        f"{QUERY!r} over a {N_SOLIDS}-solid BREP database, "
        f"median of {ROUNDS} interleaved rounds",
    )
    regressions: list[str] = []
    timings = measure()
    trace = forced_trace()
    db = brep_database(N_SOLIDS).db

    bare_ms = timings["bare_ms"]
    off_ms = timings["tracing_off_ms"]
    overhead = (off_ms - bare_ms) / max(bare_ms, 1e-9)
    gated = off_ms - bare_ms > ABS_SLACK_MS and overhead > OVERHEAD_CAP
    if gated:
        regressions.append(
            f"tracing-disabled query path costs {off_ms} ms vs {bare_ms} "
            f"ms bare ({overhead:.1%} overhead, cap {OVERHEAD_CAP:.0%} "
            f"with {ABS_SLACK_MS} ms slack)"
        )

    print_table(
        ["path", "median ms", "rows"],
        [["bare select (no hook)", bare_ms, timings["rows"]],
         ["db.query, tracing off", off_ms, timings["rows"]],
         ["db.query, tracing on", timings["tracing_on_ms"],
          timings["rows"]]],
    )
    print(f"\ntracing-off overhead: {overhead:+.1%} "
          f"(cap {OVERHEAD_CAP:.0%}, abs slack {ABS_SLACK_MS} ms)")
    print("\nforced trace:")
    for line in trace["rendered"]:
        print(f"  {line}")

    emit_bench("bench_b9_obs", {
        "bench": "b9_obs",
        "query": QUERY,
        "n_solids": N_SOLIDS,
        "timings": timings,
        "overhead": round(overhead, 4),
        "overhead_cap": OVERHEAD_CAP,
        "abs_slack_ms": ABS_SLACK_MS,
        "forced_trace": trace["tree"],
    }, db=db, regressions=regressions)


# ---------------------------------------------------------------------------
# pytest entries (kept small so the tier-1 run stays fast)
# ---------------------------------------------------------------------------

def test_disabled_tracer_allocates_nothing() -> None:
    db = brep_database(4).db
    db.obs.disable_tracing()
    assert db.data.obs.tracer.start("query") is None


def test_forced_trace_builds_operator_spans() -> None:
    db = brep_database(4).db
    db.obs.disable_tracing()          # forced trace must not depend on it
    span = db.trace(QUERY)
    assert span.name == "query"
    assert span.children, "trace produced no operator spans"
    assert sum(child.duration for child in span.children) >= 0.0
    assert any("rows=" in line for line in span.render())


if __name__ == "__main__":
    main()
