"""B8 — sharded scale-out: routed execution and scatter-gather reads.

PR 8 added the partitioned engine cluster
(:class:`~repro.shard.ShardedCluster`): N independent engines — each
with its own buffer, locks, catalog, plan cache, and snapshot store —
behind one coordinator that routes single-key lookups to the owning
shard and scatter-gathers everything else through an ordered k-way
merge.  Three gates, all on deterministic quantities (modelled service
channels and operator counters), so a noisy CI box cannot flake them:

* **routing** (hard assert): a prepared single-key lookup touches
  exactly **one** shard — every other engine's query counter stands
  still;
* **scale-out** (hard assert + marker): at 32 serving sessions the
  4-shard cluster's read throughput on the modelled channel makespan is
  at least ``SPEEDUP_FLOOR`` × the 1-shard cluster's — balanced shards
  divide the gather bytes, so the slowest channel carries ~1/N of the
  work;
* **TopK pushdown** (hard assert): a cross-shard ``ORDER BY ... DESC
  LIMIT k`` constructs at most ``k`` molecules *per shard* (each
  shard's own bounded window, tightened further by the coordinator's
  pushed global bound) and returns results byte-identical to a
  single-engine oracle.
"""

from __future__ import annotations

import pickle
import time

from _util import emit_bench
from common import print_header, print_table

from repro import Prima, ShardedCluster
from repro.serve import ServeLoop, SessionManager

N_ITEMS = 4_096
GROUPS = 32
ROWS_PER_GROUP = N_ITEMS // GROUPS
#: Payload ballast per molecule, so gather bytes (not per-message
#: latency) dominate the modelled channel time.
PAD = "x" * 512
#: Generous per-engine buffer: the padded dataset must stay resident
#: (concurrent reader sessions share the buffer without eviction
#: churn, like every serving bench before this one).
BUFFER_CAPACITY = 4_096 * 8_192
SHARD_SWEEP = (1, 2, 4, 8)
SESSION_SWEEP = (1, 8, 32)
LOOKUPS_PER_SESSION = 16
GATE_SHARDS = 4
GATE_SESSIONS = 32
SPEEDUP_FLOOR = 2.5
TOPK_K = 8


def build_cluster(shards: int) -> ShardedCluster:
    cluster = ShardedCluster(shards=shards,
                             buffer_capacity=BUFFER_CAPACITY)
    populate(cluster)
    return cluster


def populate(db) -> None:
    db.execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, n: INTEGER, "
               "grp: INTEGER, pad: CHAR_VAR) KEYS_ARE (n)")
    for i in range(N_ITEMS):
        db.execute(f"INSERT item (n = {i}, grp = {i % GROUPS}, "
                   f"pad = '{PAD}')")


def routed_lookup_gate(regressions: list[str]) -> dict[str, object]:
    """A prepared key lookup must touch exactly one shard."""
    with build_cluster(GATE_SHARDS) as cluster:
        stmt = cluster.prepare("SELECT ALL FROM item WHERE n = ?")
        probes = []
        for key in (0, 1, 2, 3, 17, 1000):
            before = [e.access.counters.snapshot().get("cluster_queries", 0)
                      for e in cluster.engines]
            result = stmt.execute(key)
            rows = len(result.materialize())
            result.close()
            after = [e.access.counters.snapshot().get("cluster_queries", 0)
                     for e in cluster.engines]
            touched = [i for i in range(GATE_SHARDS)
                       if after[i] > before[i]]
            expected = cluster.router.shard_of_key("item", key)
            if touched != [expected] or rows != 1:
                regressions.append(
                    f"lookup n={key} touched shards {touched} "
                    f"(want [{expected}]) and returned {rows} row(s)")
            assert touched == [expected], \
                "routed lookup touched more than its owning shard"
            probes.append({"key": key, "shard": expected, "rows": rows})
        routed = cluster.io_report()["routed_queries"]
    return {"probes": probes, "routed_queries": routed}


def _session_job(group: int):
    """One serving session: a scatter group stream plus a spray of
    routed point lookups."""
    def run(session) -> int:
        rows = len([m for m in session.query(
            f"SELECT ALL FROM item WHERE grp = {group % GROUPS}")])
        stmt = session.prepare("SELECT ALL FROM item WHERE n = ?")
        for i in range(LOOKUPS_PER_SESSION):
            rows += len(stmt.execute((group * LOOKUPS_PER_SESSION + i)
                                     % N_ITEMS).materialize())
        return rows
    return run


def scale_sweep(regressions: list[str]) -> dict[str, object]:
    """Shard count × session count: modelled-makespan read throughput."""
    rows_per_session = ROWS_PER_GROUP + LOOKUPS_PER_SESSION
    sweep = []
    throughput: dict[tuple[int, int], float] = {}
    for shards in SHARD_SWEEP:
        for sessions in SESSION_SWEEP:
            with build_cluster(shards) as cluster:
                cluster.reset_accounting()
                manager = SessionManager(cluster, max_sessions=sessions,
                                         admission="queue")
                started = time.perf_counter()
                counts = ServeLoop(manager).run(
                    [_session_job(g) for g in range(sessions)])
                elapsed = time.perf_counter() - started
                assert counts == [rows_per_session] * sessions
                service = cluster.service_report()
                report = cluster.io_report()
            makespan = service["makespan_ms"]
            rows = rows_per_session * sessions
            rate = rows / makespan if makespan else 0.0
            throughput[(shards, sessions)] = rate
            sweep.append({
                "shards": shards,
                "sessions": sessions,
                "rows": rows,
                "makespan_ms": makespan,
                "total_service_ms": service["total_service_ms"],
                "rows_per_modelled_s": round(rate * 1000.0, 1),
                "routed_queries": report["routed_queries"],
                "scatter_queries": report["scatter_queries"],
                "wall_s": round(elapsed, 3),
            })
    speedup = throughput[(GATE_SHARDS, GATE_SESSIONS)] / \
        throughput[(1, GATE_SESSIONS)]
    if speedup < SPEEDUP_FLOOR:
        regressions.append(
            f"{GATE_SHARDS}-shard throughput is only {speedup:.2f}x the "
            f"1-shard cluster at {GATE_SESSIONS} sessions "
            f"(floor {SPEEDUP_FLOOR}x)")
    assert speedup >= SPEEDUP_FLOOR, \
        f"scale-out gate: {speedup:.2f}x < {SPEEDUP_FLOOR}x"
    return {"sweep": sweep,
            "gate": {"shards": GATE_SHARDS, "sessions": GATE_SESSIONS,
                     "speedup": round(speedup, 2),
                     "floor": SPEEDUP_FLOOR}}


def _constructed(engine) -> int:
    snapshot = engine.access.counters.snapshot()
    return snapshot.get("molecules_from_traversal", 0) + \
        snapshot.get("molecules_from_cluster", 0)


def topk_pushdown_gate(regressions: list[str]) -> dict[str, object]:
    """Cross-shard DESC TopK: per-shard construction caps at k, and the
    gathered window is byte-identical to the single-engine oracle."""
    oracle = Prima(buffer_capacity=BUFFER_CAPACITY)
    populate(oracle)
    oracle.execute_ldl("CREATE ACCESS PATH item_n ON item (n)")
    oracle.analyze()
    mql = f"SELECT (n, grp) FROM item ORDER BY n DESC LIMIT {TOPK_K}"
    expected = [(m.atom.get("n"), m.atom.get("grp"))
                for m in oracle.execute(mql)]
    with build_cluster(GATE_SHARDS) as cluster:
        cluster.execute_ldl("CREATE ACCESS PATH item_n ON item (n)")
        cluster.analyze()
        before = [_constructed(e) for e in cluster.engines]
        result = cluster.execute(mql)
        got = [(m.atom.get("n"), m.atom.get("grp")) for m in result]
        result.close()
        per_shard = [_constructed(e) - before[i]
                     for i, e in enumerate(cluster.engines)]
        pushed = cluster.io_report().get("shard_bounds_pushed", 0)
        metrics = cluster.metrics_report()
    identical = pickle.dumps(got) == pickle.dumps(expected)
    if not identical:
        regressions.append(
            f"cross-shard TopK window diverged from the oracle: "
            f"{got} != {expected}")
    if any(count > TOPK_K for count in per_shard):
        regressions.append(
            f"a shard constructed more than k={TOPK_K} molecules for "
            f"the global window: {per_shard}")
    assert identical, "TopK gather is not byte-identical to the oracle"
    assert all(count <= TOPK_K for count in per_shard), per_shard
    return {"k": TOPK_K, "per_shard_constructed": per_shard,
            "total_constructed": sum(per_shard),
            "bounds_pushed": pushed, "byte_identical": identical,
            "metrics": metrics}


def main() -> None:
    print_header(
        "B8 — sharded scale-out",
        f"{N_ITEMS} molecules over shard sweep {SHARD_SWEEP}; "
        f"sessions {SESSION_SWEEP}; k={TOPK_K}",
    )
    regressions: list[str] = []

    routed = routed_lookup_gate(regressions)
    scale = scale_sweep(regressions)
    topk = topk_pushdown_gate(regressions)

    print_table(
        ["shards", "sessions", "rows", "makespan ms", "rows/modelled s"],
        [[row["shards"], row["sessions"], row["rows"],
          row["makespan_ms"], row["rows_per_modelled_s"]]
         for row in scale["sweep"]],
    )
    gate = scale["gate"]
    print(f"\nrouting: {routed['routed_queries']} prepared lookups, each "
          f"touching exactly 1 of {GATE_SHARDS} shards")
    print(f"scale-out at {gate['sessions']} sessions: "
          f"{gate['shards']}-shard throughput = {gate['speedup']}x "
          f"1-shard (floor {gate['floor']}x)")
    print(f"TopK pushdown: per-shard constructed {topk['per_shard_constructed']} "
          f"(cap {TOPK_K}), {topk['bounds_pushed']} bound(s) pushed, "
          f"byte-identical: {topk['byte_identical']}")
    emit_bench("bench_b8_sharding", {
        "n_items": N_ITEMS,
        "shard_sweep": list(SHARD_SWEEP),
        "session_sweep": list(SESSION_SWEEP),
        "routed_lookup": routed,
        "scale_out": scale,
        "topk_pushdown": topk,
        "metrics": topk.pop("metrics"),
    }, regressions=regressions)


if __name__ == "__main__":
    main()
