"""E-F2.2 — Fig. 2.2: expressing relationship types as association types.

Executable version of the figure: the three binary relationship kinds
(1:1, 1:n, n:m) are declared as paired REFERENCE/SET_OF(REFERENCE)
attributes; the bench connects and disconnects atoms over each kind,
verifies the system kept both sides symmetric, and reports the maintenance
throughput (connections per second and implicit back-reference writes).
"""

from __future__ import annotations

import sys
import pathlib
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import print_header, print_table

from repro import Prima
from repro.access.integrity import verify_database

_SCHEMAS = {
    "1:1": """
        CREATE ATOM_TYPE ati (i_id: IDENTIFIER, j: REF_TO (atj.i));
        CREATE ATOM_TYPE atj (j_id: IDENTIFIER, i: REF_TO (ati.j))
    """,
    "1:n": """
        CREATE ATOM_TYPE ati (i_id: IDENTIFIER,
                              js: SET_OF (REF_TO (atj.i)));
        CREATE ATOM_TYPE atj (j_id: IDENTIFIER, i: REF_TO (ati.js))
    """,
    "n:m": """
        CREATE ATOM_TYPE ati (i_id: IDENTIFIER,
                              js: SET_OF (REF_TO (atj.is_)));
        CREATE ATOM_TYPE atj (j_id: IDENTIFIER,
                              is_: SET_OF (REF_TO (ati.js)))
    """,
}


def run_kind(kind: str, n_pairs: int = 200):
    db = Prima()
    db.execute_script(_SCHEMAS[kind])
    db.query("SELECT ALL FROM ati")
    lefts = [db.insert_atom("ati") for _ in range(n_pairs)]
    # 1:n needs disjoint target groups (each atj has at most one owner).
    right_count = 2 * n_pairs if kind == "1:n" else n_pairs
    rights = [db.insert_atom("atj") for _ in range(right_count)]
    attr = "j" if kind == "1:1" else "js"
    started = time.perf_counter()
    for index, left in enumerate(lefts):
        if kind == "1:1":
            db.modify_atom(left, {attr: rights[index]})
        elif kind == "1:n":
            db.modify_atom(left, {attr: rights[2 * index:2 * index + 2]})
        else:
            targets = [rights[index], rights[(index + 1) % n_pairs]]
            db.modify_atom(left, {attr: targets})
    elapsed = time.perf_counter() - started
    kind_assoc = db.schema.association("ati", attr).kind
    backrefs = db.access.counters.get("backrefs_maintained")
    violations = len(verify_database(db.access.atoms))
    return kind_assoc, n_pairs / elapsed, backrefs, violations


def report():
    print_header(
        "Fig. 2.2 — relationship types as association types",
        "system-maintained back-references over the three binary kinds",
    )
    rows = []
    for kind in ("1:1", "1:n", "n:m"):
        derived, rate, backrefs, violations = run_kind(kind)
        rows.append([kind, derived, f"{rate:,.0f}", backrefs, violations])
    print_table(
        ["declared", "derived kind", "connects/s", "implicit back-ref "
         "writes", "symmetry violations"],
        rows,
    )
    print("\nShape check: 0 violations everywhere — the referenced record")
    print("always contains a back-reference usable in exactly the same way.")


def test_nm_connection_maintenance(benchmark):
    def run():
        return run_kind("n:m", n_pairs=60)
    _kind, _rate, _backrefs, violations = benchmark(run)
    assert violations == 0


if __name__ == "__main__":
    report()
