"""A1 — one size-aware buffer vs. static partitioning (paper, 3.3).

The paper rejects dividing the buffer into independent per-page-size parts
because "such a static partitioning is not very flexible when reference
patterns change", and instead modifies LRU to handle different page sizes
within one buffer.  This bench generates a reference string whose page-size
mix *shifts over time* (small-page metadata phase, then large-page cluster
phase) and compares hit ratios and block transfers.
"""

from __future__ import annotations

import sys
import pathlib
import random

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import print_header, print_table

from repro.storage.buffer import BufferManager, PartitionedBufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageId

PAGES_PER_SIZE = 48
CAPACITY = 24 * 8192


def make_disk() -> SimulatedDisk:
    disk = SimulatedDisk()
    for size in (512, 8192):
        disk.create_file(f"seg{size}", size)
        for no in range(1, PAGES_PER_SIZE + 1):
            disk.write_block(f"seg{size}", no,
                             Page.format(size, no).to_bytes())
    return disk


def reference_string(seed: int = 42, length: int = 3000):
    """Phase 1 references mostly small pages, phase 2 mostly large ones —
    the shifting pattern static partitioning cannot adapt to."""
    rng = random.Random(seed)
    refs: list[tuple[int, int]] = []
    for step in range(length):
        phase2 = step > length // 2
        large_share = 0.85 if phase2 else 0.15
        size = 8192 if rng.random() < large_share else 512
        # 80/20 locality within each size class
        if rng.random() < 0.8:
            page_no = rng.randint(1, PAGES_PER_SIZE // 5)
        else:
            page_no = rng.randint(1, PAGES_PER_SIZE)
        refs.append((size, page_no))
    return refs


def run(buffer_factory, refs):
    disk = make_disk()
    buffer = buffer_factory(disk)
    for size, page_no in refs:
        pid = PageId(f"seg{size}", page_no)
        buffer.fix(pid)
        buffer.unfix(pid)
    return {
        "hit_ratio": buffer.hit_ratio(),
        "blocks_read": disk.counters.get("blocks_read"),
        "io_time_ms": disk.io_time_ms,
    }


CONFIGS = {
    "modified LRU (one buffer)": lambda disk: BufferManager(
        disk, capacity_bytes=CAPACITY, policy="modified-lru"),
    "FIFO (one buffer)": lambda disk: BufferManager(
        disk, capacity_bytes=CAPACITY, policy="fifo"),
    "CLOCK (one buffer)": lambda disk: BufferManager(
        disk, capacity_bytes=CAPACITY, policy="clock"),
    "static partitions (50/50)": lambda disk: PartitionedBufferManager(
        disk, capacity_bytes=CAPACITY, shares={512: 0.5, 8192: 0.5}),
    "static partitions (equal fifths)": lambda disk:
        PartitionedBufferManager(disk, capacity_bytes=CAPACITY),
}


def report():
    print_header("A1 — buffer management with five page sizes",
                 "shifting reference pattern: small-page phase, then "
                 "large-page phase")
    refs = reference_string()
    rows = []
    for name, factory in CONFIGS.items():
        out = run(factory, refs)
        rows.append([name, f"{out['hit_ratio']:.3f}",
                     out["blocks_read"], f"{out['io_time_ms']:.0f}"])
    print_table(["configuration", "hit ratio", "blocks read", "sim. I/O ms"],
                rows)
    print("\nShape check: the single size-aware buffer adapts to the phase")
    print("change; static partitions waste the budget reserved for the")
    print("now-cold size class.")


def test_modified_lru_beats_static_partitioning(benchmark):
    refs = reference_string(length=1200)

    def run_both():
        unified = run(CONFIGS["modified LRU (one buffer)"], refs)
        static = run(CONFIGS["static partitions (equal fifths)"], refs)
        return unified, static

    unified, static = benchmark(run_both)
    assert unified["hit_ratio"] > static["hit_ratio"]


if __name__ == "__main__":
    report()
