"""B7 — the asyncio daemon: event-loop serving at O(1) threads.

PR 7 lifted the client exchanges into an explicit wire protocol
(:mod:`repro.serve.protocol`) and added the asyncio daemon transport
(:class:`~repro.serve.daemon.PrimaDaemon`): many concurrent socket
clients multiplexed onto **one** event-loop thread, with bounded send
queues for backpressure and a reaper enforcing leases.

On a single-core CI box wall-clock numbers are noise, so the structural
property is the hard gate and the comparative ones are regression
markers (``benchmarks/check_regressions.py`` fails CI on them):

* **O(1) threads** (hard assert): the daemon's thread count does not
  grow with the client count — 1 → 64 concurrent sessions are all
  served from the same event-loop thread (the thread-per-session
  :class:`~repro.serve.ServeLoop` needs one OS thread *each*);
* **throughput** (marker): at 32 concurrent clients the daemon must
  deliver at least ``THROUGHPUT_MARGIN`` of the thread-per-session
  loop's rows/s — the event loop must not collapse under concurrency
  (the daemon pays real pickling + socket costs the in-process loop
  does not, hence the margin);
* **auto-tuning** (marker): a fetch size tuned from the
  :class:`~repro.coupling.network.NetworkModel` must beat the static
  default on modelled ``net_comm_time_ms`` for the same stream;
* **lease reclaim** (hard assert): abandoned sessions are expired by
  the daemon's reaper and their admission slots come back without any
  client cooperation.
"""

from __future__ import annotations

import asyncio
import threading
import time

from _util import emit_bench
from common import print_header, print_table

from repro import Prima
from repro.serve import PrimaDaemon, ServeLoop, SessionManager, protocol

N_ITEMS = 4_096
GROUPS = 64
ROWS_PER_CLIENT = N_ITEMS // GROUPS
CLIENT_SWEEP = (1, 4, 16, 32, 64)
FETCH_SIZE = 16
THROUGHPUT_MARGIN = 0.5
STATIC_FETCH_SIZE = 16
#: Thread-count slack over the pre-daemon baseline: the event-loop
#: thread itself plus one for interpreter-internal transients.
THREAD_SLACK = 2


def build_database() -> Prima:
    db = Prima()
    db.execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, "
               "n: INTEGER, grp: INTEGER) KEYS_ARE (n)")
    for i in range(N_ITEMS):
        db.insert_atom("item", {"n": i, "grp": i % GROUPS})
    return db


async def _stream_client(host: str, port: int, index: int) -> int:
    """One async client: HELLO, OPEN, FETCH to exhaustion, GOODBYE."""
    from repro.serve.aio import open_client
    async with await open_client(host, port, f"c{index}") as client:
        reply = await client.request(protocol.Open(
            f"SELECT ALL FROM item WHERE grp = {index % GROUPS}",
            FETCH_SIZE, (), None))
        rows, exhausted = len(reply.batch), reply.exhausted
        while not exhausted:
            batch = await client.request(
                protocol.Fetch(reply.cursor_id, FETCH_SIZE))
            rows += len(batch.batch)
            exhausted = batch.exhausted
        return rows


def daemon_sweep(db: Prima, regressions: list[str]) -> dict[str, object]:
    """1 → 64 concurrent async clients against one daemon; the thread
    count must stay flat (the hard O(1) gate)."""
    sweep = []
    for clients in CLIENT_SWEEP:
        manager = SessionManager(db, max_sessions=clients,
                                 admission="queue")
        threads_before = threading.active_count()
        with PrimaDaemon(manager) as daemon:
            host, port = daemon.address

            async def fleet(n=clients):
                return await asyncio.gather(*[
                    _stream_client(host, port, i) for i in range(n)])

            started = time.perf_counter()
            counts = asyncio.run(fleet())
            elapsed = time.perf_counter() - started
            threads_during = threading.active_count()
        thread_growth = threads_during - threads_before
        if counts != [ROWS_PER_CLIENT] * clients:
            regressions.append(
                f"{clients} daemon clients delivered {counts} rows "
                f"(want {ROWS_PER_CLIENT} each)")
        if thread_growth > THREAD_SLACK:
            regressions.append(
                f"{clients} clients grew the thread count by "
                f"{thread_growth} (O(1) gate allows {THREAD_SLACK})")
        assert thread_growth <= THREAD_SLACK, \
            "daemon thread count grew with the client count"
        rows = clients * ROWS_PER_CLIENT
        sweep.append({
            "clients": clients,
            "rows": rows,
            "elapsed_s": round(elapsed, 4),
            "rows_per_s": round(rows / elapsed, 1),
            "thread_growth": thread_growth,
        })
    return {"sweep": sweep}


def daemon_vs_thread_loop(db: Prima,
                          regressions: list[str]) -> dict[str, object]:
    """The comparative throughput gate at 32 concurrent clients."""
    clients = 32

    manager = SessionManager(db, max_sessions=clients, admission="queue")

    def job(group: int):
        def run(session):
            result = session.query(
                f"SELECT ALL FROM item WHERE grp = {group % GROUPS}",
                fetch_size=FETCH_SIZE)
            return len([m for m in result])
        return run

    started = time.perf_counter()
    counts = ServeLoop(manager).run([job(g) for g in range(clients)])
    loop_elapsed = time.perf_counter() - started
    assert counts == [ROWS_PER_CLIENT] * clients

    manager = SessionManager(db, max_sessions=clients, admission="queue")
    with PrimaDaemon(manager) as daemon:
        host, port = daemon.address

        async def fleet():
            return await asyncio.gather(*[
                _stream_client(host, port, i) for i in range(clients)])

        started = time.perf_counter()
        counts = asyncio.run(fleet())
        daemon_elapsed = time.perf_counter() - started
    assert counts == [ROWS_PER_CLIENT] * clients

    rows = clients * ROWS_PER_CLIENT
    loop_rate = rows / loop_elapsed
    daemon_rate = rows / daemon_elapsed
    if daemon_rate < THROUGHPUT_MARGIN * loop_rate:
        regressions.append(
            f"daemon throughput {daemon_rate:.0f} rows/s fell under "
            f"{THROUGHPUT_MARGIN:.0%} of the thread-per-session loop's "
            f"{loop_rate:.0f} rows/s at {clients} clients")
    return {
        "clients": clients,
        "thread_loop_rows_per_s": round(loop_rate, 1),
        "daemon_rows_per_s": round(daemon_rate, 1),
        "daemon_over_loop": round(daemon_rate / loop_rate, 3),
        "margin": THROUGHPUT_MARGIN,
    }


def auto_tuning(db: Prima, regressions: list[str]) -> dict[str, object]:
    """Auto-tuned fetch size vs the static default, on the modelled
    network time of one full stream."""
    query = "SELECT ALL FROM item"

    def stream(fetch_size) -> tuple[float, int, int]:
        manager = SessionManager(db, default_fetch_size=fetch_size)
        session = manager.open(name="bench")
        cursor = session.open_cursor(query)
        rows = len([m for m in cursor])
        session.close()
        report = manager.io_report()
        return (report["net_comm_time_ms"], report["net_messages"],
                cursor.fetch_size), rows

    (static_ms, static_msgs, _), static_rows = stream(STATIC_FETCH_SIZE)
    (auto_ms, auto_msgs, tuned), auto_rows = stream("auto")
    assert static_rows == auto_rows == N_ITEMS
    if auto_ms > static_ms:
        regressions.append(
            f"auto-tuned fetch size {tuned} cost {auto_ms:.1f} modelled "
            f"ms vs {static_ms:.1f} for the static default "
            f"{STATIC_FETCH_SIZE}")
    return {
        "rows": N_ITEMS,
        "static_fetch_size": STATIC_FETCH_SIZE,
        "static_net_ms": round(static_ms, 1),
        "static_messages": static_msgs,
        "tuned_fetch_size": tuned,
        "auto_net_ms": round(auto_ms, 1),
        "auto_messages": auto_msgs,
        "saving": round(1 - auto_ms / static_ms, 3),
    }


def lease_reclaim(db: Prima, regressions: list[str]) -> dict[str, object]:
    """Abandoned sessions: the daemon's reaper expires leases and
    returns every admission slot without client cooperation."""
    abandoned = 8
    manager = SessionManager(db, max_sessions=abandoned,
                             session_lease=0.2)
    with PrimaDaemon(manager, reap_interval=0.05) as daemon:
        connections = [daemon.connect(name=f"ghost{i}")
                       for i in range(abandoned)]
        assert manager.active_sessions == abandoned
        deadline = time.monotonic() + 10
        while manager.active_sessions and time.monotonic() < deadline:
            time.sleep(0.02)
        reclaimed = abandoned - manager.active_sessions
        if manager.active_sessions:
            regressions.append(
                f"reaper reclaimed only {reclaimed}/{abandoned} "
                f"abandoned sessions")
        assert manager.active_sessions == 0, "lease reaper stalled"
        with daemon.connect(name="fresh") as conn:   # slots are back
            assert conn.ping() == "fresh"
        for connection in connections:
            connection._transport.close()  # noqa: SLF001
    expired = db.io_report()["serve_sessions_expired"]
    return {"abandoned": abandoned, "reclaimed": reclaimed,
            "sessions_expired_counter": expired}


def main() -> None:
    print_header(
        "B7 — asyncio daemon serving",
        f"{N_ITEMS} molecules; client sweep {CLIENT_SWEEP}; "
        f"fetch_size={FETCH_SIZE}",
    )
    regressions: list[str] = []
    db = build_database()

    sweep = daemon_sweep(db, regressions)
    versus = daemon_vs_thread_loop(db, regressions)
    tuning = auto_tuning(db, regressions)
    reclaim = lease_reclaim(db, regressions)

    print_table(
        ["clients", "rows/s", "elapsed s", "thread growth"],
        [[row["clients"], row["rows_per_s"], row["elapsed_s"],
          row["thread_growth"]] for row in sweep["sweep"]],
    )
    print(f"\ndaemon vs thread loop at {versus['clients']} clients: "
          f"{versus['daemon_rows_per_s']} vs "
          f"{versus['thread_loop_rows_per_s']} rows/s "
          f"({versus['daemon_over_loop']:.0%})")
    print(f"auto-tuning: fetch {tuning['tuned_fetch_size']} -> "
          f"{tuning['auto_net_ms']} modelled ms vs "
          f"{tuning['static_net_ms']} at static "
          f"{tuning['static_fetch_size']} "
          f"({tuning['saving']:.0%} saved, "
          f"{tuning['auto_messages']} vs {tuning['static_messages']} "
          f"messages)")
    print(f"lease reclaim: {reclaim['reclaimed']}/{reclaim['abandoned']} "
          f"abandoned sessions expired by the reaper")
    emit_bench("bench_b7_daemon", {
        "n_items": N_ITEMS,
        "client_sweep": list(CLIENT_SWEEP),
        "fetch_size": FETCH_SIZE,
        "daemon_sweep": sweep,
        "daemon_vs_thread_loop": versus,
        "auto_tuning": tuning,
        "lease_reclaim": reclaim,
    }, db=db, regressions=regressions)


if __name__ == "__main__":
    main()
