"""E-F3.2 — Fig. 3.2: the atom cluster.

Rebuilds the figure end to end: (a) the characteristic atom referencing
all member atoms grouped by type, (b) the members materialised in ONE
physical record, (c) that record mapped onto a page sequence with relative
addressing.  Then measures the figure's purpose: vertical access served
from the cluster versus association traversal over base records, and
single-atom access via relative addressing versus reading the whole
cluster.
"""

from __future__ import annotations

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import cold_buffer, print_header, print_table

from repro import Prima
from repro.access.cluster import AtomCluster
from repro.workloads import brep

QUERY = "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713"


def build(n_solids: int = 8):
    db = Prima()
    handles = brep.generate(db, n_solids=n_solids)
    db.execute_ldl("CREATE ATOM_CLUSTER brep_cl FROM brep-face-edge-point")
    db.commit()
    cluster = db.access.atoms.structure("brep_cl")
    assert isinstance(cluster, AtomCluster)
    return handles, cluster


def measure(handles, cluster):
    db = handles.db
    root = handles.breps[0]

    # (a) the characteristic atom
    char = cluster.characteristic(root)
    member_counts = {label: len(s) for label, s in char["members"].items()}

    # vertical access: cluster vs traversal
    cold_buffer(db)
    db.reset_accounting()
    cluster.read_cluster(root)
    with_cluster = db.io_report()

    cold_buffer(db)
    db.reset_accounting()
    db.data.construct_molecule(
        db.data.plan_select(
            __import__("repro.mql.parser", fromlist=["parse"]).parse(QUERY)
        ).structure, root, None)
    without = db.io_report()

    # (c) relative addressing: one member atom
    cold_buffer(db)
    db.reset_accounting()
    cluster.read_member(root, handles.points[0])
    single = db.io_report()
    return member_counts, with_cluster, without, single


def report():
    handles, cluster = build()
    member_counts, with_cluster, without, single = measure(handles, cluster)
    print_header("Fig. 3.2 — the atom cluster",
                 "characteristic atom, one physical record, page sequence")
    print(f"(a) characteristic atom of {handles.breps[0]}: "
          f"{member_counts}")
    sequence = cluster._sequences[handles.breps[0]]  # noqa: SLF001
    pages = cluster._storage.sequences.component_pages(sequence)  # noqa: SLF001
    length = cluster._storage.sequences.length(sequence)  # noqa: SLF001
    print(f"(b/c) cluster record: {length:,} bytes on a page sequence of "
          f"{len(pages)} component pages\n")
    rows = [
        ["vertical access via cluster",
         with_cluster.get("blocks_read", 0),
         with_cluster.get("chained_reads", 0),
         with_cluster.get("seeks", 0),
         f"{with_cluster['io_time_ms']:.1f}"],
        ["vertical access via traversal",
         without.get("blocks_read", 0),
         without.get("chained_reads", 0),
         without.get("seeks", 0),
         f"{without['io_time_ms']:.1f}"],
        ["single atom via relative addressing",
         single.get("blocks_read", 0),
         single.get("chained_reads", 0),
         single.get("seeks", 0),
         f"{single['io_time_ms']:.1f}"],
    ]
    print_table(["access", "blocks read", "chained requests", "seeks",
                 "sim. I/O ms"], rows)
    print("\nShape check: the cluster transfers the molecule in one chained")
    print("request (few seeks); traversal pays a positioning per atom zone;")
    print("relative addressing touches only the pages covering one atom.")


def test_cluster_vertical_access_cheaper(benchmark):
    handles, cluster = build(4)

    def run():
        return measure(handles, cluster)

    _m, with_cluster, without, single = benchmark(run)
    assert with_cluster["io_time_ms"] < without["io_time_ms"]
    assert single.get("blocks_read", 0) <= \
        with_cluster.get("blocks_read", 0)


if __name__ == "__main__":
    report()
