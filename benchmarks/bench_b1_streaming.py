"""B1 — streaming pipeline: first-molecule latency vs. full-result latency.

The eager executor materialised every molecule before handing back the
first one, so first-result latency equalled full-result latency.  The
Volcano-style pipeline delivers the first molecule as soon as one root
atom has been constructed, and ``LIMIT k`` bounds the work to k
constructions.  This bench measures both effects on the BREP database:

* time to the first molecule vs. time to the full result, for the
  pipelined cursor and for an (emulated) eager execution;
* atoms read / molecules constructed for ``LIMIT k`` vs. the full scan,
  straight from the access counters.
"""

from __future__ import annotations

import time

from _util import counter_snapshot, emit_bench
from common import (
    brep_database,
    operator_timings,
    print_header,
    print_table,
)

QUERY = "SELECT ALL FROM brep-face-edge-point"


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    out = fn()
    return (time.perf_counter() - start) * 1000.0, out


def first_vs_full(n_solids: int) -> list[list[object]]:
    handles = brep_database(n_solids)
    db = handles.db

    # pipelined: pull one molecule, then drain the rest
    cursor = db.query(QUERY)
    first_ms, _ = _timed(cursor.fetch_next)
    rest_ms, _ = _timed(cursor.materialize)
    total = len(cursor.materialize())

    # eager (what select() did before the refactor): materialise, then look
    eager_ms, materialised = _timed(
        lambda: db.query(QUERY).materialize())

    return [
        ["pipelined, first molecule", f"{first_ms:.2f} ms", 1],
        ["pipelined, full result", f"{first_ms + rest_ms:.2f} ms", total],
        ["eager full materialisation", f"{eager_ms:.2f} ms",
         len(materialised)],
    ]


def limit_counters(n_solids: int, k: int = 2) -> list[list[object]]:
    handles = brep_database(n_solids)
    db = handles.db
    rows = []
    for label, mql in [
        (f"LIMIT {k}", f"{QUERY} LIMIT {k}"),
        ("full scan", QUERY),
    ]:
        db.reset_accounting()
        db.query(mql).materialize()
        report = db.io_report()
        rows.append([
            label,
            report.get("atoms_read", 0),
            report.get("molecules_from_traversal", 0)
            + report.get("molecules_from_cluster", 0),
            report.get("operator_rows:RootScan", 0),
        ])
    return rows


def report(n_solids: int = 24) -> None:
    print_header(
        "B1 — streaming operator pipeline",
        f"{QUERY!r} over a {n_solids}-solid BREP database",
    )
    print()
    print("first-molecule vs. full-result latency")
    latency_rows = first_vs_full(n_solids)
    print_table(["execution", "latency", "molecules"], latency_rows)
    print()
    print("early termination (access counters)")
    counter_rows = limit_counters(n_solids)
    print_table(["query", "atoms read", "molecules built", "roots pulled"],
                counter_rows)
    # A dedicated drain for the per-operator times, so the emitted
    # timings describe exactly one known run of QUERY.
    db = brep_database(n_solids).db
    _, drained_report = counter_snapshot(
        db, lambda: db.query(QUERY).materialize())
    emit_bench("bench_b1_streaming", {
        "bench": "b1_streaming",
        "query": QUERY,
        "n_solids": n_solids,
        "latency": [
            {"execution": row[0], "latency": row[1], "molecules": row[2]}
            for row in latency_rows
        ],
        "early_termination": [
            {"query": row[0], "atoms_read": row[1],
             "molecules_built": row[2], "roots_pulled": row[3]}
            for row in counter_rows
        ],
        "operator_time_ms_full_result": operator_timings(drained_report),
    }, db=db)


def test_limit_reads_less() -> None:
    """pytest entry: LIMIT k touches fewer atoms than the full scan."""
    rows = limit_counters(8)
    limited, full = rows[0], rows[1]
    assert limited[1] < full[1]
    assert limited[2] < full[2]


if __name__ == "__main__":
    report()
