"""A4 — partitions speed up projections of frequent attributes (3.2).

Atoms with a small hot attribute and a bulky payload (the classic reason
for vertical partitioning): projecting the hot attribute reads the whole
fat record without a partition, and a slim partition record with one.
Reports bytes transferred from pages and simulated I/O time, sweeping the
payload size.
"""

from __future__ import annotations

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import cold_buffer, print_header, print_table

from repro import Prima

N_ATOMS = 64


def make_db(payload_bytes: int, with_partition: bool) -> Prima:
    db = Prima(buffer_capacity=16 * 8192)
    db.execute("CREATE ATOM_TYPE doc (doc_id: IDENTIFIER, hot: INTEGER, "
               "body: BYTE_VAR)")
    db.query("SELECT ALL FROM doc")
    for index in range(N_ATOMS):
        db.insert_atom("doc", {"hot": index,
                               "body": bytes(payload_bytes)})
    if with_partition:
        db.execute_ldl("CREATE PARTITION doc_hot ON doc (hot)")
        db.commit()
    return db


def project_all(db: Prima):
    cold_buffer(db)
    db.reset_accounting()
    for surrogate in list(db.access.atoms.addresses.surrogates("doc")):
        values = db.access.get(surrogate, attrs=["hot"])
        assert values["hot"] is not None
    return db.io_report()


def report():
    print_header("A4 — projection with and without a partition",
                 f"reading attribute 'hot' of {N_ATOMS} atoms")
    rows = []
    for payload in (256, 1024, 4096):
        plain = project_all(make_db(payload, False))
        partitioned = project_all(make_db(payload, True))
        rows.append([
            payload,
            plain.get("bytes_read", 0),
            partitioned.get("bytes_read", 0),
            f"{plain['io_time_ms']:.0f}",
            f"{partitioned['io_time_ms']:.0f}",
            partitioned.get("reads_from_partition", 0),
        ])
    print_table(
        ["payload B/atom", "bytes read (base)", "bytes read (partition)",
         "I/O ms (base)", "I/O ms (partition)", "partition reads"],
        rows,
    )
    print("\nShape check: the partition keeps the projected read volume")
    print("flat while the base path grows with the payload.")


def test_partition_reduces_projection_io(benchmark):
    plain_db = make_db(2048, False)
    partitioned_db = make_db(2048, True)

    def run_both():
        return project_all(plain_db), project_all(partitioned_db)

    plain, partitioned = benchmark(run_both)
    assert partitioned.get("bytes_read", 1) < plain.get("bytes_read", 0)
    assert partitioned["reads_from_partition"] == N_ATOMS


if __name__ == "__main__":
    report()
