"""Integration tests: the data system executing MQL over the BREP db.

Covers the four Table 2.1 queries verbatim plus plan selection, molecule
semantics against a naive reference-chasing oracle, and DML statements.
"""

import pytest

from repro import Prima
from repro.mad.types import Surrogate, reference_values
from repro.workloads import brep


@pytest.fixture(scope="module")
def handles():
    database = Prima()
    return brep.generate(database, n_solids=4)


class TestTable21:
    def test_a_vertical_network_access(self, handles):
        db = handles.db
        result = db.query("SELECT ALL FROM brep-face-edge-point "
                          "WHERE brep_no = 1713")
        assert len(result) == 1
        molecule = result[0]
        assert molecule.atom_count() == 1 + 6 + 12 + 8
        assert len(molecule.component_list("face")) == 6
        for face in molecule.component_list("face"):
            assert len(face.component_list("edge")) == 4
            for edge in face.component_list("edge"):
                assert len(edge.component_list("point")) == 2

    def test_a_uses_key_lookup(self, handles):
        plan = handles.db.explain("SELECT ALL FROM brep-face-edge-point "
                                  "WHERE brep_no = 1713")
        assert "KEY LOOKUP" in plan

    def test_b_recursive_molecules(self, handles):
        db = handles.db
        result = db.query("SELECT ALL FROM piece_list "
                          "WHERE piece_list (0).solid_no = 4711")
        assert len(result) == 1
        molecule = result[0]
        # 4 primitives + the assembly tree above them
        assert molecule.atom_count() == len(handles.solids)
        assert molecule.depth() >= 2

    def test_b_without_seed_returns_all_roots(self, handles):
        db = handles.db
        result = db.query("SELECT ALL FROM piece_list")
        assert len(result) == len(handles.solids)

    def test_c_horizontal_access_projection(self, handles):
        db = handles.db
        result = db.query("SELECT solid_no, description FROM solid "
                          "WHERE sub = EMPTY")
        assert len(result) == 4       # the primitive solids
        for molecule in result:
            assert set(molecule.atom) == \
                {"solid_id", "solid_no", "description"}

    def test_d_quantifier_and_qualified_projection(self, handles):
        db = handles.db
        result = db.query("""
            SELECT edge, (point,
             face := SELECT face_id, square_dim
                     FROM face
                     WHERE square_dim > 1.9E1)
            FROM brep-edge (face, point)
            WHERE brep_no = 1713
            AND EXISTS_AT_LEAST (2) edge: edge.length > 1.0E0
        """)
        assert len(result) == 1
        molecule = result[0]
        assert len(molecule.component_list("edge")) == 12
        for edge in molecule.component_list("edge"):
            for face in edge.component_list("face"):
                assert set(face.atom) == {"face_id", "square_dim"}
                assert face.atom["square_dim"] > 19.0
            assert len(edge.component_list("point")) == 2

    def test_d_quantifier_can_fail(self, handles):
        db = handles.db
        result = db.query("SELECT ALL FROM brep-edge "
                          "WHERE brep_no = 1713 AND "
                          "EXISTS_AT_LEAST (99) edge: edge.length > 0.0")
        assert len(result) == 0


class TestMoleculeSemantics:
    def test_matches_reference_chasing_oracle(self, handles):
        """Molecule construction equals naive reference chasing."""
        db = handles.db
        result = db.query("SELECT ALL FROM brep-face-edge-point")
        for molecule in result:
            brep_values = db.access.get(molecule.surrogate)
            want_faces = set(brep_values["faces"])
            got_faces = {f.surrogate for f in molecule.component_list("face")}
            assert got_faces == want_faces
            for face in molecule.component_list("face"):
                face_values = db.access.get(face.surrogate)
                got_edges = {e.surrogate
                             for e in face.component_list("edge")}
                assert got_edges == set(face_values["border"])

    def test_nm_sharing_duplicates_subtrees(self, handles):
        """An edge shared by two faces appears under both (non-disjoint
        molecules)."""
        db = handles.db
        result = db.query("SELECT ALL FROM brep-face-edge "
                          "WHERE brep_no = 1713")
        molecule = result[0]
        seen: dict[Surrogate, int] = {}
        for face in molecule.component_list("face"):
            for edge in face.component_list("edge"):
                seen[edge.surrogate] = seen.get(edge.surrogate, 0) + 1
        assert all(count == 2 for count in seen.values())
        assert len(seen) == 12

    def test_symmetric_inverse_nesting(self, handles):
        """point-edge-face: the inverse hierarchy works without schema
        support (the symmetry argument of section 2.1)."""
        db = handles.db
        result = db.query("SELECT ALL FROM point-edge-face")
        assert len(result) == db.access.atoms.count("point")
        sample = result[0]
        assert len(sample.component_list("edge")) == 3   # box corner
        for edge in sample.component_list("edge"):
            assert len(edge.component_list("face")) == 2

    def test_quantifier_exactly(self, handles):
        db = handles.db
        result = db.query("SELECT ALL FROM face-edge "
                          "WHERE EXISTS_EXACTLY (4) edge: edge.length > 0.0")
        assert len(result) == db.access.atoms.count("face")

    def test_for_all_quantifier(self, handles):
        db = handles.db
        all_faces = db.query("SELECT ALL FROM face-edge "
                             "WHERE FOR_ALL edge: edge.length > 0.0")
        assert len(all_faces) == db.access.atoms.count("face")
        none = db.query("SELECT ALL FROM face-edge "
                        "WHERE FOR_ALL edge: edge.length > 1.0E6")
        assert len(none) == 0

    def test_or_and_not(self, handles):
        db = handles.db
        result = db.query("SELECT ALL FROM brep "
                          "WHERE brep_no = 1713 OR brep_no = 1714")
        assert len(result) == 2
        result = db.query("SELECT ALL FROM brep WHERE NOT brep_no = 1713")
        assert len(result) == len(handles.breps) - 1

    def test_record_field_path(self, handles):
        db = handles.db
        sample = db.access.get(handles.points[0])
        x = sample["placement"]["x_coord"]
        result = db.query(f"SELECT ALL FROM point "
                          f"WHERE point.placement.x_coord = {x}")
        assert any(m.surrogate == handles.points[0] for m in result)


class TestPlans:
    def test_access_path_chosen_for_range(self, handles):
        db = handles.db
        db.execute_ldl("CREATE ACCESS PATH brep_no_path ON brep (brep_no)")
        plan = db.explain("SELECT ALL FROM brep WHERE brep_no >= 1713 "
                          "AND brep_no <= 1714")
        assert "ACCESS PATH SCAN brep_no_path" in plan
        result = db.query("SELECT ALL FROM brep WHERE brep_no >= 1713 "
                          "AND brep_no <= 1714")
        assert len(result) == 2
        db.execute_ldl("DROP ACCESS PATH brep_no_path")

    def test_atom_type_scan_with_search(self, handles):
        plan = handles.db.explain(
            "SELECT ALL FROM face WHERE square_dim > 50.0")
        assert "ATOM TYPE SCAN face" in plan
        assert "search" in plan

    def test_explain_rejects_dml(self, handles):
        from repro.errors import PrimaError
        with pytest.raises(PrimaError):
            handles.db.explain("INSERT solid (solid_no = 1)")


class TestDML:
    @pytest.fixture
    def dml_db(self):
        database = Prima()
        return brep.generate(database, n_solids=2).db

    def test_insert_via_mql(self, dml_db):
        result = dml_db.execute("INSERT solid (solid_no = 900, "
                                "description = 'fresh')")
        assert result.inserted is not None
        got = dml_db.query("SELECT ALL FROM solid WHERE solid_no = 900")
        assert len(got) == 1

    def test_insert_with_ref_connects(self, dml_db):
        dml_db.execute("INSERT solid (solid_no = 901)")
        dml_db.execute("INSERT solid (solid_no = 902, "
                       "sub = [REF solid(901)])")
        child = dml_db.query("SELECT ALL FROM solid WHERE solid_no = 901")[0]
        assert len(child.atom["super"]) == 1
        assert dml_db.verify_integrity() == []

    def test_modify_statement(self, dml_db):
        affected = dml_db.execute(
            "MODIFY face SET square_dim = 7.5 FROM face "
            "WHERE square_dim > 0.0").affected
        assert affected == dml_db.access.atoms.count("face")
        values = dml_db.query("SELECT ALL FROM face")
        assert all(m.atom["square_dim"] == 7.5 for m in values)

    def test_modify_component_label(self, dml_db):
        dml_db.execute("MODIFY edge SET length = 3.25 "
                       "FROM brep-edge WHERE brep_no = 1713")
        brep_molecule = dml_db.query(
            "SELECT ALL FROM brep-edge WHERE brep_no = 1713")[0]
        assert all(e.atom["length"] == 3.25
                   for e in brep_molecule.component_list("edge"))

    def test_delete_components_disconnects(self, dml_db):
        from repro.access.integrity import check_symmetry_only
        before = dml_db.access.atoms.count("point")
        affected = dml_db.execute(
            "DELETE point FROM brep-point WHERE brep_no = 1713").affected
        assert affected == 8
        assert dml_db.access.atoms.count("point") == before - 8
        # Edges that referenced those points were disconnected, not
        # deleted: no dangling or asymmetric references remain.  (Minimum
        # cardinalities ARE now violated — deleting the points of a brep
        # leaves it below (4,VAR) — which the full verifier must report.)
        assert check_symmetry_only(dml_db.access.atoms) == []
        assert any(v.kind == "cardinality"
                   for v in dml_db.verify_integrity())

    def test_delete_all_removes_molecule(self, dml_db):
        affected = dml_db.execute(
            "DELETE ALL FROM brep-face-edge-point "
            "WHERE brep_no = 1714").affected
        assert affected == 1 + 6 + 12 + 8
        assert len(dml_db.query("SELECT ALL FROM brep "
                                "WHERE brep_no = 1714")) == 0
        assert dml_db.verify_integrity() == []

    def test_delete_unknown_label_rejected(self, dml_db):
        from repro.errors import ValidationError
        with pytest.raises(ValidationError):
            dml_db.execute("DELETE ghost FROM brep-face")

    def test_modify_unknown_label_rejected(self, dml_db):
        from repro.errors import ValidationError
        with pytest.raises(ValidationError):
            dml_db.execute("MODIFY ghost SET length = 1.0 FROM brep-face")

    def test_ref_lookup_missing_key(self, dml_db):
        from repro.errors import ExecutionError
        with pytest.raises(ExecutionError):
            dml_db.execute("INSERT solid (solid_no = 903, "
                           "sub = [REF solid(999999)])")

    def test_drop_atom_type_requires_empty(self, dml_db):
        from repro.errors import ExecutionError
        with pytest.raises(ExecutionError):
            dml_db.execute("DROP ATOM_TYPE solid")


class TestClusterServedQueries:
    def test_recursive_cluster_serves_piece_list(self):
        db = Prima()
        brep.generate(db, n_solids=4)
        db.execute_ldl(
            "CREATE ATOM_CLUSTER pl FROM solid.sub-solid (RECURSIVE)")
        db.reset_accounting()
        result = db.query("SELECT ALL FROM piece_list "
                          "WHERE piece_list (0).solid_no = 4711")
        assert len(result) == 1
        report = db.io_report()
        assert report.get("molecules_from_cluster", 0) == 1

    def test_cluster_results_equal_traversal(self):
        db = Prima()
        brep.generate(db, n_solids=4)
        query = "SELECT ALL FROM brep-face-edge-point"
        before = sorted(repr(m.to_dict()) for m in db.query(query))
        db.execute_ldl("CREATE ATOM_CLUSTER bc FROM brep-face-edge-point")
        after = sorted(repr(m.to_dict()) for m in db.query(query))
        assert before == after

    def test_stale_cluster_still_serves_correct_data(self):
        db = Prima()
        handles = brep.generate(db, n_solids=2)
        db.execute_ldl("CREATE ATOM_CLUSTER bc FROM brep-face-edge-point")
        db.execute("MODIFY edge SET length = 42.0 FROM brep-edge "
                   "WHERE brep_no = 1713")
        # no commit: clusters are stale; reads must still be correct
        molecule = db.query("SELECT ALL FROM brep-face-edge-point "
                            "WHERE brep_no = 1713")[0]
        lengths = {edge.atom["length"]
                   for face in molecule.component_list("face")
                   for edge in face.component_list("edge")}
        assert lengths == {42.0}


class TestRecursionEdgeCases:
    @pytest.fixture
    def parts_db(self):
        db = Prima()
        db.execute_script("""
        CREATE ATOM_TYPE part (part_id: IDENTIFIER, part_no: INTEGER,
          sub: SET_OF (REF_TO (part.super)),
          super: SET_OF (REF_TO (part.sub))) KEYS_ARE (part_no);
        DEFINE MOLECULE TYPE exploded FROM part.sub - part (RECURSIVE)
        """)
        db.query("SELECT ALL FROM part")
        return db

    def test_cycle_terminates(self, parts_db):
        db = parts_db
        a = db.insert_atom("part", {"part_no": 1})
        b = db.insert_atom("part", {"part_no": 2, "sub": [a]})
        db.modify_atom(a, {"sub": [b]})      # a <-> b cycle
        result = db.query("SELECT ALL FROM exploded "
                          "WHERE exploded (0).part_no = 1")
        molecule = result[0]
        assert molecule.atom_count() == 2    # the cycle does not loop
        assert molecule.depth() == 2

    def test_self_cycle_terminates(self, parts_db):
        db = parts_db
        a = db.insert_atom("part", {"part_no": 1})
        db.modify_atom(a, {"sub": [a]})
        result = db.query("SELECT ALL FROM exploded "
                          "WHERE exploded (0).part_no = 1")
        assert result[0].atom_count() == 1

    def test_diamond_counted_once_per_path(self, parts_db):
        db = parts_db
        leaf = db.insert_atom("part", {"part_no": 1})
        left = db.insert_atom("part", {"part_no": 2, "sub": [leaf]})
        right = db.insert_atom("part", {"part_no": 3, "sub": [leaf]})
        db.insert_atom("part", {"part_no": 4, "sub": [left, right]})
        result = db.query("SELECT ALL FROM exploded "
                          "WHERE exploded (0).part_no = 4")
        molecule = result[0]
        # the leaf is reachable over two paths: distinct atoms = 4,
        # occurrence paths = 5 (non-disjoint sharing preserved)
        assert molecule.atom_count() == 4
        occurrences = sum(1 for _l, _a in molecule.atoms())
        assert occurrences == 5

    def test_deep_chain(self, parts_db):
        db = parts_db
        previous = db.insert_atom("part", {"part_no": 1})
        for number in range(2, 30):
            previous = db.insert_atom("part", {"part_no": number,
                                               "sub": [previous]})
        result = db.query("SELECT ALL FROM exploded "
                          "WHERE exploded (0).part_no = 29")
        assert result[0].depth() == 29
        assert result[0].atom_count() == 29

    def test_level_indexed_qualification_deep(self, parts_db):
        db = parts_db
        leaf = db.insert_atom("part", {"part_no": 10})
        mid = db.insert_atom("part", {"part_no": 20, "sub": [leaf]})
        db.insert_atom("part", {"part_no": 30, "sub": [mid]})
        hit = db.query("SELECT ALL FROM exploded "
                       "WHERE exploded (2).part_no = 10")
        assert len(hit) == 1 and hit[0].atom["part_no"] == 30
        miss = db.query("SELECT ALL FROM exploded "
                        "WHERE exploded (2).part_no = 99")
        assert len(miss) == 0
