"""Unit tests: the schema catalog and association derivation."""

import pytest

from repro.errors import SchemaError, UnknownTypeError
from repro.mad import (
    IDENTIFIER,
    INTEGER,
    AtomType,
    ReferenceType,
    Schema,
    SetType,
    StructureNode,
)


def _symmetric_schema() -> Schema:
    schema = Schema()
    schema.create_atom_type(AtomType("a", [
        ("a_id", IDENTIFIER),
        ("to_b", SetType(ReferenceType("b", "to_a"))),
        ("one_b", ReferenceType("b", "one_a")),
    ]))
    schema.create_atom_type(AtomType("b", [
        ("b_id", IDENTIFIER),
        ("to_a", SetType(ReferenceType("a", "to_b"))),
        ("one_a", ReferenceType("a", "one_b")),
    ]))
    return schema


class TestCatalog:
    def test_create_and_lookup(self):
        schema = _symmetric_schema()
        assert schema.atom_type("a").name == "a"
        assert schema.has_atom_type("b")
        assert schema.atom_type_names() == ["a", "b"]

    def test_duplicate_rejected(self):
        schema = _symmetric_schema()
        with pytest.raises(SchemaError):
            schema.create_atom_type(AtomType("a", [("x", IDENTIFIER)]))

    def test_unknown_rejected(self):
        with pytest.raises(UnknownTypeError):
            Schema().atom_type("ghost")

    def test_drop_blocked_by_references(self):
        schema = _symmetric_schema()
        with pytest.raises(SchemaError):
            schema.drop_atom_type("b")

    def test_drop_free_type(self):
        schema = Schema()
        schema.create_atom_type(AtomType("lone", [("x", IDENTIFIER)]))
        schema.drop_atom_type("lone")
        assert not schema.has_atom_type("lone")


class TestSymmetry:
    def test_symmetric_schema_passes(self):
        _symmetric_schema().check_symmetry()

    def test_dangling_target_type(self):
        schema = Schema()
        schema.create_atom_type(AtomType("a", [
            ("a_id", IDENTIFIER),
            ("to_ghost", ReferenceType("ghost", "back")),
        ]))
        with pytest.raises(SchemaError):
            schema.check_symmetry()

    def test_dangling_target_attr(self):
        schema = Schema()
        schema.create_atom_type(AtomType("a", [
            ("a_id", IDENTIFIER),
            ("to_b", ReferenceType("b", "ghost")),
        ]))
        schema.create_atom_type(AtomType("b", [("b_id", IDENTIFIER)]))
        with pytest.raises(SchemaError):
            schema.check_symmetry()

    def test_asymmetric_pairing(self):
        schema = Schema()
        schema.create_atom_type(AtomType("a", [
            ("a_id", IDENTIFIER),
            ("to_b", ReferenceType("b", "to_a")),
        ]))
        schema.create_atom_type(AtomType("b", [
            ("b_id", IDENTIFIER),
            ("to_a", ReferenceType("a", "a_id")),   # wrong back side
        ]))
        with pytest.raises(SchemaError):
            schema.check_symmetry()

    def test_back_side_not_a_reference(self):
        schema = Schema()
        schema.create_atom_type(AtomType("a", [
            ("a_id", IDENTIFIER),
            ("to_b", ReferenceType("b", "num")),
        ]))
        schema.create_atom_type(AtomType("b", [
            ("b_id", IDENTIFIER), ("num", INTEGER),
        ]))
        with pytest.raises(SchemaError):
            schema.check_symmetry()


class TestAssociations:
    def test_kinds_derived(self):
        schema = _symmetric_schema()
        n_m = schema.association("a", "to_b")
        assert n_m.kind == "n:m"
        one_one = schema.association("a", "one_b")
        assert one_one.kind == "1:1"

    def test_one_to_many(self):
        schema = Schema()
        schema.create_atom_type(AtomType("parent", [
            ("p_id", IDENTIFIER),
            ("children", SetType(ReferenceType("child", "parent"))),
        ]))
        schema.create_atom_type(AtomType("child", [
            ("c_id", IDENTIFIER),
            ("parent", ReferenceType("parent", "children")),
        ]))
        assoc = schema.association("parent", "children")
        assert assoc.kind == "1:n"
        assert assoc.reverse().kind == "1:n"
        assert assoc.reverse().source_attr == "parent"

    def test_non_reference_attr_rejected(self):
        schema = Schema()
        schema.create_atom_type(AtomType("a", [
            ("a_id", IDENTIFIER), ("n", INTEGER),
        ]))
        with pytest.raises(SchemaError):
            schema.association("a", "n")

    def test_associations_between(self):
        schema = _symmetric_schema()
        between = schema.associations_between("a", "b")
        assert {assoc.source_attr for assoc in between} == {"to_b", "one_b"}
        assert schema.associations_between("a", "a") == []

    def test_all_associations_enumerated(self):
        schema = _symmetric_schema()
        assert len(list(schema.associations())) == 4


class TestStructureNode:
    def test_walk_and_find(self):
        schema = _symmetric_schema()
        root = StructureNode("a", "a")
        child = StructureNode("b", "b", via=schema.association("a", "to_b"))
        root.add_child(child)
        assert [node.label for node in root.walk()] == ["a", "b"]
        assert root.find("b") is child
        assert root.find("ghost") is None
        assert root.atom_types() == ["a", "b"]

    def test_child_needs_association(self):
        root = StructureNode("a", "a")
        with pytest.raises(SchemaError):
            root.add_child(StructureNode("b", "b"))
