"""Unit tests: the simulated disk and file manager."""

import pytest

from repro.errors import PageSizeError, StorageError
from repro.storage.disk import DiskGeometry, SimulatedDisk


@pytest.fixture
def disk() -> SimulatedDisk:
    return SimulatedDisk()


class TestFiles:
    def test_create_and_lookup(self, disk):
        handle = disk.create_file("seg", 1024)
        assert handle.block_size == 1024
        assert disk.file("seg") is handle

    def test_duplicate_name_rejected(self, disk):
        disk.create_file("seg", 1024)
        with pytest.raises(StorageError):
            disk.create_file("seg", 2048)

    def test_unknown_file_rejected(self, disk):
        with pytest.raises(StorageError):
            disk.file("ghost")

    def test_only_five_block_sizes(self, disk):
        for size in (512, 1024, 2048, 4096, 8192):
            disk.create_file(f"s{size}", size)
        with pytest.raises(PageSizeError):
            disk.create_file("bad", 3000)

    def test_drop_file(self, disk):
        disk.create_file("seg", 512)
        disk.drop_file("seg")
        with pytest.raises(StorageError):
            disk.file("seg")
        with pytest.raises(StorageError):
            disk.drop_file("seg")

    def test_file_names_sorted(self, disk):
        disk.create_file("b", 512)
        disk.create_file("a", 512)
        assert disk.file_names() == ["a", "b"]


class TestBlockIO:
    def test_write_read_roundtrip(self, disk):
        disk.create_file("seg", 512)
        data = bytes(range(256)) * 2
        disk.write_block("seg", 7, data)
        assert disk.read_block("seg", 7) == data

    def test_wrong_length_rejected(self, disk):
        disk.create_file("seg", 512)
        with pytest.raises(StorageError):
            disk.write_block("seg", 1, b"short")

    def test_unwritten_block_rejected(self, disk):
        disk.create_file("seg", 512)
        with pytest.raises(StorageError):
            disk.read_block("seg", 99)

    def test_counters(self, disk):
        disk.create_file("seg", 512)
        disk.write_block("seg", 1, bytes(512))
        disk.read_block("seg", 1)
        assert disk.counters.get("blocks_written") == 1
        assert disk.counters.get("blocks_read") == 1
        assert disk.counters.get("bytes_read") == 512

    def test_block_count(self, disk):
        disk.create_file("seg", 512)
        for no in (1, 2, 2, 5):
            disk.write_block("seg", no, bytes(512))
        assert disk.file("seg").block_count == 3
        assert disk.file("seg").block_numbers() == [1, 2, 5]


class TestCostModel:
    def test_sequential_access_cheaper(self):
        geometry = DiskGeometry()
        assert geometry.access_ms(8192, sequential=True) < \
            geometry.access_ms(8192, sequential=False)

    def test_sequential_blocks_skip_seek(self, disk):
        disk.create_file("seg", 512)
        for no in range(1, 6):
            disk.write_block("seg", no, bytes(512))
        disk.reset_accounting()
        for no in range(1, 6):
            disk.read_block("seg", no)
        # first read seeks, the rest are sequential
        assert disk.counters.get("seeks") == 1

    def test_random_blocks_all_seek(self, disk):
        disk.create_file("seg", 512)
        for no in (1, 5, 3, 9):
            disk.write_block("seg", no, bytes(512))
        disk.reset_accounting()
        for no in (9, 1, 5, 3):
            disk.read_block("seg", no)
        assert disk.counters.get("seeks") == 4

    def test_io_time_accumulates(self, disk):
        disk.create_file("seg", 8192)
        assert disk.io_time_ms == 0.0
        disk.write_block("seg", 1, bytes(8192))
        assert disk.io_time_ms > 0.0


class TestChainedIO:
    def test_chained_read_roundtrip(self, disk):
        disk.create_file("seg", 512)
        blocks = {no: bytes([no]) * 512 for no in range(1, 8)}
        for no, data in blocks.items():
            disk.write_block("seg", no, data)
        got = disk.read_chained("seg", [3, 4, 5])
        assert got == [blocks[3], blocks[4], blocks[5]]

    def test_chained_read_one_seek_for_a_run(self, disk):
        disk.create_file("seg", 512)
        for no in range(1, 11):
            disk.write_block("seg", no, bytes(512))
        disk.reset_accounting()
        disk.read_chained("seg", list(range(1, 11)))
        assert disk.counters.get("seeks") == 1
        assert disk.counters.get("chained_reads") == 1

    def test_chained_read_cheaper_than_random(self, disk):
        disk.create_file("seg", 512)
        for no in range(1, 21):
            disk.write_block("seg", no, bytes(512))
        disk.reset_accounting()
        disk.read_chained("seg", list(range(1, 21)))
        chained_time = disk.io_time_ms
        disk.reset_accounting()
        for no in list(range(2, 21, 2)) + list(range(1, 21, 2)):
            disk.read_block("seg", no)
        assert disk.io_time_ms > 2 * chained_time

    def test_chained_write(self, disk):
        disk.create_file("seg", 512)
        disk.write_chained("seg", [(no, bytes([no]) * 512)
                                   for no in range(1, 5)])
        assert disk.read_block("seg", 2) == bytes([2]) * 512
        assert disk.counters.get("chained_writes") == 1

    def test_chained_read_missing_block(self, disk):
        disk.create_file("seg", 512)
        disk.write_block("seg", 1, bytes(512))
        with pytest.raises(StorageError):
            disk.read_chained("seg", [1, 2])

    def test_reset_accounting(self, disk):
        disk.create_file("seg", 512)
        disk.write_block("seg", 1, bytes(512))
        disk.reset_accounting()
        assert disk.counters.get("blocks_written") == 0
        assert disk.io_time_ms == 0.0
