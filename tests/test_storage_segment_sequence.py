"""Unit tests: segments, page allocation, page sequences."""

import pytest

from repro.errors import PageNotFoundError, SegmentError, StorageError
from repro.storage.page import PAGE_TYPE_SEQUENCE_HEADER, PageId
from repro.storage.system import StorageSystem


class TestSegments:
    def test_create_and_get(self, storage):
        storage.create_segment("data", 1024)
        assert storage.segment("data").page_size == 1024

    def test_duplicate_rejected(self, storage):
        storage.create_segment("data", 1024)
        with pytest.raises(SegmentError):
            storage.create_segment("data", 512)

    def test_unknown_rejected(self, storage):
        with pytest.raises(SegmentError):
            storage.segment("ghost")

    def test_allocation_numbers_dense(self, storage):
        storage.create_segment("data", 512)
        pids = [storage.allocate_page("data") for _ in range(3)]
        assert [p.page_no for p in pids] == [1, 2, 3]

    def test_freed_pages_recycled_fifo(self, storage):
        storage.create_segment("data", 512)
        pids = [storage.allocate_page("data") for _ in range(3)]
        storage.free_page(pids[0])
        storage.free_page(pids[1])
        assert storage.allocate_page("data").page_no == pids[0].page_no
        assert storage.allocate_page("data").page_no == pids[1].page_no

    def test_free_unallocated_rejected(self, storage):
        storage.create_segment("data", 512)
        with pytest.raises(PageNotFoundError):
            storage.free_page(PageId("data", 9))

    def test_drop_segment_discards_buffered_pages(self, storage):
        storage.create_segment("data", 512)
        pid = storage.allocate_page("data")
        with storage.page(pid, write=True) as page:
            page.insert(b"x")
        storage.drop_segment("data")
        assert pid not in storage.buffer.resident()
        with pytest.raises(SegmentError):
            storage.segment("data")

    def test_page_context_manager_writes(self, storage):
        storage.create_segment("data", 512)
        pid = storage.allocate_page("data")
        with storage.page(pid, write=True) as page:
            slot = page.insert(b"payload")
        storage.flush()
        storage2 = storage  # same instance; re-fix after flush
        with storage2.page(pid) as page:
            assert page.read(slot) == b"payload"

    def test_io_report_contains_counters(self, storage):
        storage.create_segment("data", 512)
        pid = storage.allocate_page("data")
        with storage.page(pid, write=True) as page:
            page.insert(b"x")
        storage.flush()
        report = storage.io_report()
        assert report["blocks_written"] >= 1
        assert "io_time_ms" in report


class TestPageSequences:
    def test_empty_sequence(self, storage):
        storage.create_segment("seq", 512)
        header = storage.sequences.create("seq")
        assert storage.sequences.read(header) == b""
        assert storage.sequences.length(header) == 0

    def test_write_read_roundtrip(self, storage):
        storage.create_segment("seq", 512)
        header = storage.sequences.create("seq")
        blob = bytes(range(256)) * 20
        storage.sequences.write(header, blob)
        assert storage.sequences.read(header) == blob
        assert storage.sequences.length(header) == len(blob)

    def test_header_page_type(self, storage):
        storage.create_segment("seq", 512)
        header = storage.sequences.create("seq")
        with storage.page(header) as page:
            assert page.page_type == PAGE_TYPE_SEQUENCE_HEADER

    def test_rewrite_shrinks_and_frees_pages(self, storage):
        storage.create_segment("seq", 512)
        header = storage.sequences.create("seq")
        storage.sequences.write(header, bytes(5000))
        pages_large = storage.segment("seq").allocated_pages
        storage.sequences.write(header, bytes(100))
        pages_small = storage.segment("seq").allocated_pages
        assert pages_small < pages_large
        assert storage.sequences.read(header) == bytes(100)

    def test_rewrite_grows(self, storage):
        storage.create_segment("seq", 512)
        header = storage.sequences.create("seq")
        storage.sequences.write(header, b"small")
        blob = bytes(range(256)) * 30
        storage.sequences.write(header, blob)
        assert storage.sequences.read(header) == blob

    def test_read_slice(self, storage):
        storage.create_segment("seq", 512)
        header = storage.sequences.create("seq")
        blob = bytes(range(256)) * 20
        storage.sequences.write(header, blob)
        assert storage.sequences.read_slice(header, 0, 10) == blob[:10]
        assert storage.sequences.read_slice(header, 1000, 600) == \
            blob[1000:1600]
        assert storage.sequences.read_slice(header, len(blob) - 5, 5) == \
            blob[-5:]

    def test_read_slice_touches_fewer_pages(self, storage):
        storage.create_segment("seq", 512)
        header = storage.sequences.create("seq")
        storage.sequences.write(header, bytes(5000))
        storage.flush()
        storage.reset_accounting()
        storage.sequences.read_slice(header, 600, 100)
        slice_fixes = storage.counters.get("fixes")
        storage.reset_accounting()
        storage.sequences.read(header, chained=False)
        full_fixes = storage.counters.get("fixes")
        assert slice_fixes < full_fixes

    def test_slice_bounds_checked(self, storage):
        storage.create_segment("seq", 512)
        header = storage.sequences.create("seq")
        storage.sequences.write(header, bytes(100))
        with pytest.raises(StorageError):
            storage.sequences.read_slice(header, 90, 20)
        with pytest.raises(StorageError):
            storage.sequences.read_slice(header, -1, 5)

    def test_chained_read_uses_chained_io(self, storage):
        big = StorageSystem(buffer_capacity=8 * 8192)
        big.create_segment("seq", 512)
        header = big.sequences.create("seq")
        big.sequences.write(header, bytes(20000))
        big.flush()
        # evict everything by filling the buffer with another segment
        big.create_segment("other", 8192)
        for _ in range(10):
            pid = big.allocate_page("other")
            with big.page(pid, write=True) as page:
                page.insert(b"fill")
        big.reset_accounting()
        big.sequences.read(header)
        assert big.disk.counters.get("chained_reads") >= 1

    def test_drop_frees_everything(self, storage):
        storage.create_segment("seq", 512)
        header = storage.sequences.create("seq")
        storage.sequences.write(header, bytes(3000))
        storage.sequences.drop(header)
        assert storage.segment("seq").allocated_pages == 0

    def test_component_pages_listed(self, storage):
        storage.create_segment("seq", 512)
        header = storage.sequences.create("seq")
        storage.sequences.write(header, bytes(2000))
        components = storage.sequences.component_pages(header)
        assert len(components) == (2000 + 495) // 496
