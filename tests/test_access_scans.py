"""Unit tests: the five scan types and NEXT/PRIOR positioning."""

import pytest

from repro.access.multidim import KeyCondition
from repro.access.scans import (
    AccessPathScan,
    AtomClusterScan,
    AtomClusterTypeScan,
    AtomTypeScan,
    ClusterSearchArgument,
    SearchArgument,
    SortScan,
)
from repro.errors import AccessError, ScanStateError
from repro.mad.molecule import StructureNode


@pytest.fixture
def populated(face_edge_access):
    access = face_edge_access
    edges = [access.insert("edge", {"length": float(i)}) for i in range(8)]
    faces = [access.insert("face", {"square_dim": float(i * 10),
                                    "name": f"f{i}",
                                    "border": edges[i:i + 2]})
             for i in range(4)]
    return access, edges, faces


class TestSearchArgument:
    def test_operators(self):
        arg = SearchArgument(("length", ">", 2.0), ("length", "<=", 5.0))
        assert arg.matches({"length": 3.0})
        assert not arg.matches({"length": 2.0})
        assert not arg.matches({"length": 6.0})

    def test_empty_operators(self):
        assert SearchArgument(("s", "empty", None)).matches({"s": []})
        assert SearchArgument(("s", "not_empty", None)).matches({"s": [1]})
        assert SearchArgument(("s", "contains", 2)).matches({"s": [1, 2]})

    def test_none_never_compares(self):
        assert not SearchArgument(("x", ">", 1)).matches({"x": None})
        assert not SearchArgument(("x", ">", 1)).matches({})

    def test_unknown_operator_rejected(self):
        with pytest.raises(AccessError):
            SearchArgument(("x", "~~", 1))


class TestAtomTypeScan:
    def test_system_order(self, populated):
        access, edges, _faces = populated
        scan = AtomTypeScan(access.atoms, "edge")
        got = [s for s, _v in scan]
        assert got == edges

    def test_search_argument(self, populated):
        access, _edges, _faces = populated
        scan = AtomTypeScan(access.atoms, "edge",
                            search=SearchArgument(("length", ">=", 5.0)))
        assert len(list(scan)) == 3

    def test_attribute_selection(self, populated):
        access, _edges, _faces = populated
        scan = AtomTypeScan(access.atoms, "face", attrs=["name"])
        _s, values = scan.next()
        assert set(values) == {"face_id", "name"}

    def test_next_prior_symmetry(self, populated):
        access, _edges, _faces = populated
        scan = AtomTypeScan(access.atoms, "edge")
        first = scan.next()
        second = scan.next()
        assert scan.prior() == first
        assert scan.next() == second

    def test_prior_at_start_returns_none(self, populated):
        access, _e, _f = populated
        scan = AtomTypeScan(access.atoms, "edge")
        assert scan.prior() is None

    def test_exhaustion_and_rewind(self, populated):
        access, edges, _f = populated
        scan = AtomTypeScan(access.atoms, "edge")
        assert len(list(scan)) == len(edges)
        assert scan.next() is None
        scan.rewind()
        assert scan.next() is not None

    def test_closed_scan_rejected(self, populated):
        access, _e, _f = populated
        scan = AtomTypeScan(access.atoms, "edge")
        scan.close()
        with pytest.raises(ScanStateError):
            scan.next()

    def test_deleted_atoms_skipped_mid_scan(self, populated):
        access, edges, _f = populated
        scan = AtomTypeScan(access.atoms, "edge")
        scan.next()
        access.delete(edges[1])
        got = scan.next()
        assert got[0] == edges[2]


class TestSortScan:
    def test_explicit_sort_without_support(self, populated):
        access, _e, _f = populated
        scan = SortScan(access.atoms, "edge", ["length"], reverse=True)
        assert not scan.used_sort_order
        lengths = [v["length"] for _s, v in scan]
        assert lengths == sorted(lengths, reverse=True)

    def test_uses_sort_order_when_matching(self, populated):
        access, _e, _f = populated
        access.create_sort_order("so", "edge", ["length"])
        scan = SortScan(access.atoms, "edge", ["length"])
        assert scan.used_sort_order
        lengths = [v["length"] for _s, v in scan]
        assert lengths == sorted(lengths)

    def test_start_stop_both_paths(self, populated):
        access, _e, _f = populated
        plain = [v["length"] for _s, v in
                 SortScan(access.atoms, "edge", ["length"],
                          start=2.0, stop=5.0)]
        access.create_sort_order("so", "edge", ["length"])
        supported = [v["length"] for _s, v in
                     SortScan(access.atoms, "edge", ["length"],
                              start=2.0, stop=5.0)]
        assert plain == supported == [2.0, 3.0, 4.0, 5.0]

    def test_search_argument(self, populated):
        access, _e, _f = populated
        scan = SortScan(access.atoms, "edge", ["length"],
                        search=SearchArgument(("length", "!=", 3.0)))
        assert 3.0 not in [v["length"] for _s, v in scan]


class TestAccessPathScan:
    def test_range_conditions(self, populated):
        access, _e, _f = populated
        path = access.create_access_path("ap", "edge", ["length"])
        scan = AccessPathScan(access.atoms, path,
                              [KeyCondition(start=2.0, stop=4.0)])
        got = [v["length"] for _s, v in scan]
        assert got == [2.0, 3.0, 4.0]

    def test_descending_direction(self, populated):
        access, _e, _f = populated
        path = access.create_access_path("ap", "edge", ["length"])
        scan = AccessPathScan(access.atoms, path,
                              [KeyCondition(descending=True)])
        got = [v["length"] for _s, v in scan]
        assert got == sorted(got, reverse=True)


@pytest.fixture
def clustered(populated):
    access, edges, faces = populated
    structure = StructureNode("face", "face")
    structure.add_child(StructureNode(
        "edge", "edge", via=access.schema.association("face", "border")))
    cluster = access.create_cluster("fc", structure)
    return access, edges, faces, cluster


class TestClusterScans:
    def test_cluster_type_scan(self, clustered):
        access, _e, faces, cluster = clustered
        scan = AtomClusterTypeScan(access.atoms, cluster)
        roots = [root for root, _char in scan]
        assert roots == sorted(faces)

    def test_cluster_type_scan_single_pass_argument(self, clustered):
        access, _e, _f, cluster = clustered
        argument = ClusterSearchArgument(
            "edge", SearchArgument(("length", ">=", 4.0)), "exists")
        scan = AtomClusterTypeScan(access.atoms, cluster, search=argument)
        assert 0 < len(list(scan)) < 4

    def test_cluster_type_scan_all_quantifier(self, clustered):
        access, _e, _f, cluster = clustered
        argument = ClusterSearchArgument(
            "edge", SearchArgument(("length", ">=", 0.0)), "all")
        scan = AtomClusterTypeScan(access.atoms, cluster, search=argument)
        assert len(list(scan)) == 4

    def test_bad_quantifier_rejected(self):
        with pytest.raises(AccessError):
            ClusterSearchArgument("edge", SearchArgument(), "most")

    def test_atom_cluster_scan(self, clustered):
        access, edges, faces, cluster = clustered
        scan = AtomClusterScan(access.atoms, cluster, faces[0], "edge")
        got = {s for s, _v in scan}
        assert got == set(edges[0:2])

    def test_atom_cluster_scan_with_search(self, clustered):
        access, _edges, faces, cluster = clustered
        scan = AtomClusterScan(access.atoms, cluster, faces[0], "edge",
                               search=SearchArgument(("length", "=", 0.0)))
        assert len(list(scan)) == 1


class TestSortScanAccessPathFallback:
    """'It may engage an access path if available' (paper, 3.2)."""

    def test_btree_path_engaged(self, populated):
        access, _e, _f = populated
        access.create_access_path("e_len_path", "edge", ["length"])
        scan = SortScan(access.atoms, "edge", ["length"])
        assert not scan.used_sort_order
        assert scan.used_access_path
        lengths = [v["length"] for _s, v in scan]
        assert lengths == sorted(lengths)

    def test_path_with_bounds_and_direction(self, populated):
        access, _e, _f = populated
        access.create_access_path("e_len_path", "edge", ["length"])
        scan = SortScan(access.atoms, "edge", ["length"],
                        start=2.0, stop=5.0, reverse=True)
        lengths = [v["length"] for _s, v in scan]
        assert lengths == [5.0, 4.0, 3.0, 2.0]

    def test_sort_order_preferred_over_path(self, populated):
        access, _e, _f = populated
        access.create_access_path("e_len_path", "edge", ["length"])
        access.create_sort_order("e_len_so", "edge", ["length"])
        scan = SortScan(access.atoms, "edge", ["length"])
        assert scan.used_sort_order and not scan.used_access_path

    def test_grid_path_not_engaged(self, populated):
        access, _e, _f = populated
        access.create_access_path("e_grid", "edge", ["length"],
                                  method="grid")
        scan = SortScan(access.atoms, "edge", ["length"])
        assert not scan.used_access_path   # grids have no linear order
        lengths = [v["length"] for _s, v in scan]
        assert lengths == sorted(lengths)  # explicit sort still correct
