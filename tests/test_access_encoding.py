"""Unit tests: binary record encoding."""

import pytest

from repro.access.encoding import decode_atom, encode_atom, encoded_size
from repro.errors import AccessError
from repro.mad.types import Surrogate


class TestRoundTrip:
    CASES = [
        {},
        {"i": 42},
        {"i": -(2 ** 40)},
        {"f": 3.25},
        {"s": "héllo wörld"},
        {"b_true": True, "b_false": False},
        {"none": None},
        {"bytes": b"\x00\xff" * 10},
        {"ref": Surrogate("edge", 17)},
        {"list": [1, 2.5, "three", None]},
        {"set": [Surrogate("point", 1), Surrogate("point", 2)]},
        {"record": {"x_coord": 1.0, "y_coord": 2.0, "z_coord": 3.0}},
        {"nested": {"a": [{"b": [1, [2, 3]]}]}},
        {"many": {f"attr{i}": i for i in range(50)}},
    ]

    @pytest.mark.parametrize("values", CASES,
                             ids=[str(i) for i in range(len(CASES))])
    def test_roundtrip(self, values):
        assert decode_atom(encode_atom(values)) == values

    def test_surrogate_type_preserved(self):
        out = decode_atom(encode_atom({"ref": Surrogate("a_type", 9)}))
        assert isinstance(out["ref"], Surrogate)
        assert out["ref"].atom_type == "a_type"
        assert out["ref"].number == 9

    def test_bool_not_confused_with_int(self):
        out = decode_atom(encode_atom({"b": True, "i": 1}))
        assert out["b"] is True
        assert out["i"] == 1
        assert not isinstance(out["i"], bool)

    def test_attribute_order_preserved(self):
        values = {"z": 1, "a": 2, "m": 3}
        assert list(decode_atom(encode_atom(values))) == ["z", "a", "m"]


class TestErrors:
    def test_unencodable_value(self):
        with pytest.raises(AccessError):
            encode_atom({"x": object()})

    def test_non_string_record_key(self):
        with pytest.raises(AccessError):
            encode_atom({"x": {1: "bad"}})

    def test_corrupt_tag(self):
        with pytest.raises(AccessError):
            decode_atom(b"\xff\x00\x00")

    def test_empty_payload(self):
        with pytest.raises(AccessError):
            decode_atom(b"")

    def test_trailing_garbage(self):
        payload = encode_atom({"a": 1}) + b"junk"
        with pytest.raises(AccessError):
            decode_atom(payload)


class TestSize:
    def test_encoded_size_matches(self):
        values = {"a": 1, "b": "text"}
        assert encoded_size(values) == len(encode_atom(values))

    def test_partition_smaller_than_full_atom(self):
        full = {"a": 1, "big": "x" * 500, "more": list(range(50))}
        part = {"a": 1}
        assert encoded_size(part) < encoded_size(full) / 10
