"""Unit tests: semantic decomposition and the simulated scheduler."""

import pytest

from repro import Prima
from repro.errors import DecompositionError
from repro.parallel import (
    SemanticDecomposer,
    UnitOfWork,
    build_conflict_edges,
    parallel_select,
    simulate,
)
from repro.mad.types import Surrogate
from repro.workloads import brep


def _unit(index, cost, reads=(), writes=()):
    unit = UnitOfWork(index=index, root=Surrogate("t", index))
    unit.cost = cost
    unit.read_set = {Surrogate("t", n) for n in reads}
    unit.write_set = {Surrogate("t", n) for n in writes}
    return unit


class TestConflicts:
    def test_read_read_never_conflicts(self):
        a = _unit(0, 1, reads=(1, 2))
        b = _unit(1, 1, reads=(2, 3))
        assert not a.conflicts_with(b)
        assert build_conflict_edges([a, b]) == []

    def test_write_write_conflicts(self):
        a = _unit(0, 1, writes=(5,))
        b = _unit(1, 1, writes=(5,))
        assert a.conflicts_with(b)
        assert build_conflict_edges([a, b]) == [(0, 1)]

    def test_read_write_conflicts(self):
        a = _unit(0, 1, reads=(5,))
        b = _unit(1, 1, writes=(5,))
        assert a.conflicts_with(b) and b.conflicts_with(a)

    def test_disjoint_writes_ok(self):
        a = _unit(0, 1, writes=(1,))
        b = _unit(1, 1, writes=(2,))
        assert build_conflict_edges([a, b]) == []


class TestScheduler:
    def test_single_processor_equals_serial(self):
        units = [_unit(i, 10) for i in range(5)]
        report = simulate(units, processors=1)
        assert report.makespan == report.serial_time == 50
        assert report.speedup == 1.0

    def test_perfect_parallelism(self):
        units = [_unit(i, 10) for i in range(8)]
        report = simulate(units, processors=4)
        assert report.makespan == 20
        assert report.speedup == 4.0
        assert report.efficiency == 1.0

    def test_uneven_costs(self):
        units = [_unit(0, 30), _unit(1, 10), _unit(2, 10), _unit(3, 10)]
        report = simulate(units, processors=2)
        assert report.makespan == 30   # the long unit dominates

    def test_conflicts_serialise(self):
        units = [_unit(i, 10, writes=(7,)) for i in range(4)]
        report = simulate(units, processors=4)
        assert report.makespan == 40   # fully serialised
        assert report.conflict_edges == 6

    def test_conflict_order_preserved(self):
        units = [_unit(0, 10, writes=(7,)), _unit(1, 1, writes=(7,))]
        report = simulate(units, processors=2)
        first = next(s for s in report.schedule if s.unit_index == 0)
        second = next(s for s in report.schedule if s.unit_index == 1)
        assert second.start >= first.finish

    def test_processor_count_validated(self):
        with pytest.raises(DecompositionError):
            simulate([], processors=0)

    def test_empty_units(self):
        report = simulate([], processors=4)
        assert report.makespan == 0.0

    def test_explain_text(self):
        report = simulate([_unit(0, 5)], processors=2)
        assert "speedup" in report.explain()


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def handles(self):
        return brep.generate(Prima(), n_solids=6)

    def test_results_equal_serial_execution(self, handles):
        db = handles.db
        query = "SELECT ALL FROM brep-face-edge-point"
        outcome = parallel_select(db, query, processors=4)
        serial = db.query(query)
        assert [m.to_dict() for m in outcome.result] == \
            [m.to_dict() for m in serial]

    def test_retrieval_units_conflict_free(self, handles):
        decomposer = SemanticDecomposer(handles.db.data)
        plan, units = decomposer.decompose_select(
            "SELECT ALL FROM brep-face-edge-point")
        decomposer.run_all(plan, units)
        assert build_conflict_edges(units) == []
        assert all(unit.cost >= 1 for unit in units)
        assert all(unit.read_set for unit in units)

    def test_speedup_grows_with_processors(self, handles):
        db = handles.db
        query = "SELECT ALL FROM brep-face-edge-point"
        speedups = [
            parallel_select(db, query, processors=p).report.speedup
            for p in (1, 2, 4)
        ]
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[0] < speedups[1] < speedups[2]

    def test_sargable_root_predicate_shrinks_unit_count(self, handles):
        db = handles.db
        outcome = parallel_select(
            db, "SELECT ALL FROM brep-face WHERE brep_no = 1713",
            processors=2)
        assert len(outcome.result) == 1
        # the key lookup already selected the single root: one DU only
        assert outcome.report.unit_count == 1

    def test_residual_qualification_inside_units(self, handles):
        db = handles.db
        outcome = parallel_select(
            db, "SELECT ALL FROM brep-face WHERE "
                "EXISTS_AT_LEAST (6) face: face.square_dim > 0.0",
            processors=2)
        # non-sargable qualification: every root becomes a DU, the
        # qualification is evaluated inside the unit
        assert outcome.report.unit_count == len(handles.breps)
        assert len(outcome.result) == len(handles.breps)

    def test_dml_rejected(self, handles):
        decomposer = SemanticDecomposer(handles.db.data)
        with pytest.raises(DecompositionError):
            decomposer.decompose_select("INSERT solid (solid_no = 1)")


class TestThreadedWorkers:
    """run_all drives one real thread per construction worker, feeding a
    bounded queue the merge stage drains; results stay deterministic."""

    @pytest.fixture(scope="class")
    def handles(self):
        return brep.generate(Prima(), n_solids=6)

    def test_determinism_across_partition_counts(self, handles):
        db = handles.db
        query = "SELECT ALL FROM brep-face-edge-point"
        serial = [m.to_dict() for m in db.query(query)]
        for partitions in (1, 2, 3, 4, 6, 8):
            outcome = parallel_select(db, query, processors=4,
                                      partitions=partitions)
            assert [m.to_dict() for m in outcome.result] == serial, \
                f"partitions={partitions}"

    def test_determinism_with_order_and_window(self, handles):
        db = handles.db
        query = ("SELECT ALL FROM brep ORDER BY brep_no DESC "
                 "LIMIT 3 OFFSET 1")
        serial = [m.to_dict() for m in db.query(query)]
        for partitions in (2, 3, 5):
            outcome = parallel_select(db, query, processors=4,
                                      partitions=partitions)
            assert [m.to_dict() for m in outcome.result] == serial

    def test_max_workers_caps_threads_same_result(self, handles):
        db = handles.db
        query = "SELECT ALL FROM brep-face"
        serial = [m.to_dict() for m in db.query(query)]
        for max_workers in (1, 2, 4):
            outcome = parallel_select(db, query, processors=4,
                                      partitions=4,
                                      max_workers=max_workers)
            assert [m.to_dict() for m in outcome.result] == serial

    def test_unit_costs_exact_under_threads(self, handles):
        """The construction lock keeps the counted region exclusive, so
        per-DU cost measurement stays exact with real threads."""
        decomposer = SemanticDecomposer(handles.db.data)
        plan, units = decomposer.decompose_select(
            "SELECT ALL FROM brep-face-edge-point")
        decomposer.run_all(plan, units, partitions=4)
        assert all(unit.cost >= 1 for unit in units)
        assert all(unit.read_set for unit in units)
        assert all(unit.result is not None for unit in units)

    def test_invalid_max_workers_rejected(self, handles):
        decomposer = SemanticDecomposer(handles.db.data)
        plan, units = decomposer.decompose_select("SELECT ALL FROM brep")
        with pytest.raises(DecompositionError):
            decomposer.run_all(plan, units, partitions=2, max_workers=0)


class TestDmlDecomposition:
    @pytest.fixture
    def handles(self):
        return brep.generate(Prima(), n_solids=4)

    def test_modify_units_carry_write_sets(self, handles):
        decomposer = SemanticDecomposer(handles.db.data)
        context, units = decomposer.decompose_modify(
            "MODIFY face SET square_dim = 3.0 FROM brep-face")
        for unit in units:
            decomposer.execute_modify_unit(context, unit)
        assert len(units) == len(handles.breps)
        assert all(len(unit.write_set) == 6 for unit in units)
        result = handles.db.query("SELECT ALL FROM face")
        assert all(m.atom["square_dim"] == 3.0 for m in result)

    def test_shared_atoms_create_conflicts(self, handles):
        """Edges are shared by two faces of the same brep — but across
        breps nothing is shared: conflicts appear exactly where molecules
        overlap."""
        decomposer = SemanticDecomposer(handles.db.data)
        context, units = decomposer.decompose_modify(
            "MODIFY edge SET length = 1.0 FROM face-edge")
        for unit in units:
            decomposer.execute_modify_unit(context, unit)
        edges = build_conflict_edges(units)
        assert edges            # faces of one box share edges
        # all conflicts stay within one brep's face group (6 faces/box)
        for i, j in edges:
            assert units[i].root.atom_type == "face"
            shared = units[i].write_set & units[j].write_set
            assert shared
        report = simulate(units, processors=8)
        assert 1.0 <= report.speedup < 8.0   # partial parallelism

    def test_disjoint_modify_fully_parallel(self, handles):
        decomposer = SemanticDecomposer(handles.db.data)
        context, units = decomposer.decompose_modify(
            "MODIFY brep SET hull = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0] "
            "FROM brep")
        for unit in units:
            decomposer.execute_modify_unit(context, unit)
        assert build_conflict_edges(units) == []

    def test_qualification_respected(self, handles):
        decomposer = SemanticDecomposer(handles.db.data)
        context, units = decomposer.decompose_modify(
            "MODIFY face SET square_dim = 9.0 FROM brep-face "
            "WHERE brep_no = 1713")
        for unit in units:
            decomposer.execute_modify_unit(context, unit)
        changed = handles.db.query(
            "SELECT ALL FROM face WHERE square_dim = 9.0")
        assert len(changed) == 6

    def test_results_equal_serial_modify(self):
        serial = brep.generate(Prima(), n_solids=3)
        parallel = brep.generate(Prima(), n_solids=3)
        serial.db.execute("MODIFY edge SET length = 2.5 FROM face-edge")
        decomposer = SemanticDecomposer(parallel.db.data)
        context, units = decomposer.decompose_modify(
            "MODIFY edge SET length = 2.5 FROM face-edge")
        for unit in units:
            decomposer.execute_modify_unit(context, unit)
        a = sorted(repr(m.to_dict())
                   for m in serial.db.query("SELECT ALL FROM edge"))
        b = sorted(repr(m.to_dict())
                   for m in parallel.db.query("SELECT ALL FROM edge"))
        assert a == b

    def test_select_statement_rejected(self, handles):
        decomposer = SemanticDecomposer(handles.db.data)
        with pytest.raises(DecompositionError):
            decomposer.decompose_modify("SELECT ALL FROM brep")
