"""Unit and property tests: the grid file (multi-dimensional access)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.access.multidim import GridFile, KeyCondition
from repro.errors import AccessError
from repro.mad.types import Surrogate


def s(n: int) -> Surrogate:
    return Surrogate("t", n)


class TestBasics:
    def test_insert_and_size(self):
        grid = GridFile(dims=2, bucket_capacity=4)
        grid.insert((1, 2), s(1))
        assert len(grid) == 1

    def test_dims_validated(self):
        grid = GridFile(dims=2)
        with pytest.raises(AccessError):
            grid.insert((1,), s(1))
        with pytest.raises(AccessError):
            GridFile(dims=0)

    def test_duplicate_rejected(self):
        grid = GridFile(dims=1)
        grid.insert((1,), s(1))
        with pytest.raises(AccessError):
            grid.insert((1,), s(1))

    def test_delete(self):
        grid = GridFile(dims=1)
        grid.insert((1,), s(1))
        grid.delete((1,), s(1))
        assert len(grid) == 0
        with pytest.raises(AccessError):
            grid.delete((1,), s(1))

    def test_splitting_creates_cells(self):
        grid = GridFile(dims=2, bucket_capacity=4)
        for i in range(40):
            grid.insert((i % 10, i // 10), s(i))
        assert grid.cell_count > 1
        grid.check_invariants()

    def test_equal_keys_do_not_split_forever(self):
        grid = GridFile(dims=1, bucket_capacity=2)
        for i in range(10):
            grid.insert((5,), s(i))
        grid.check_invariants()
        assert len(grid) == 10


class TestBoxQueries:
    @pytest.fixture
    def grid(self):
        grid = GridFile(dims=2, bucket_capacity=4)
        n = 0
        for x in range(6):
            for y in range(6):
                grid.insert((x, y), s(n))
                n += 1
        return grid

    def test_full_box(self, grid):
        assert len(list(grid.all_entries())) == 36

    def test_bounded_box(self, grid):
        conditions = [KeyCondition(start=1, stop=3),
                      KeyCondition(start=2, stop=4)]
        got = {key for key, _ in grid.box(conditions)}
        want = {(x, y) for x in range(1, 4) for y in range(2, 5)}
        assert got == want

    def test_exclusive_bounds(self, grid):
        conditions = [KeyCondition(start=1, stop=3, include_start=False,
                                   include_stop=False),
                      KeyCondition()]
        xs = {key[0] for key, _ in grid.box(conditions)}
        assert xs == {2}

    def test_per_key_directions(self, grid):
        conditions = [KeyCondition(start=0, stop=1, descending=True),
                      KeyCondition(start=0, stop=1)]
        got = [key for key, _ in grid.box(conditions)]
        assert got == [(1, 0), (1, 1), (0, 0), (0, 1)]

    def test_condition_count_checked(self, grid):
        with pytest.raises(AccessError):
            list(grid.box([KeyCondition()]))


@settings(max_examples=40, deadline=None)
@given(st.sets(st.tuples(st.integers(0, 15), st.integers(0, 15)),
               min_size=1, max_size=120),
       st.integers(0, 15), st.integers(0, 15),
       st.integers(0, 15), st.integers(0, 15))
def test_grid_box_matches_filter(points, x0, x1, y0, y1):
    """Property: box queries equal brute-force filtering."""
    grid = GridFile(dims=2, bucket_capacity=3)
    for index, point in enumerate(sorted(points)):
        grid.insert(point, s(index))
    grid.check_invariants()
    x0, x1 = min(x0, x1), max(x0, x1)
    y0, y1 = min(y0, y1), max(y0, y1)
    conditions = [KeyCondition(start=x0, stop=x1),
                  KeyCondition(start=y0, stop=y1)]
    got = {key for key, _ in grid.box(conditions)}
    want = {(x, y) for x, y in points if x0 <= x <= x1 and y0 <= y <= y1}
    assert got == want


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 8),
                          st.integers(0, 8)), max_size=150))
def test_grid_insert_delete_consistent(ops):
    """Property: membership matches an oracle set under random ops."""
    grid = GridFile(dims=2, bucket_capacity=3)
    oracle: set[tuple[int, int]] = set()
    for insert, x, y in ops:
        point = (x, y)
        if insert or not oracle:
            if point not in oracle:
                grid.insert(point, s(x * 100 + y))
                oracle.add(point)
        else:
            victim = sorted(oracle)[0]
            grid.delete(victim, s(victim[0] * 100 + victim[1]))
            oracle.discard(victim)
    grid.check_invariants()
    got = {key for key, _ in grid.all_entries()}
    assert got == oracle
