"""Unit tests: the MAD attribute type system."""

import pytest

from repro.errors import CardinalityError, SchemaError, TypeMismatchError
from repro.mad import (
    BOOLEAN,
    BYTE_VAR,
    CHAR_VAR,
    IDENTIFIER,
    INTEGER,
    REAL,
    ArrayType,
    AtomType,
    CharVarType,
    ListType,
    RecordType,
    ReferenceType,
    SetType,
    Surrogate,
    is_reference,
    reference_of,
    reference_values,
)


class TestScalars:
    def test_integer(self):
        assert INTEGER.validate(5) == 5
        assert INTEGER.validate(None) is None
        with pytest.raises(TypeMismatchError):
            INTEGER.validate("five")
        with pytest.raises(TypeMismatchError):
            INTEGER.validate(True)   # bool is not INTEGER

    def test_real_coerces_int(self):
        assert REAL.validate(3) == 3.0
        assert isinstance(REAL.validate(3), float)
        with pytest.raises(TypeMismatchError):
            REAL.validate("x")

    def test_boolean(self):
        assert BOOLEAN.validate(True) is True
        with pytest.raises(TypeMismatchError):
            BOOLEAN.validate(1)

    def test_char_var_length(self):
        bounded = CharVarType(max_length=3)
        assert bounded.validate("abc") == "abc"
        with pytest.raises(TypeMismatchError):
            bounded.validate("abcd")
        assert CHAR_VAR.validate("any length at all")

    def test_byte_var(self):
        assert BYTE_VAR.validate(bytearray(b"ab")) == b"ab"
        with pytest.raises(TypeMismatchError):
            BYTE_VAR.validate("text")

    def test_identifier(self):
        assert IDENTIFIER.validate(Surrogate("t", 1)) == Surrogate("t", 1)
        with pytest.raises(TypeMismatchError):
            IDENTIFIER.validate(42)


class TestReference:
    def test_target_type_checked(self):
        ref = ReferenceType("edge", "face")
        assert ref.validate(Surrogate("edge", 1))
        with pytest.raises(TypeMismatchError):
            ref.validate(Surrogate("point", 1))
        with pytest.raises(TypeMismatchError):
            ref.validate(42)

    def test_ddl_rendering(self):
        assert ReferenceType("edge", "face").ddl() == "REF_TO (edge.face)"

    def test_helpers(self):
        ref = ReferenceType("edge", "face")
        set_ref = SetType(ref)
        assert is_reference(ref) and is_reference(set_ref)
        assert not is_reference(INTEGER)
        assert reference_of(set_ref) is ref
        assert reference_of(INTEGER) is None
        surrogates = [Surrogate("edge", 1), Surrogate("edge", 2)]
        assert reference_values(set_ref, surrogates) == surrogates
        assert reference_values(ref, surrogates[0]) == [surrogates[0]]
        assert reference_values(ref, None) == []


class TestCompounds:
    def test_record(self):
        record = RecordType((("x", REAL), ("y", REAL)))
        assert record.validate({"x": 1, "y": 2.0}) == {"x": 1.0, "y": 2.0}
        assert record.validate({"x": 1.0}) == {"x": 1.0, "y": None}
        with pytest.raises(TypeMismatchError):
            record.validate({"z": 1.0})
        assert record.default() == {"x": None, "y": None}

    def test_array_fixed_length(self):
        array = ArrayType(REAL, 3)
        assert array.validate([1, 2, 3]) == [1.0, 2.0, 3.0]
        with pytest.raises(TypeMismatchError):
            array.validate([1.0, 2.0])

    def test_set_deduplicates_and_sorts(self):
        set_type = SetType(ReferenceType("e", "f"))
        a, b = Surrogate("e", 2), Surrogate("e", 1)
        assert set_type.validate([a, b, a]) == [b, a]

    def test_set_max_cardinality_enforced(self):
        set_type = SetType(INTEGER, 0, 2)
        with pytest.raises(CardinalityError):
            set_type.validate([1, 2, 3])

    def test_set_min_deferred_but_checkable(self):
        set_type = SetType(INTEGER, 2, None)
        assert set_type.validate([1]) == [1]     # writes allowed
        with pytest.raises(CardinalityError):
            set_type.check_cardinality(1)        # explicit check fails

    def test_list_keeps_duplicates_and_order(self):
        list_type = ListType(INTEGER)
        assert list_type.validate([3, 1, 3]) == [3, 1, 3]

    def test_ddl_roundtrip_shapes(self):
        cases = [
            SetType(ReferenceType("face", "brep"), 4, None),
            SetType(INTEGER, 1, 5),
            ListType(CHAR_VAR),
            ArrayType(REAL, 6),
            RecordType((("x_coord", REAL), ("y_coord", REAL))),
        ]
        for attr_type in cases:
            assert attr_type.ddl()
        assert "(" in SetType(INTEGER, 1, 5).ddl()
        assert "VAR" in SetType(INTEGER, 4, None).ddl()


class TestAtomType:
    def test_exactly_one_identifier(self):
        with pytest.raises(SchemaError):
            AtomType("t", [("a", INTEGER)])
        with pytest.raises(SchemaError):
            AtomType("t", [("a", IDENTIFIER), ("b", IDENTIFIER)])

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            AtomType("t", [("a", IDENTIFIER), ("a", INTEGER)])

    def test_bad_name_rejected(self):
        with pytest.raises(SchemaError):
            AtomType("1bad", [("a", IDENTIFIER)])

    def test_unknown_key_attr_rejected(self):
        with pytest.raises(SchemaError):
            AtomType("t", [("a", IDENTIFIER)], keys=("ghost",))

    def test_attr_classification(self):
        atom_type = AtomType("t", [
            ("t_id", IDENTIFIER),
            ("n", INTEGER),
            ("ref", ReferenceType("t", "back")),
            ("back", SetType(ReferenceType("t", "ref"))),
        ])
        assert atom_type.identifier_attr == "t_id"
        assert atom_type.reference_attrs() == ["ref", "back"]
        assert atom_type.data_attrs() == ["n"]

    def test_validate_values_partial(self):
        atom_type = AtomType("t", [("t_id", IDENTIFIER), ("n", INTEGER)])
        full = atom_type.validate_values({}, partial=False)
        assert full == {"n": None}
        partial = atom_type.validate_values({}, partial=True)
        assert partial == {}
