"""Tests: several workstations coupled to one PRIMA server."""

import pytest

from repro import Prima
from repro.coupling import PrimaServer, Workstation
from repro.workloads import brep


@pytest.fixture
def stations():
    db = Prima()
    handles = brep.generate(db, n_solids=4)
    server = PrimaServer(db)
    cad1 = Workstation(server, name="cad-1")
    cad2 = Workstation(server, name="cad-2")
    return handles, server, cad1, cad2


class TestMultipleWorkstations:
    def test_disjoint_checkouts_commit_independently(self, stations):
        handles, _server, cad1, cad2 = stations
        m1 = cad1.checkout("SELECT ALL FROM brep-face-edge-point "
                           "WHERE brep_no = 1713")[0]
        m2 = cad2.checkout("SELECT ALL FROM brep-face-edge-point "
                           "WHERE brep_no = 1714")[0]
        e1 = m1.component_list("face")[0].component_list("edge")[0].surrogate
        e2 = m2.component_list("face")[0].component_list("edge")[0].surrogate
        cad1.modify(e1, {"length": 111.0})
        cad2.modify(e2, {"length": 222.0})
        cad1.commit()
        cad2.commit()
        assert handles.db.access.get(e1)["length"] == 111.0
        assert handles.db.access.get(e2)["length"] == 222.0
        assert handles.db.verify_integrity() == []

    def test_overlapping_checkout_last_writer_wins(self, stations):
        handles, _server, cad1, cad2 = stations
        query = "SELECT ALL FROM brep-edge WHERE brep_no = 1713"
        edge = cad1.checkout(query)[0].component_list("edge")[0].surrogate
        cad2.checkout(query)
        cad1.modify(edge, {"length": 1.0})
        cad2.modify(edge, {"length": 2.0})
        cad1.commit()
        cad2.commit()
        # the object-buffer protocol is optimistic: the later checkin wins
        assert handles.db.access.get(edge)["length"] == 2.0

    def test_checkout_after_peer_commit_sees_fresh_data(self, stations):
        handles, _server, cad1, cad2 = stations
        query = "SELECT ALL FROM brep-edge WHERE brep_no = 1713"
        edge = cad1.checkout(query)[0].component_list("edge")[0].surrogate
        cad1.modify(edge, {"length": 99.0})
        cad1.commit()
        molecule = cad2.checkout(query)[0]
        lengths = {e.atom["length"] for e in molecule.component_list("edge")}
        assert 99.0 in lengths

    def test_stats_accounted_per_server_connection(self, stations):
        _handles, server, cad1, cad2 = stations
        before = server.stats.messages
        cad1.checkout("SELECT ALL FROM solid WHERE sub = EMPTY")
        cad2.checkout("SELECT ALL FROM solid WHERE sub = EMPTY")
        assert server.stats.messages == before + 4     # 2 pairs

    def test_concurrent_creations_get_distinct_surrogates(self, stations):
        handles, _server, cad1, cad2 = stations
        t1 = cad1.create("solid", {"solid_no": 801})
        t2 = cad2.create("solid", {"solid_no": 802})
        cad1.commit()
        cad2.commit()
        r1 = cad1.last_mapping[t1]
        r2 = cad2.last_mapping[t2]
        assert r1 != r2
        assert handles.db.access.get(r1)["solid_no"] == 801
        assert handles.db.access.get(r2)["solid_no"] == 802
