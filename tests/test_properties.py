"""Property-based tests on cross-module invariants (hypothesis).

The B*-tree and grid-file oracles live next to their unit tests; this file
covers the remaining DESIGN.md §6 properties: record encoding, buffer
round-trips, the back-reference symmetry invariant under arbitrary DML
sequences, and nested-transaction recovery.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.access.encoding import decode_atom, encode_atom
from repro.access.integrity import verify_database
from repro.mad.types import Surrogate
from repro.storage.buffer import BufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageId

# ---------------------------------------------------------------------------
# encoding: encode . decode == id for the full value universe
# ---------------------------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.binary(max_size=40),
    st.builds(Surrogate, st.text(min_size=1, max_size=8), st.integers(0, 999)),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=15,
)


@settings(max_examples=150, deadline=None)
@given(st.dictionaries(st.text(min_size=1, max_size=10), _values,
                       max_size=8))
def test_encoding_roundtrip(values):
    assert decode_atom(encode_atom(values)) == values


# ---------------------------------------------------------------------------
# buffer: contents survive arbitrary fix/unfix/evict/flush interleavings
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 12), st.booleans()),
                min_size=1, max_size=60),
       st.sampled_from([512, 1024]))
def test_buffer_roundtrip_under_pressure(accesses, page_size):
    """Writing a counter into pages through a tiny buffer never loses an
    update, and the byte budget is never exceeded."""
    disk = SimulatedDisk()
    disk.create_file("seg", page_size)
    for no in range(1, 13):
        disk.write_block("seg", no, Page.format(page_size, no).to_bytes())
    buffer = BufferManager(disk, capacity_bytes=3 * page_size)
    shadow: dict[int, list[bytes]] = {no: [] for no in range(1, 13)}
    for page_no, do_write in accesses:
        pid = PageId("seg", page_no)
        page = buffer.fix(pid)
        # verify everything written so far is present
        got = [payload for _slot, payload in page.records()]
        assert got == shadow[page_no]
        if do_write and page.space_for(8):
            payload = bytes([len(shadow[page_no]) % 256]) * 8
            page.insert(payload)
            shadow[page_no].append(payload)
        buffer.unfix(pid, dirty=do_write)
        assert buffer.used_bytes <= buffer.capacity_bytes
    buffer.flush()
    for no, payloads in shadow.items():
        reread = Page.from_bytes(disk.read_block("seg", no))
        assert [p for _s, p in reread.records()] == payloads


# ---------------------------------------------------------------------------
# the MAD invariant: symmetry survives arbitrary DML sequences
# ---------------------------------------------------------------------------

_dml_ops = st.lists(
    st.tuples(st.sampled_from(["insert_e", "insert_f", "connect",
                               "disconnect", "delete_e", "delete_f"]),
              st.integers(0, 10 ** 6), st.integers(0, 10 ** 6)),
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(_dml_ops)
def test_backreference_symmetry_invariant(ops):
    """After ANY sequence of inserts/connects/disconnects/deletes the
    database satisfies: a references b <=> b back-references a, and no
    reference dangles (DESIGN.md §6)."""
    from repro.access.system import AccessSystem
    from repro.mad import (IDENTIFIER, REAL, AtomType, ReferenceType,
                           Schema, SetType)
    from repro.storage.system import StorageSystem

    schema = Schema()
    schema.create_atom_type(AtomType("face", [
        ("face_id", IDENTIFIER), ("square_dim", REAL),
        ("border", SetType(ReferenceType("edge", "face"))),
    ]))
    schema.create_atom_type(AtomType("edge", [
        ("edge_id", IDENTIFIER), ("length", REAL),
        ("face", SetType(ReferenceType("face", "border"))),
    ]))
    schema.check_symmetry()
    access = AccessSystem(StorageSystem(), schema)
    access.atoms.register_atom_type("face")
    access.atoms.register_atom_type("edge")

    edges: list[Surrogate] = []
    faces: list[Surrogate] = []
    for op, a, b in ops:
        if op == "insert_e":
            edges.append(access.insert("edge", {"length": float(a % 100)}))
        elif op == "insert_f":
            chosen = [edges[a % len(edges)]] if edges else []
            faces.append(access.insert("face", {"border": chosen}))
        elif op == "connect" and edges and faces:
            face = faces[a % len(faces)]
            edge = edges[b % len(edges)]
            border = access.get(face)["border"]
            if edge not in border:
                access.modify(face, {"border": border + [edge]})
        elif op == "disconnect" and faces:
            face = faces[a % len(faces)]
            border = access.get(face)["border"]
            if border:
                border = [e for e in border if e != border[b % len(border)]]
                access.modify(face, {"border": border})
        elif op == "delete_e" and edges:
            access.delete(edges.pop(a % len(edges)))
        elif op == "delete_f" and faces:
            access.delete(faces.pop(a % len(faces)))
    assert verify_database(access.atoms) == []


# ---------------------------------------------------------------------------
# nested transactions: abort restores exactly the pre-transaction state
# ---------------------------------------------------------------------------

_txn_ops = st.lists(
    st.tuples(st.sampled_from(["insert", "modify", "delete", "connect"]),
              st.integers(0, 10 ** 6), st.integers(0, 10 ** 6)),
    min_size=1, max_size=25,
)


@settings(max_examples=40, deadline=None)
@given(_txn_ops, _txn_ops)
def test_transaction_abort_restores_state(setup_ops, txn_ops):
    """Property: whatever a transaction (with a committed subtransaction
    inside) did, abort returns the database to the exact prior state."""
    from repro.access.system import AccessSystem
    from repro.mad import (IDENTIFIER, REAL, AtomType, ReferenceType,
                           Schema, SetType)
    from repro.storage.system import StorageSystem
    from repro.txn import TransactionManager

    schema = Schema()
    schema.create_atom_type(AtomType("face", [
        ("face_id", IDENTIFIER), ("square_dim", REAL),
        ("border", SetType(ReferenceType("edge", "face"))),
    ]))
    schema.create_atom_type(AtomType("edge", [
        ("edge_id", IDENTIFIER), ("length", REAL),
        ("face", SetType(ReferenceType("face", "border"))),
    ]))
    schema.check_symmetry()
    access = AccessSystem(StorageSystem(), schema)
    access.atoms.register_atom_type("face")
    access.atoms.register_atom_type("edge")

    edges: list[Surrogate] = []
    faces: list[Surrogate] = []
    for op, a, b in setup_ops:
        if op == "insert":
            edges.append(access.insert("edge", {"length": float(a % 50)}))
            if b % 3 == 0:
                faces.append(access.insert("face"))
        elif op == "modify" and edges:
            access.modify(edges[a % len(edges)], {"length": float(b % 50)})
        elif op == "connect" and edges and faces:
            face = faces[a % len(faces)]
            border = access.get(face)["border"]
            edge = edges[b % len(edges)]
            if edge not in border:
                access.modify(face, {"border": border + [edge]})
        elif op == "delete" and edges:
            access.delete(edges.pop(a % len(edges)))

    def snapshot():
        state = {}
        for type_name in ("face", "edge"):
            for surrogate, values in access.atoms.atoms_of_type(type_name):
                state[surrogate] = repr(sorted(values.items(), key=repr))
        return state

    before = snapshot()
    manager = TransactionManager(access)
    txn = manager.begin()
    live_edges = list(edges)
    live_faces = list(faces)
    child = txn.begin_nested()
    scope = child
    for index, (op, a, b) in enumerate(txn_ops):
        if index == len(txn_ops) // 2 and scope is child:
            child.commit()
            scope = txn
        if op == "insert":
            live_edges.append(scope.insert("edge", {"length": float(a % 50)}))
        elif op == "modify" and live_edges:
            scope.modify(live_edges[a % len(live_edges)],
                         {"length": float(b % 50)})
        elif op == "delete" and live_edges:
            scope.delete(live_edges.pop(a % len(live_edges)))
        elif op == "connect" and live_edges and live_faces:
            face = live_faces[a % len(live_faces)]
            border = access.get(face)["border"]
            edge = live_edges[b % len(live_edges)]
            if edge not in border:
                scope.modify(face, {"border": border + [edge]})
    if scope is child:
        child.commit()
    txn.abort()
    assert snapshot() == before
    assert verify_database(access.atoms) == []
