"""Tests: ORDER BY — the 'sorting' functional descriptor (paper, 3.1)."""

import pytest

from repro import Prima
from repro.errors import ValidationError
from repro.workloads import brep


@pytest.fixture(scope="module")
def handles():
    return brep.generate(Prima(), n_solids=6)


class TestOrderBy:
    def test_ascending_default(self, handles):
        result = handles.db.query("SELECT ALL FROM brep ORDER BY brep_no")
        nos = [m.atom["brep_no"] for m in result]
        assert nos == sorted(nos)

    def test_descending(self, handles):
        result = handles.db.query(
            "SELECT ALL FROM brep ORDER BY brep_no DESC")
        nos = [m.atom["brep_no"] for m in result]
        assert nos == sorted(nos, reverse=True)

    def test_explicit_asc_keyword(self, handles):
        result = handles.db.query(
            "SELECT ALL FROM brep ORDER BY brep_no ASC")
        nos = [m.atom["brep_no"] for m in result]
        assert nos == sorted(nos)

    def test_order_with_where(self, handles):
        result = handles.db.query(
            "SELECT ALL FROM solid WHERE sub = EMPTY "
            "ORDER BY solid_no DESC")
        nos = [m.atom["solid_no"] for m in result]
        assert len(nos) == 6
        assert nos == sorted(nos, reverse=True)

    def test_order_applies_before_projection(self, handles):
        result = handles.db.query(
            "SELECT description FROM solid WHERE sub = EMPTY "
            "ORDER BY solid_no DESC")
        # solid_no was projected away but still ordered the result
        descriptions = [m.atom["description"] for m in result]
        assert descriptions[0].endswith("6")
        assert "solid_no" not in result[0].atom

    def test_multi_attribute_order(self, handles):
        result = handles.db.query(
            "SELECT ALL FROM face ORDER BY square_dim DESC, face_id")
        pairs = [(m.atom["square_dim"], m.atom["face_id"].number)
                 for m in result]
        want = sorted(pairs, key=lambda p: p[1])
        want.sort(key=lambda p: p[0], reverse=True)
        assert pairs == want

    def test_labelled_root_path(self, handles):
        result = handles.db.query(
            "SELECT ALL FROM brep-face ORDER BY brep.brep_no DESC")
        nos = [m.atom["brep_no"] for m in result]
        assert nos == sorted(nos, reverse=True)

    def test_component_attr_rejected(self, handles):
        with pytest.raises(ValidationError):
            handles.db.query(
                "SELECT ALL FROM brep-face ORDER BY face.square_dim")

    def test_unknown_attr_rejected(self, handles):
        with pytest.raises(ValidationError):
            handles.db.query("SELECT ALL FROM brep ORDER BY nonsense")


class TestSortOrderExploitation:
    @pytest.fixture
    def tuned(self):
        handles = brep.generate(Prima(), n_solids=4)
        handles.db.execute_ldl(
            "CREATE SORT ORDER brep_by_no ON brep (brep_no)")
        return handles

    def test_plan_uses_sort_order(self, tuned):
        plan = tuned.db.explain("SELECT ALL FROM brep ORDER BY brep_no")
        assert "SORT SCAN brep_by_no" in plan
        assert "free" in plan

    def test_result_identical_to_explicit_sort(self, tuned):
        with_order = tuned.db.query(
            "SELECT ALL FROM brep ORDER BY brep_no")
        tuned.db.execute_ldl("DROP SORT ORDER brep_by_no")
        without = tuned.db.query("SELECT ALL FROM brep ORDER BY brep_no")
        assert [m.atom["brep_no"] for m in with_order] == \
            [m.atom["brep_no"] for m in without]

    def test_descending_served_by_reverse_scan(self, tuned):
        plan = tuned.db.explain(
            "SELECT ALL FROM brep ORDER BY brep_no DESC")
        assert "SORT SCAN brep_by_no" in plan
        assert "DESC" in plan and "reverse scan" in plan
        assert "explicit final sort" not in plan
        result = tuned.db.query(
            "SELECT ALL FROM brep ORDER BY brep_no DESC")
        nos = [m.atom["brep_no"] for m in result]
        assert nos == sorted(nos, reverse=True)

    def test_key_lookup_beats_sort_order(self, tuned):
        plan = tuned.db.explain(
            "SELECT ALL FROM brep WHERE brep_no = 1713 ORDER BY brep_no")
        assert "KEY LOOKUP" in plan


class TestAccessPathOrderExploitation:
    """A B*-tree access path whose key prefix matches the wanted order
    serves ORDER BY for free — in either direction — and combines the
    static range predicate with TopK's tightening dynamic bound."""

    @pytest.fixture
    def tuned(self):
        db = Prima()
        db.execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, "
                   "n: INTEGER, grp: INTEGER) KEYS_ARE (n, grp)")
        for i in range(200):
            db.insert_atom("item", {"n": i // 4, "grp": i % 4})
        db.execute_ldl("CREATE ACCESS PATH item_ng ON item (n, grp)")
        return db

    def test_range_plus_order_served_by_the_path(self, tuned):
        query = ("SELECT ALL FROM item WHERE n >= 20 "
                 "ORDER BY n LIMIT 8")
        assert "free" in tuned.explain(query)
        tuned.reset_accounting()
        rows = [m.atom["n"] for m in tuned.query(query)]
        assert rows == [20, 20, 20, 20, 21, 21, 21, 21]
        # Early termination: LIMIT stops the walk, no full-type scan.
        assert tuned.io_report()["scan_rows:AccessPathScan"] == 8

    def test_reverse_walk_serves_descending(self, tuned):
        query = ("SELECT ALL FROM item WHERE n >= 20 "
                 "ORDER BY n DESC LIMIT 4")
        assert "reverse scan" in tuned.explain(query)
        tuned.reset_accounting()
        rows = [m.atom["n"] for m in tuned.query(query)]
        assert rows == [49, 49, 49, 49]
        assert tuned.io_report()["scan_rows:AccessPathScan"] == 4

    def test_prefix_order_arms_the_dynamic_bound(self, tuned):
        query = ("SELECT ALL FROM item WHERE n >= 10 "
                 "ORDER BY n, grp DESC LIMIT 4")
        assert "dynamic bound" in tuned.explain(query)
        tuned.reset_accounting()
        rows = [(m.atom["n"], m.atom["grp"]) for m in tuned.query(query)]
        assert rows == [(10, 3), (10, 2), (10, 1), (10, 0)]
        report = tuned.io_report()
        assert report["topk_bounds_pushed"] >= 1
        # The tightening stop key cut the range walk down to the window.
        assert report["scan_rows:AccessPathScan"] == 4

    def test_unindexed_order_still_sorts(self, tuned):
        query = "SELECT ALL FROM item WHERE n >= 45 ORDER BY grp, n"
        rows = [(m.atom["grp"], m.atom["n"]) for m in tuned.query(query)]
        assert rows == sorted(rows)
