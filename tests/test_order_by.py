"""Tests: ORDER BY — the 'sorting' functional descriptor (paper, 3.1)."""

import pytest

from repro import Prima
from repro.errors import ValidationError
from repro.workloads import brep


@pytest.fixture(scope="module")
def handles():
    return brep.generate(Prima(), n_solids=6)


class TestOrderBy:
    def test_ascending_default(self, handles):
        result = handles.db.query("SELECT ALL FROM brep ORDER BY brep_no")
        nos = [m.atom["brep_no"] for m in result]
        assert nos == sorted(nos)

    def test_descending(self, handles):
        result = handles.db.query(
            "SELECT ALL FROM brep ORDER BY brep_no DESC")
        nos = [m.atom["brep_no"] for m in result]
        assert nos == sorted(nos, reverse=True)

    def test_explicit_asc_keyword(self, handles):
        result = handles.db.query(
            "SELECT ALL FROM brep ORDER BY brep_no ASC")
        nos = [m.atom["brep_no"] for m in result]
        assert nos == sorted(nos)

    def test_order_with_where(self, handles):
        result = handles.db.query(
            "SELECT ALL FROM solid WHERE sub = EMPTY "
            "ORDER BY solid_no DESC")
        nos = [m.atom["solid_no"] for m in result]
        assert len(nos) == 6
        assert nos == sorted(nos, reverse=True)

    def test_order_applies_before_projection(self, handles):
        result = handles.db.query(
            "SELECT description FROM solid WHERE sub = EMPTY "
            "ORDER BY solid_no DESC")
        # solid_no was projected away but still ordered the result
        descriptions = [m.atom["description"] for m in result]
        assert descriptions[0].endswith("6")
        assert "solid_no" not in result[0].atom

    def test_multi_attribute_order(self, handles):
        result = handles.db.query(
            "SELECT ALL FROM face ORDER BY square_dim DESC, face_id")
        pairs = [(m.atom["square_dim"], m.atom["face_id"].number)
                 for m in result]
        want = sorted(pairs, key=lambda p: p[1])
        want.sort(key=lambda p: p[0], reverse=True)
        assert pairs == want

    def test_labelled_root_path(self, handles):
        result = handles.db.query(
            "SELECT ALL FROM brep-face ORDER BY brep.brep_no DESC")
        nos = [m.atom["brep_no"] for m in result]
        assert nos == sorted(nos, reverse=True)

    def test_component_attr_rejected(self, handles):
        with pytest.raises(ValidationError):
            handles.db.query(
                "SELECT ALL FROM brep-face ORDER BY face.square_dim")

    def test_unknown_attr_rejected(self, handles):
        with pytest.raises(ValidationError):
            handles.db.query("SELECT ALL FROM brep ORDER BY nonsense")


class TestSortOrderExploitation:
    @pytest.fixture
    def tuned(self):
        handles = brep.generate(Prima(), n_solids=4)
        handles.db.execute_ldl(
            "CREATE SORT ORDER brep_by_no ON brep (brep_no)")
        return handles

    def test_plan_uses_sort_order(self, tuned):
        plan = tuned.db.explain("SELECT ALL FROM brep ORDER BY brep_no")
        assert "SORT SCAN brep_by_no" in plan
        assert "free" in plan

    def test_result_identical_to_explicit_sort(self, tuned):
        with_order = tuned.db.query(
            "SELECT ALL FROM brep ORDER BY brep_no")
        tuned.db.execute_ldl("DROP SORT ORDER brep_by_no")
        without = tuned.db.query("SELECT ALL FROM brep ORDER BY brep_no")
        assert [m.atom["brep_no"] for m in with_order] == \
            [m.atom["brep_no"] for m in without]

    def test_descending_served_by_reverse_scan(self, tuned):
        plan = tuned.db.explain(
            "SELECT ALL FROM brep ORDER BY brep_no DESC")
        assert "SORT SCAN brep_by_no" in plan
        assert "DESC" in plan and "reverse scan" in plan
        assert "explicit final sort" not in plan
        result = tuned.db.query(
            "SELECT ALL FROM brep ORDER BY brep_no DESC")
        nos = [m.atom["brep_no"] for m in result]
        assert nos == sorted(nos, reverse=True)

    def test_key_lookup_beats_sort_order(self, tuned):
        plan = tuned.db.explain(
            "SELECT ALL FROM brep WHERE brep_no = 1713 ORDER BY brep_no")
        assert "KEY LOOKUP" in plan
