"""Tests: the serving layer — sessions, remote cursors, serve loop."""

import threading

import pytest

from repro import Prima
from repro.coupling import PrimaServer, Workstation
from repro.errors import (
    CursorStateError,
    LockConflictError,
    SessionLimitError,
    SessionStateError,
)
from repro.serve import ServeLoop, protocol
from repro.workloads import brep

N_ITEMS = 120
GROUPS = 8


@pytest.fixture
def db():
    database = Prima()
    database.execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, "
                     "n: INTEGER, grp: INTEGER) KEYS_ARE (n)")
    for i in range(N_ITEMS):
        database.insert_atom("item", {"n": i, "grp": i % GROUPS})
    database.execute_ldl("CREATE SORT ORDER item_so ON item (n)")
    return database


@pytest.fixture
def manager(db):
    return db.serve(max_sessions=4)


class TestSessionLifecycle:
    def test_open_and_close(self, manager):
        session = manager.open(name="alpha")
        assert manager.active_sessions == 1
        assert not session.closed
        session.close()
        assert session.closed
        assert manager.active_sessions == 0

    def test_closed_session_rejects_messages(self, manager):
        session = manager.open()
        session.close()
        with pytest.raises(SessionStateError):
            session.query("SELECT ALL FROM item")

    def test_context_manager_closes(self, manager):
        with manager.open() as session:
            assert not session.closed
        assert session.closed
        assert manager.active_sessions == 0

    def test_double_close_is_idempotent(self, manager):
        session = manager.open()
        session.close()
        session.close()
        assert manager.active_sessions == 0

    def test_session_names_unique(self, manager):
        first = manager.open(name="cad")
        second = manager.open(name="cad")
        assert first.name != second.name

    def test_duplicate_names_keep_distinct_report_keys(self, db):
        manager = db.serve(max_sessions=4)

        def job(session):
            session.query("SELECT ALL FROM item WHERE grp = 7",
                          fetch_size=8).materialize()
            return session.name

        names = ServeLoop(manager).run([job, job], names=["ws", "ws"])
        assert len(set(names)) == 2
        report = manager.io_report()
        for name in names:
            assert report[f"session:{name}:cursors_opened"] == 1

    def test_dml_and_select_through_session(self, manager):
        with manager.open() as session:
            inserted = session.execute("INSERT item (n = 900)").inserted
            assert inserted is not None
            rows = session.query("SELECT ALL FROM item WHERE n = 900")
            assert [m.atom["n"] for m in rows] == [900]

    def test_cursor_rejects_dml(self, manager):
        with manager.open() as session:
            with pytest.raises(SessionStateError):
                session.open_cursor("INSERT item (n = 901)")


class TestAdmissionControl:
    def test_reject_at_limit(self, db):
        manager = db.serve(max_sessions=2)
        first, second = manager.open(), manager.open()
        with pytest.raises(SessionLimitError):
            manager.open()
        first.close()
        third = manager.open()   # slot freed
        third.close()
        second.close()

    def test_queue_waits_for_slot(self, db):
        manager = db.serve(max_sessions=1, admission="queue")
        first = manager.open()
        release = threading.Timer(0.05, first.close)
        release.start()
        try:
            second = manager.open()   # blocks until the timer closes first
        finally:
            release.join()
        assert first.closed
        second.close()

    def test_queue_timeout_raises(self, db):
        manager = db.serve(max_sessions=1, admission="queue",
                           queue_timeout=0.01)
        first = manager.open()
        with pytest.raises(SessionLimitError):
            manager.open()
        first.close()

    def test_knob_validation(self, db):
        with pytest.raises(ValueError):
            db.serve(max_sessions=0)
        with pytest.raises(ValueError):
            db.serve(admission="drop")


class TestRemoteCursor:
    def test_whole_set_is_one_message_pair(self, db, manager):
        with manager.open() as session:
            before = manager.stats.messages
            result = session.query("SELECT ALL FROM item WHERE grp = 0",
                                   fetch_size=None)
            assert manager.stats.messages == before + 2
            assert len(result) == N_ITEMS // GROUPS
            # fully shipped at open: consuming costs nothing further
            assert manager.stats.messages == before + 2

    def test_streaming_batches_and_order(self, db, manager):
        with manager.open() as session:
            result = session.query("SELECT ALL FROM item ORDER BY n",
                                   fetch_size=16)
            assert [m.atom["n"] for m in result] == list(range(N_ITEMS))

    def test_limit_constructs_at_most_k(self, db, manager):
        k, f = 30, 8
        with manager.open() as session:
            db.reset_accounting()
            cursor = session.open_cursor(
                f"SELECT ALL FROM item ORDER BY n LIMIT {k}", fetch_size=f)
            rows = [m.atom["n"] for m in cursor]
        assert rows == list(range(k))
        constructed = db.io_report()["operator_rows:MoleculeConstruct"]
        assert constructed <= k
        assert cursor.max_in_flight <= 2 * f

    def test_open_constructs_at_most_two_batches(self, db, manager):
        f = 10
        with manager.open() as session:
            db.reset_accounting()
            cursor = session.open_cursor("SELECT ALL FROM item ORDER BY n",
                                         fetch_size=f)
            cursor.next()   # first pull triggers the one-batch prefetch
            constructed = db.io_report()["operator_rows:MoleculeConstruct"]
            assert constructed <= 2 * f
            cursor.close()

    def test_close_while_pending_truncates_over_the_wire(self, db, manager):
        with manager.open() as session:
            db.reset_accounting()
            result = session.query("SELECT ALL FROM item", fetch_size=16)
            assert result.fetch_next() is not None
            result.close()
            assert result.truncated
            with pytest.raises(CursorStateError):
                result.reopen()
            # ... and the server side actually released the pipeline.
            assert db.io_report()["serve_pipelines_released"] == 1

    def test_close_decides_truncation_without_a_fetch(self, db, manager):
        # The truncation probe consults the cursor's buffered state
        # (has_pending) — abandoning a stream costs only the CLOSE pair,
        # never another FETCH round trip or prefetched batch.
        with manager.open() as session:
            result = session.query("SELECT ALL FROM item", fetch_size=16)
            result.fetch_next()
            before = manager.stats.messages
            construct_before = \
                db.io_report()["operator_rows:MoleculeConstruct"]
            result.close()
            assert manager.stats.messages == before + 2   # CLOSE + ack
            # Only the server's own bounded truncation probe constructs
            # (at most one molecule) — no client FETCH, no prefetch batch.
            assert db.io_report()["operator_rows:MoleculeConstruct"] <= \
                construct_before + 1
            assert result.truncated

    def test_reopen_restreams_over_the_wire(self, db, manager):
        with manager.open() as session:
            result = session.query("SELECT ALL FROM item WHERE grp = 3",
                                   fetch_size=4)
            first = [m.atom["n"] for m in result]
            result.reopen()
            assert [m.atom["n"] for m in result] == first

    def test_close_after_exhaustion_keeps_reopen_legal(self, db, manager):
        with manager.open() as session:
            result = session.query("SELECT ALL FROM item WHERE grp = 3",
                                   fetch_size=4)
            first = [m.atom["n"] for m in result]
            result.close()
            assert not result.truncated
            result.reopen()   # complete cache, no wire interaction
            assert [m.atom["n"] for m in result] == first

    def test_on_arrival_sees_every_molecule(self, db, manager):
        arrived = []
        with manager.open() as session:
            cursor = session.open_cursor(
                "SELECT ALL FROM item WHERE grp = 5", fetch_size=4,
                on_arrival=lambda m: arrived.append(m.atom["n"]))
            delivered = [m.atom["n"] for m in cursor]
        assert arrived == delivered

    def test_unknown_cursor_rejected(self, manager):
        with manager.open() as session:
            with pytest.raises(SessionStateError):
                session.handle(protocol.Fetch(cursor_id=99, count=4))

    def test_session_close_releases_open_cursors(self, db, manager):
        session = manager.open()
        session.open_cursor("SELECT ALL FROM item", fetch_size=8)
        assert session.open_cursors == 1
        session.close()
        assert db.io_report()["serve_pipelines_released"] >= 1


class TestLockScope:
    def test_peer_write_proceeds_under_open_cursor(self, manager):
        # Snapshot reads take no type-level locks: a peer's INSERT no
        # longer conflicts with an open cursor — and the cursor, pinned
        # to its open-time epoch, never sees the concurrent commit.
        reader = manager.open()
        writer = manager.open()
        cursor = reader.query("SELECT ALL FROM item", fetch_size=4)
        assert writer.execute("INSERT item (n = 910)").affected == 1
        rows = [m.atom["n"] for m in cursor]
        assert len(rows) == N_ITEMS and 910 not in rows
        # A cursor opened after the commit sees the new atom.
        assert len(reader.query("SELECT ALL FROM item WHERE n = 910")) == 1
        reader.close()
        writer.close()

    def test_session_can_write_what_it_read(self, manager):
        # The DML subtransaction is a child of the session transaction,
        # so the session's own cursor locks never conflict with it.
        with manager.open() as session:
            session.query("SELECT ALL FROM item WHERE grp = 1")
            assert session.execute("INSERT item (n = 920)").affected == 1

    def test_write_lock_retained_until_session_close(self, manager):
        # The writer retains type-level X until session close (Moss
        # inheritance) — but snapshot readers take no locks, so peer
        # reads proceed and see the committed write immediately.
        writer = manager.open()
        writer.execute("INSERT item (n = 930)")
        reader = manager.open()
        assert len(reader.query("SELECT ALL FROM item WHERE n = 930")) == 1
        # The retained X is real: a peer *writer* still conflicts.
        peer = manager.open()
        with pytest.raises(LockConflictError):
            peer.execute("INSERT item (n = 931)")
        writer.close()   # inherited X released with the session
        assert peer.execute("INSERT item (n = 931)").affected == 1
        peer.close()
        reader.close()

    def test_failed_write_releases_its_lock(self, manager):
        from repro.errors import PrimaError
        writer = manager.open()
        with pytest.raises(PrimaError):
            writer.execute("INSERT item (n = 0)")   # duplicate key
        peer = manager.open()
        peer.query("SELECT ALL FROM item WHERE grp = 0")   # no conflict
        peer.close()
        writer.close()

    def test_service_reads_never_block_writes(self, db):
        # The server's service session reads via snapshots, so a client
        # INSERT on the same type proceeds with the service session
        # still open; disconnect only frees the admission slot.
        server = PrimaServer(db)
        server.query("SELECT ALL FROM item WHERE grp = 0").materialize()
        assert server.sessions.active_sessions == 1
        with server.sessions.open() as session:
            assert session.execute("INSERT item (n = 940)").affected == 1
            server.disconnect()   # frees the service slot
            assert server.sessions.active_sessions == 1   # only `session`
        assert server.sessions.active_sessions == 0

    def test_checkins_do_not_conflict_with_cursors(self):
        database = Prima()
        handles = brep.generate(database, n_solids=2)
        server = PrimaServer(database)
        cad1 = Workstation(server, name="cad-1")
        cad2 = Workstation(server, name="cad-2")
        query = "SELECT ALL FROM brep-edge WHERE brep_no = 1713"
        edge = cad1.checkout(query)[0].component_list("edge")[0].surrogate
        cad2.checkout(query)
        cad1.modify(edge, {"length": 1.0})
        cad2.modify(edge, {"length": 2.0})
        cad1.commit()
        cad2.commit()   # optimistic protocol: later checkin wins
        assert handles.db.access.get(edge)["length"] == 2.0


class TestServeLoop:
    def test_concurrent_sessions_no_lost_or_duplicated(self, db):
        manager = db.serve(max_sessions=GROUPS)
        expected = [[n for n in range(N_ITEMS) if n % GROUPS == g]
                    for g in range(GROUPS)]

        def job(group):
            def run(session):
                result = session.query(
                    f"SELECT ALL FROM item WHERE grp = {group}",
                    fetch_size=4)
                return [m.atom["n"] for m in result]
            return run

        loop = ServeLoop(manager)
        results = loop.run([job(g) for g in range(GROUPS)])
        assert results == expected          # nothing lost, nothing doubled
        # deterministic: a second round delivers the same per-session sets
        assert loop.run([job(g) for g in range(GROUPS)]) == expected
        assert manager.active_sessions == 0

    def test_loop_respects_admission_queue(self, db):
        manager = db.serve(max_sessions=2, admission="queue")
        loop = ServeLoop(manager)

        def job(session):
            return len(session.query("SELECT ALL FROM item WHERE grp = 1",
                                     fetch_size=8))

        results = loop.run([job] * 6)
        assert results == [N_ITEMS // GROUPS] * 6

    def test_loop_propagates_failures_and_closes_sessions(self, db):
        manager = db.serve(max_sessions=2)

        def bad(_session):
            raise RuntimeError("client crashed")

        with pytest.raises(RuntimeError):
            ServeLoop(manager).run([bad])
        assert manager.active_sessions == 0

    def test_named_jobs_surface_in_io_report(self, db):
        manager = db.serve(max_sessions=2)

        def job(session):
            session.query("SELECT ALL FROM item WHERE grp = 2",
                          fetch_size=4).materialize()
            return session.name

        names = ServeLoop(manager).run([job, job], names=["red", "blue"])
        assert names == ["red", "blue"]
        report = manager.io_report()
        assert report["session:red:cursors_opened"] == 1
        assert report["session:blue:rows_streamed"] == N_ITEMS // GROUPS


class TestServingCounters:
    def test_network_counters_in_io_report(self, db, manager):
        with manager.open() as session:
            session.query("SELECT ALL FROM item WHERE grp = 0",
                          fetch_size=None).materialize()
        report = db.io_report()
        assert report["net_messages"] == 2
        assert report["net_bytes"] > 0
        assert report["net_comm_time_ms"] > 0
        assert report["serve_sessions_opened"] == 1
        assert report["serve_cursors_opened"] == 1

    def test_manager_report_merges_per_session_counters(self, db, manager):
        with manager.open(name="ws-a") as session:
            session.query("SELECT ALL FROM item WHERE grp = 0",
                          fetch_size=4).materialize()
        report = manager.io_report()
        assert report["session:ws-a:cursors_opened"] == 1
        assert report["session:ws-a:rows_streamed"] == N_ITEMS // GROUPS
        assert report["serve_sessions_peak"] == 1
        assert report["net_messages"] == manager.stats.messages

    def test_parallel_query_inside_session(self, db, manager):
        with manager.open() as session:
            outcome = session.parallel_query(
                "SELECT ALL FROM item WHERE grp = 6", processors=3)
            rows = sorted(m.atom["n"] for m in outcome.result)
        assert rows == [n for n in range(N_ITEMS) if n % GROUPS == 6]


class TestWorkstationStreaming:
    @pytest.fixture
    def coupled(self):
        database = Prima()
        handles = brep.generate(database, n_solids=3)
        server = PrimaServer(database)
        return handles, server, Workstation(server)

    def test_streaming_checkout_fills_buffer_incrementally(self, coupled):
        _handles, _server, station = coupled
        result = station.checkout("SELECT ALL FROM solid", fetch_size=1)
        loaded_early = len(station.buffer)
        molecules = list(result)
        assert loaded_early < len(molecules)   # not all materialised at open
        assert len(station.buffer) == len(molecules)

    def test_streaming_checkout_close_stops_server_work(self, coupled):
        handles, _server, station = coupled
        handles.db.reset_accounting()
        result = station.checkout("SELECT ALL FROM solid", fetch_size=1)
        assert result.fetch_next() is not None
        result.close()
        constructed = \
            handles.db.io_report()["operator_rows:MoleculeConstruct"]
        assert constructed <= 4   # two batches + the truncation probe
        assert result.truncated

    def test_default_checkout_still_two_messages(self, coupled):
        _handles, server, station = coupled
        station.checkout("SELECT ALL FROM brep-face-edge-point "
                         "WHERE brep_no = 1713")
        assert server.stats.messages == 2

    def test_batched_closure_drops_message_count(self, coupled):
        handles, server, station = coupled
        query = "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713"
        station.checkout(query, set_oriented=False)
        record_messages = server.stats.messages

        other_server = PrimaServer(handles.db)
        other = Workstation(other_server)
        other.checkout(query, set_oriented=False, batched=True)
        batched_messages = other_server.stats.messages
        assert batched_messages < record_messages / 3
        assert len(other.buffer) == len(station.buffer)

    def test_disconnect_frees_admission_slot(self, coupled):
        _handles, server, station = coupled
        station.checkout("SELECT ALL FROM solid WHERE sub = EMPTY")
        assert server.sessions.active_sessions == 1
        station.disconnect()
        assert server.sessions.active_sessions == 0
        # next interaction reconnects transparently
        station.checkout("SELECT ALL FROM solid WHERE sub = EMPTY")
        assert server.sessions.active_sessions == 1
