"""Unit tests: predicate evaluation over hand-built molecules."""

import pytest

from repro.data.predicates import PredicateEvaluator, path_values
from repro.errors import ExecutionError
from repro.mad.molecule import Molecule, StructureNode
from repro.mad.schema import Association
from repro.mad.types import Surrogate
from repro.mql.ast import (
    And,
    Comparison,
    EmptyLiteral,
    Literal,
    Not,
    Or,
    Path,
    Quantified,
    RefLookup,
)


def _assoc(src, attr, dst, back):
    return Association(src, attr, dst, back, True, True)


@pytest.fixture
def molecule() -> Molecule:
    """face(edge(point)) with 2 edges of 1 point each."""
    face_node = StructureNode("face", "face")
    edge_node = StructureNode("edge", "edge",
                              via=_assoc("face", "border", "edge", "face"))
    point_node = StructureNode("point", "point",
                               via=_assoc("edge", "boundary", "point", "line"))
    face_node.add_child(edge_node)
    edge_node.add_child(point_node)

    face = Molecule(face_node, {
        "face_id": Surrogate("face", 1), "square_dim": 25.0,
        "tags": ["red", "blue"], "hole": [],
    })
    for index in range(2):
        edge = Molecule(edge_node, {
            "edge_id": Surrogate("edge", index + 1),
            "length": 10.0 * (index + 1),
        })
        point = Molecule(point_node, {
            "point_id": Surrogate("point", index + 1),
            "placement": {"x_coord": float(index), "y_coord": 0.0},
        })
        edge.add_component("point", point)
        face.add_component("edge", edge)
    return face


@pytest.fixture
def evaluator() -> PredicateEvaluator:
    return PredicateEvaluator()


class TestPaths:
    def test_bare_root_attr(self, molecule):
        assert list(path_values(Path(("square_dim",)), molecule)) == [25.0]

    def test_labelled_root_attr(self, molecule):
        assert list(path_values(Path(("face", "square_dim")),
                                molecule)) == [25.0]

    def test_component_attr_multivalued(self, molecule):
        assert list(path_values(Path(("edge", "length")),
                                molecule)) == [10.0, 20.0]

    def test_deep_component(self, molecule):
        got = list(path_values(Path(("point", "placement")), molecule))
        assert len(got) == 2

    def test_record_field_path(self, molecule):
        got = list(path_values(Path(("point", "placement", "x_coord")),
                               molecule))
        assert got == [0.0, 1.0]

    def test_missing_attr_yields_nothing(self, molecule):
        assert list(path_values(Path(("edge", "ghost")), molecule)) == []

    def test_level_indexed_paths(self, molecule):
        level0 = list(path_values(Path(("face", "square_dim"), level=0),
                                  molecule))
        assert level0 == [25.0]
        level1 = list(path_values(Path(("face", "length"), level=1),
                                  molecule))
        assert level1 == [10.0, 20.0]


class TestComparisons:
    def test_root_equality(self, molecule, evaluator):
        expr = Comparison("=", Path(("square_dim",)), Literal(25.0))
        assert evaluator.matches(expr, molecule)

    def test_existential_reading(self, molecule, evaluator):
        # SOME edge longer than 15 — true; ALL would be false.
        expr = Comparison(">", Path(("edge", "length")), Literal(15.0))
        assert evaluator.matches(expr, molecule)

    def test_empty_checks(self, molecule, evaluator):
        assert evaluator.matches(
            Comparison("=", Path(("hole",)), EmptyLiteral()), molecule)
        assert not evaluator.matches(
            Comparison("=", Path(("tags",)), EmptyLiteral()), molecule)
        assert evaluator.matches(
            Comparison("!=", Path(("tags",)), EmptyLiteral()), molecule)

    def test_empty_on_left(self, molecule, evaluator):
        expr = Comparison("=", EmptyLiteral(), Path(("hole",)))
        assert evaluator.matches(expr, molecule)

    def test_none_comparisons_false(self, molecule, evaluator):
        molecule.atom["square_dim"] = None
        expr = Comparison(">", Path(("square_dim",)), Literal(1.0))
        assert not evaluator.matches(expr, molecule)

    def test_boolean_connectives(self, molecule, evaluator):
        true = Comparison("=", Path(("square_dim",)), Literal(25.0))
        false = Comparison("=", Path(("square_dim",)), Literal(1.0))
        assert evaluator.matches(And([true, Not(false)]), molecule)
        assert evaluator.matches(Or([false, true]), molecule)
        assert not evaluator.matches(And([true, false]), molecule)

    def test_literal_vs_literal(self, molecule, evaluator):
        assert evaluator.matches(
            Comparison("<", Literal(1), Literal(2)), molecule)

    def test_ref_lookup_without_resolver_rejected(self, molecule, evaluator):
        expr = Comparison("=", Path(("face_id",)),
                          RefLookup("face", (1,)))
        with pytest.raises(ExecutionError):
            evaluator.matches(expr, molecule)

    def test_ref_lookup_with_resolver(self, molecule):
        target = Surrogate("face", 1)
        evaluator = PredicateEvaluator(
            resolve_ref=lambda _t, _k: target)
        expr = Comparison("=", Path(("face", "face_id")),
                          RefLookup("face", (1,)))
        assert evaluator.matches(expr, molecule)


class TestQuantifiers:
    def test_exists(self, molecule, evaluator):
        expr = Quantified("exists", None, "edge",
                          Comparison(">", Path(("edge", "length")),
                                     Literal(15.0)))
        assert evaluator.matches(expr, molecule)

    def test_at_least(self, molecule, evaluator):
        hits_two = Quantified("at_least", 2, "edge",
                              Comparison(">", Path(("edge", "length")),
                                         Literal(5.0)))
        hits_one = Quantified("at_least", 2, "edge",
                              Comparison(">", Path(("edge", "length")),
                                         Literal(15.0)))
        assert evaluator.matches(hits_two, molecule)
        assert not evaluator.matches(hits_one, molecule)

    def test_exactly(self, molecule, evaluator):
        expr = Quantified("exactly", 1, "edge",
                          Comparison(">", Path(("edge", "length")),
                                     Literal(15.0)))
        assert evaluator.matches(expr, molecule)

    def test_for_all(self, molecule, evaluator):
        all_pass = Quantified("all", None, "edge",
                              Comparison(">", Path(("edge", "length")),
                                         Literal(5.0)))
        one_fails = Quantified("all", None, "edge",
                               Comparison(">", Path(("edge", "length")),
                                          Literal(15.0)))
        assert evaluator.matches(all_pass, molecule)
        assert not evaluator.matches(one_fails, molecule)

    def test_for_all_vacuous_truth(self, molecule, evaluator):
        expr = Quantified("all", None, "ghost_label",
                          Comparison("=", Path(("x",)), Literal(1)))
        assert evaluator.matches(expr, molecule)

    def test_nested_quantifier(self, molecule, evaluator):
        inner = Quantified("exists", None, "point",
                           Comparison("=",
                                      Path(("point", "placement", "x_coord")),
                                      Literal(1.0)))
        outer = Quantified("at_least", 1, "edge", inner)
        assert evaluator.matches(outer, molecule)
