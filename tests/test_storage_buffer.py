"""Unit tests: buffer manager, replacement policies, partitioned buffer."""

import pytest

from repro.errors import BufferFullError, StorageError
from repro.storage.buffer import BufferManager, PartitionedBufferManager
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page, PageId
from repro.storage.replacement import FIFO, Clock, ModifiedLRU, make_policy


def _disk_with_pages(size: int = 512, count: int = 20) -> SimulatedDisk:
    disk = SimulatedDisk()
    disk.create_file("seg", size)
    for no in range(1, count + 1):
        disk.write_block("seg", no, Page.format(size, no).to_bytes())
    return disk


class TestFixUnfix:
    def test_miss_then_hit(self):
        disk = _disk_with_pages()
        buffer = BufferManager(disk, capacity_bytes=4 * 512)
        pid = PageId("seg", 1)
        buffer.fix(pid)
        buffer.unfix(pid)
        buffer.fix(pid)
        buffer.unfix(pid)
        assert buffer.counters.get("misses") == 1
        assert buffer.counters.get("hits") == 1
        assert buffer.hit_ratio() == 0.5

    def test_unfix_without_fix_rejected(self):
        buffer = BufferManager(_disk_with_pages(), capacity_bytes=4 * 512)
        with pytest.raises(StorageError):
            buffer.unfix(PageId("seg", 1))

    def test_fixed_pages_never_evicted(self):
        disk = _disk_with_pages()
        buffer = BufferManager(disk, capacity_bytes=2 * 512)
        pinned = PageId("seg", 1)
        buffer.fix(pinned)
        buffer.fix(PageId("seg", 2))
        buffer.unfix(PageId("seg", 2))
        buffer.fix(PageId("seg", 3))   # evicts page 2, not page 1
        buffer.unfix(PageId("seg", 3))
        assert pinned in buffer.resident()
        assert buffer.is_fixed(pinned)

    def test_all_fixed_raises(self):
        disk = _disk_with_pages()
        buffer = BufferManager(disk, capacity_bytes=2 * 512)
        buffer.fix(PageId("seg", 1))
        buffer.fix(PageId("seg", 2))
        with pytest.raises(BufferFullError):
            buffer.fix(PageId("seg", 3))

    def test_dirty_write_back_on_eviction(self):
        disk = _disk_with_pages()
        buffer = BufferManager(disk, capacity_bytes=512)
        pid = PageId("seg", 1)
        page = buffer.fix(pid)
        page.insert(b"dirty data")
        buffer.unfix(pid, dirty=True)
        buffer.fix(PageId("seg", 2))   # evicts page 1
        buffer.unfix(PageId("seg", 2))
        assert buffer.counters.get("dirty_writebacks") == 1
        # content survived the round trip
        page = buffer.fix(pid)
        assert page.read(0) == b"dirty data"
        buffer.unfix(pid)

    def test_clean_eviction_no_write(self):
        disk = _disk_with_pages()
        buffer = BufferManager(disk, capacity_bytes=512)
        buffer.fix(PageId("seg", 1))
        buffer.unfix(PageId("seg", 1))
        disk.reset_accounting()
        buffer.fix(PageId("seg", 2))
        buffer.unfix(PageId("seg", 2))
        assert disk.counters.get("blocks_written") == 0

    def test_flush_all(self):
        disk = _disk_with_pages()
        buffer = BufferManager(disk, capacity_bytes=4 * 512)
        for no in (1, 2):
            pid = PageId("seg", no)
            page = buffer.fix(pid)
            page.insert(b"x")
            buffer.unfix(pid, dirty=True)
        disk.reset_accounting()
        buffer.flush()
        assert disk.counters.get("blocks_written") == 2
        buffer.flush()   # second flush: nothing dirty
        assert disk.counters.get("blocks_written") == 2

    def test_fix_new(self):
        disk = _disk_with_pages()
        buffer = BufferManager(disk, capacity_bytes=4 * 512)
        pid = PageId("seg", 99)
        buffer.fix_new(pid, Page.format(512, 99))
        buffer.unfix(pid, dirty=True)
        buffer.flush()
        assert disk.read_block("seg", 99)

    def test_capacity_too_small_rejected(self):
        with pytest.raises(StorageError):
            BufferManager(_disk_with_pages(), capacity_bytes=100)


class TestMixedPageSizes:
    """The paper's point: one buffer must handle five page sizes."""

    def _mixed_disk(self):
        disk = SimulatedDisk()
        for size in (512, 8192):
            disk.create_file(f"seg{size}", size)
            for no in range(1, 11):
                disk.write_block(f"seg{size}", no,
                                 Page.format(size, no).to_bytes())
        return disk

    def test_small_pages_evicted_for_large(self):
        disk = self._mixed_disk()
        buffer = BufferManager(disk, capacity_bytes=8192 + 1024)
        for no in range(1, 4):
            buffer.fix(PageId("seg512", no))
            buffer.unfix(PageId("seg512", no))
        buffer.fix(PageId("seg8192", 1))
        buffer.unfix(PageId("seg8192", 1))
        # byte budget respected, several LRU victims taken if needed
        assert buffer.used_bytes <= buffer.capacity_bytes

    def test_byte_budget_never_exceeded(self):
        disk = self._mixed_disk()
        buffer = BufferManager(disk, capacity_bytes=3 * 8192)
        import random
        rng = random.Random(7)
        for _ in range(100):
            size = rng.choice((512, 8192))
            pid = PageId(f"seg{size}", rng.randint(1, 10))
            buffer.fix(pid)
            buffer.unfix(pid)
            assert buffer.used_bytes <= buffer.capacity_bytes


class TestPolicies:
    def test_make_policy(self):
        assert isinstance(make_policy("modified-lru"), ModifiedLRU)
        assert isinstance(make_policy("lru"), ModifiedLRU)
        assert isinstance(make_policy("fifo"), FIFO)
        assert isinstance(make_policy("clock"), Clock)
        with pytest.raises(ValueError):
            make_policy("magic")

    def test_lru_order(self):
        policy = ModifiedLRU()
        pids = [PageId("s", no) for no in range(3)]
        for pid in pids:
            policy.on_admit(pid)
        policy.on_access(pids[0])   # 0 becomes most recent
        order = list(policy.victims(set(pids)))
        assert order == [pids[1], pids[2], pids[0]]

    def test_fifo_ignores_access(self):
        policy = FIFO()
        pids = [PageId("s", no) for no in range(3)]
        for pid in pids:
            policy.on_admit(pid)
        policy.on_access(pids[0])
        order = list(policy.victims(set(pids)))
        assert order == pids

    def test_clock_second_chance(self):
        policy = Clock()
        pids = [PageId("s", no) for no in range(3)]
        for pid in pids:
            policy.on_admit(pid)
        # all referenced: first sweep clears, second selects pids[0]
        first = next(iter(policy.victims(set(pids))))
        assert first == pids[0]

    def test_evicted_pages_leave_policy(self):
        policy = ModifiedLRU()
        pid = PageId("s", 1)
        policy.on_admit(pid)
        policy.on_evict(pid)
        assert list(policy.victims({pid})) == []


class TestPartitionedBuffer:
    def test_partitions_isolated(self):
        disk = SimulatedDisk()
        for size in (512, 8192):
            disk.create_file(f"seg{size}", size)
            for no in range(1, 6):
                disk.write_block(f"seg{size}", no,
                                 Page.format(size, no).to_bytes())
        buffer = PartitionedBufferManager(disk, capacity_bytes=10 * 8192)
        buffer.fix(PageId("seg512", 1))
        buffer.unfix(PageId("seg512", 1))
        buffer.fix(PageId("seg8192", 1))
        buffer.unfix(PageId("seg8192", 1))
        assert PageId("seg512", 1) in buffer.partition(512).resident()
        assert PageId("seg8192", 1) in buffer.partition(8192).resident()

    def test_shares_validated(self):
        disk = SimulatedDisk()
        with pytest.raises(StorageError):
            PartitionedBufferManager(disk, shares={300: 1.0})

    def test_interface_compatible(self):
        disk = SimulatedDisk()
        disk.create_file("seg512", 512)
        disk.write_block("seg512", 1, Page.format(512, 1).to_bytes())
        buffer = PartitionedBufferManager(disk, capacity_bytes=10 * 8192)
        pid = PageId("seg512", 1)
        page = buffer.fix(pid)
        page.insert(b"x")
        buffer.unfix(pid, dirty=True)
        buffer.flush()
        assert buffer.hit_ratio() == 0.0
        assert buffer.used_bytes == 512
