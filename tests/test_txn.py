"""Unit tests: nested transactions, locks, selective recovery."""

import pytest

from repro.errors import (
    LockConflictError,
    TransactionStateError,
)
from repro.access.integrity import verify_database
from repro.txn import ABORTED, COMMITTED, TransactionManager


@pytest.fixture
def env(face_edge_access):
    return face_edge_access, TransactionManager(face_edge_access)


class TestLifecycle:
    def test_commit_keeps_effects(self, env):
        access, manager = env
        txn = manager.begin()
        s = txn.insert("edge", {"length": 1.0})
        txn.commit()
        assert access.get(s)["length"] == 1.0
        assert txn.state == COMMITTED

    def test_abort_undoes_insert(self, env):
        access, manager = env
        txn = manager.begin()
        s = txn.insert("edge")
        txn.abort()
        assert not access.atoms.exists(s)
        assert txn.state == ABORTED

    def test_abort_undoes_modify(self, env):
        access, manager = env
        base = access.insert("edge", {"length": 1.0})
        txn = manager.begin()
        txn.modify(base, {"length": 9.0})
        txn.abort()
        assert access.get(base)["length"] == 1.0

    def test_abort_undoes_delete(self, env):
        access, manager = env
        base = access.insert("edge", {"length": 5.0})
        txn = manager.begin()
        txn.delete(base)
        assert not access.atoms.exists(base)
        txn.abort()
        assert access.get(base)["length"] == 5.0

    def test_undo_order_reversed(self, env):
        access, manager = env
        txn = manager.begin()
        s = txn.insert("edge", {"length": 1.0})
        txn.modify(s, {"length": 2.0})
        txn.modify(s, {"length": 3.0})
        txn.delete(s)
        txn.abort()
        assert not access.atoms.exists(s)

    def test_operations_after_end_rejected(self, env):
        _access, manager = env
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionStateError):
            txn.insert("edge")
        with pytest.raises(TransactionStateError):
            txn.abort()


class TestBackrefUndo:
    def test_modify_restores_both_sides(self, env):
        access, manager = env
        e1 = access.insert("edge")
        e2 = access.insert("edge")
        f = access.insert("face", {"border": [e1]})
        txn = manager.begin()
        txn.modify(f, {"border": [e2]})
        assert access.get(e2)["face"] == [f]
        txn.abort()
        assert access.get(e1)["face"] == [f]
        assert access.get(e2)["face"] == []
        assert verify_database(access.atoms) == []

    def test_delete_restores_connections(self, env):
        access, manager = env
        e = access.insert("edge")
        f = access.insert("face", {"border": [e]})
        txn = manager.begin()
        txn.delete(e)
        assert access.get(f)["border"] == []
        txn.abort()
        assert access.get(f)["border"] == [e]
        assert verify_database(access.atoms) == []


class TestNesting:
    def test_parent_suspended_while_child_runs(self, env):
        _access, manager = env
        parent = manager.begin()
        parent.begin_nested()
        with pytest.raises(TransactionStateError):
            parent.insert("edge")
        with pytest.raises(TransactionStateError):
            parent.begin_nested()

    def test_child_abort_is_selective(self, env):
        access, manager = env
        parent = manager.begin()
        kept = parent.insert("edge", {"length": 1.0})
        child = parent.begin_nested()
        gone = child.insert("edge", {"length": 2.0})
        child.modify(kept, {"length": 9.0})
        child.abort()
        assert not access.atoms.exists(gone)
        assert access.get(kept)["length"] == 1.0   # child's change undone
        parent.commit()
        assert access.atoms.exists(kept)

    def test_child_commit_inherits_undo_upward(self, env):
        access, manager = env
        parent = manager.begin()
        child = parent.begin_nested()
        s = child.insert("edge")
        child.commit()
        assert parent.undo_length == 1
        parent.abort()
        assert not access.atoms.exists(s)

    def test_deep_nesting(self, env):
        access, manager = env
        top = manager.begin()
        surrogates = []
        current = top
        for _level in range(4):
            current = current.begin_nested()
            surrogates.append(current.insert("edge"))
        assert current.depth == 4
        for _level in range(4):
            current.commit()
            current = current.parent
        top.abort()
        assert all(not access.atoms.exists(s) for s in surrogates)

    def test_abort_cascades_to_active_child(self, env):
        access, manager = env
        parent = manager.begin()
        child = parent.begin_nested()
        s = child.insert("edge")
        parent.abort()
        assert child.state == ABORTED
        assert not access.atoms.exists(s)

    def test_sibling_sequence(self, env):
        access, manager = env
        parent = manager.begin()
        first = parent.begin_nested()
        a = first.insert("edge")
        first.commit()
        second = parent.begin_nested()
        b = second.insert("edge")
        second.abort()
        parent.commit()
        assert access.atoms.exists(a)
        assert not access.atoms.exists(b)


class TestLocks:
    def test_conflicting_top_level_transactions(self, env):
        access, manager = env
        base = access.insert("edge", {"length": 1.0})
        t1 = manager.begin()
        t2 = manager.begin()
        t1.modify(base, {"length": 2.0})
        with pytest.raises(LockConflictError):
            t2.modify(base, {"length": 3.0})
        with pytest.raises(LockConflictError):
            t2.get(base)

    def test_shared_reads_compatible(self, env):
        access, manager = env
        base = access.insert("edge")
        t1 = manager.begin()
        t2 = manager.begin()
        t1.get(base)
        t2.get(base)   # S/S compatible

    def test_child_may_use_ancestor_locks(self, env):
        access, manager = env
        base = access.insert("edge", {"length": 1.0})
        parent = manager.begin()
        parent.modify(base, {"length": 2.0})
        child = parent.begin_nested()
        child.modify(base, {"length": 3.0})   # parent holds X: allowed
        child.commit()
        parent.commit()
        assert access.get(base)["length"] == 3.0

    def test_committed_child_locks_retained_by_parent(self, env):
        access, manager = env
        base = access.insert("edge")
        parent = manager.begin()
        child = parent.begin_nested()
        child.modify(base, {"length": 4.0})
        child.commit()
        stranger = manager.begin()
        with pytest.raises(LockConflictError):
            stranger.modify(base, {"length": 5.0})
        parent.commit()
        stranger.modify(base, {"length": 5.0})   # released at top commit

    def test_abort_releases_locks(self, env):
        access, manager = env
        base = access.insert("edge")
        t1 = manager.begin()
        t1.modify(base, {"length": 1.5})
        t1.abort()
        t2 = manager.begin()
        t2.modify(base, {"length": 2.5})
        t2.commit()
        assert access.get(base)["length"] == 2.5

    def test_lock_upgrade_same_txn(self, env):
        access, manager = env
        base = access.insert("edge")
        txn = manager.begin()
        txn.get(base)            # S
        txn.modify(base, {"length": 1.0})   # upgrade to X
        assert manager.locks.locks_of(txn)[base] == "X"
