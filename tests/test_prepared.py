"""Prepared statements, parameter binding, and the plan cache.

Covers the whole redesigned query surface: MQL placeholders (``?`` /
``:name``), ``Prima.prepare`` → ``execute`` with late binding, the
shared catalog-versioned :class:`~repro.data.prepared.PlanCache` under
every entry point, DDL/LDL invalidation (never run a stale plan), the
serving layer's PREPARE / EXECUTE_PREPARED protocol, and the prepared
``parallel_select`` path.
"""

from __future__ import annotations

import threading

import pytest

from repro import Prima
from repro.errors import (
    ExecutionError,
    PrimaError,
    SessionStateError,
    ValidationError,
)
from repro.mql.ast import Parameter
from repro.mql.parser import parse
from repro.parallel import parallel_select
from repro.serve import protocol


def make_items(db: Prima, count: int = 60) -> None:
    db.execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, "
               "n: INTEGER, grp: INTEGER, name: CHAR_VAR) KEYS_ARE (n)")
    for i in range(count):
        db.insert_atom("item", {"n": i, "grp": i % 7, "name": f"i{i}"})


# ---------------------------------------------------------------------------
# Parsing placeholders
# ---------------------------------------------------------------------------

class TestPlaceholderParsing:
    def test_positional_markers_numbered_in_textual_order(self):
        statement = parse("SELECT ALL FROM item WHERE n = ? AND grp > ? "
                          "ORDER BY n LIMIT ? OFFSET ?")
        first, second = statement.where.parts
        assert first.right == Parameter(index=0)
        assert second.right == Parameter(index=1)
        assert statement.limit == Parameter(index=2)
        assert statement.offset == Parameter(index=3)

    def test_named_markers(self):
        statement = parse("SELECT ALL FROM item WHERE n = :key OR n = :key")
        for part in statement.where.parts:
            assert part.right == Parameter(name="key")

    def test_parameter_on_left_side_of_comparison(self):
        statement = parse("SELECT ALL FROM item WHERE ? < n")
        assert statement.where.left == Parameter(index=0)

    def test_parameter_inside_quantifier_condition(self):
        statement = parse("SELECT ALL FROM solid-face "
                          "WHERE EXISTS face: face.area > :min")
        assert statement.where.condition.right == Parameter(name="min")

    def test_parameter_in_insert_values_and_ref_keys(self):
        statement = parse("INSERT item (n = ?, name = :nm)")
        values = dict(statement.assignments)
        assert values["n"] == Parameter(index=0)
        assert values["name"] == Parameter(name="nm")
        statement = parse("SELECT ALL FROM a WHERE owner = REF user(?)")
        assert statement.where.right.key == (Parameter(index=0),)

    def test_render_markers(self):
        assert Parameter(index=2).render() == "?3"
        assert Parameter(name="lo").render() == ":lo"


# ---------------------------------------------------------------------------
# Prepare / execute through the facade
# ---------------------------------------------------------------------------

class TestPreparedExecution:
    def test_positional_binding(self, db):
        make_items(db)
        stmt = db.prepare("SELECT ALL FROM item WHERE n = ?")
        assert [m.atom["n"] for m in stmt.execute(7)] == [7]
        assert [m.atom["n"] for m in stmt.execute(11)] == [11]

    def test_named_binding(self, db):
        make_items(db)
        stmt = db.prepare(
            "SELECT ALL FROM item WHERE grp = :g AND n < :hi ORDER BY n")
        rows = [m.atom["n"] for m in stmt.execute(g=3, hi=20)]
        assert rows == [3, 10, 17]

    def test_signature_is_validated(self, db):
        make_items(db)
        stmt = db.prepare("SELECT ALL FROM item WHERE n = ? AND grp = :g")
        with pytest.raises(ExecutionError, match="1 positional"):
            stmt.execute(g=1)
        with pytest.raises(ExecutionError, match="no value bound"):
            stmt.execute(5)
        with pytest.raises(ExecutionError, match="unknown named"):
            stmt.execute(5, g=1, typo=2)

    def test_unbound_statement_refuses_direct_execution(self, db):
        make_items(db)
        with pytest.raises(ExecutionError, match="positional parameter"):
            db.query("SELECT ALL FROM item WHERE n = ?")
        # Compiling a plan template directly is refused too.
        stmt = db.prepare("SELECT ALL FROM item WHERE n = ?")
        with pytest.raises(ExecutionError, match="unbound parameter"):
            stmt.plan().compile(db.data)

    def test_parameterized_window(self, db):
        make_items(db, 30)
        stmt = db.prepare("SELECT ALL FROM item ORDER BY n LIMIT ? OFFSET ?")
        assert [m.atom["n"] for m in stmt.execute(3, 5)] == [5, 6, 7]
        assert [m.atom["n"] for m in stmt.execute(2, 0)] == [0, 1]

    def test_window_binding_is_validated(self, db):
        make_items(db, 10)
        stmt = db.prepare("SELECT ALL FROM item ORDER BY n LIMIT ?")
        with pytest.raises(ExecutionError, match="LIMIT"):
            stmt.execute(-1)
        with pytest.raises(ExecutionError, match="LIMIT"):
            stmt.execute("ten")

    def test_literal_negative_window_still_rejected_at_plan_time(self, db):
        from dataclasses import replace
        make_items(db, 5)
        statement = parse("SELECT ALL FROM item LIMIT 3")
        with pytest.raises(ValidationError):
            db.data.plan_select(replace(statement, limit=-1))
        with pytest.raises(ValidationError):
            db.data.plan_select(replace(statement, offset=-2))

    def test_execute_with_inline_bindings_on_facade(self, db):
        make_items(db)
        result = db.execute("SELECT ALL FROM item WHERE n = ?", 9)
        assert [m.atom["n"] for m in result] == [9]
        result = db.query("SELECT ALL FROM item WHERE grp = :g LIMIT 2", g=2)
        assert all(m.atom["grp"] == 2 for m in result)

    def test_prepared_dml_skips_reparsing(self, db):
        db.execute("CREATE ATOM_TYPE node (node_id: IDENTIFIER, "
                   "v: INTEGER)")
        insert = db.prepare("INSERT node (v = ?)")
        parsed_before = db.io_report()["statements_parsed"]
        for i in range(20):
            insert.execute(i)
        report = db.io_report()
        assert report["statements_parsed"] == parsed_before
        assert len(db.query("SELECT ALL FROM node")) == 20
        modify = db.prepare(
            "MODIFY node SET v = :new FROM node WHERE v = :old")
        assert modify.execute(new=100, old=3).affected == 1
        values = {m.atom["v"] for m in db.query("SELECT ALL FROM node")}
        assert 100 in values and 3 not in values

    def test_explain_template_and_bound(self, db):
        make_items(db)
        stmt = db.prepare("SELECT ALL FROM item WHERE n = ? "
                          "ORDER BY grp LIMIT ?")
        template = stmt.explain()
        assert "?1" in template and "?2" in template
        bound = stmt.explain(args=(4, 2))
        assert "?1" not in bound and "(key = (4,))" in bound
        analyzed = stmt.explain(analyze=True, args=(4, 2))
        assert "rows=" in analyzed
        with pytest.raises(PrimaError):
            db.explain("INSERT item (n = 1)")

    def test_facade_explain_with_positional_bindings(self, db):
        make_items(db)
        rendered = db.explain("SELECT ALL FROM item WHERE n = ?", 4)
        assert "(key = (4,))" in rendered
        analyzed = db.explain("SELECT ALL FROM item WHERE n = ?", 4,
                              analyze=True)
        assert "rows=" in analyzed

    def test_subquery_window_parameter_binds_like_the_literal_form(self, db):
        db.execute("CREATE ATOM_TYPE a (a_id: IDENTIFIER, an: INTEGER, "
                   "bs: SET_OF (REF_TO (b.a)))")
        db.execute("CREATE ATOM_TYPE b (b_id: IDENTIFIER, bn: INTEGER, "
                   "a: REF_TO (a.bs))")
        root = db.insert_atom("a", {"an": 1})
        for i in range(3):
            db.insert_atom("b", {"bn": i, "a": root})
        literal = db.query("SELECT (an, b := SELECT ALL FROM b "
                           "WHERE bn >= 1 LIMIT 2) FROM a-b")
        stmt = db.prepare("SELECT (an, b := SELECT ALL FROM b "
                          "WHERE bn >= :lo LIMIT :k) FROM a-b")
        bound = stmt.execute(lo=1, k=2)
        assert [m.atom["bn"] for m in bound[0].component_list("b")] == \
            [m.atom["bn"] for m in literal[0].component_list("b")]
        with pytest.raises(ExecutionError, match="LIMIT"):
            stmt.execute(lo=1, k=-2)

    def test_results_identical_to_literal_form(self, db):
        make_items(db)
        db.execute_ldl("CREATE ACCESS PATH item_grp ON item (grp) "
                       "USING BTREE")
        stmt = db.prepare("SELECT ALL FROM item WHERE grp >= ? AND "
                          "grp <= ? ORDER BY n")
        literal = db.query("SELECT ALL FROM item WHERE grp >= 2 AND "
                           "grp <= 3 ORDER BY n")
        assert [m.atom["n"] for m in stmt.execute(2, 3)] == \
            [m.atom["n"] for m in literal]


# ---------------------------------------------------------------------------
# Sargability of prepared plans
# ---------------------------------------------------------------------------

class TestPreparedSargability:
    def test_key_equality_takes_key_lookup(self, db):
        make_items(db)
        stmt = db.prepare("SELECT ALL FROM item WHERE n = ?")
        assert stmt.plan().root_access.kind == "key_lookup"

    def test_range_takes_access_path(self, db):
        make_items(db)
        db.execute_ldl("CREATE ACCESS PATH item_grp ON item (grp) "
                       "USING BTREE")
        stmt = db.prepare("SELECT ALL FROM item WHERE grp >= :lo")
        plan = stmt.plan()
        assert plan.root_access.kind == "access_path"
        bound = stmt.bind(params={"lo": 5})
        condition = bound.root_access.detail["conditions"][0]
        assert condition.start == 5
        assert "grp >= 5" in bound.root_access.detail["range"]

    def test_search_argument_on_atom_type_scan(self, db):
        make_items(db)
        stmt = db.prepare("SELECT ALL FROM item WHERE grp = ?")
        plan = stmt.plan()
        assert plan.root_access.kind == "atom_type_scan"
        bound = stmt.bind(args=(4,))
        assert ("grp", "=", 4) in bound.root_access.detail["search"]
        assert all(m.atom["grp"] == 4 for m in stmt.execute(4))

    def test_acceptance_query_key_order_limit(self, db):
        """The acceptance shape: WHERE key = ? ORDER BY a LIMIT ?."""
        make_items(db)
        stmt = db.prepare("SELECT ALL FROM item WHERE n = ? "
                          "ORDER BY grp LIMIT ?")
        plan = stmt.plan()
        assert plan.root_access.kind == "key_lookup"
        assert plan.uses_topk
        assert [m.atom["n"] for m in stmt.execute(13, 5)] == [13]

    def test_prepared_topk_bound_pushdown(self, db):
        make_items(db, 400)
        db.execute_ldl("CREATE SORT ORDER item_grp ON item (grp)")
        # ORDER BY grp, n over a sort order on (grp): prefix-served,
        # TopK pushes its tightening heap bound into the walk.
        stmt = db.prepare("SELECT ALL FROM item ORDER BY grp, n LIMIT ?")
        db.reset_accounting()
        result = stmt.execute(5)
        rows = [(m.atom["grp"], m.atom["n"]) for m in result]
        assert rows == [(0, 0), (0, 7), (0, 14), (0, 21), (0, 28)]
        report = db.io_report()
        assert report["topk_bounds_pushed"] >= 1
        assert report["operator_rows:MoleculeConstruct"] < 400


# ---------------------------------------------------------------------------
# The plan cache
# ---------------------------------------------------------------------------

class TestPlanCache:
    def test_repeated_text_parses_once(self, db):
        make_items(db)
        db.reset_accounting()
        for i in range(10):
            db.query("SELECT ALL FROM item WHERE grp = 3").materialize()
        report = db.io_report()
        assert report["statements_parsed"] == 1
        assert report["plan_cache_misses"] == 1
        assert report["plan_cache_hits"] == 9

    def test_whitespace_is_normalized(self, db):
        make_items(db)
        db.reset_accounting()
        db.query("SELECT ALL FROM item WHERE grp = 3").materialize()
        db.query("SELECT  ALL\n  FROM item\n WHERE grp = 3").materialize()
        assert db.io_report()["plan_cache_hits"] == 1

    def test_use_cache_false_bypasses(self, db):
        make_items(db)
        db.reset_accounting()
        for _ in range(3):
            db.query("SELECT ALL FROM item", use_cache=False).materialize()
        report = db.io_report()
        assert report["statements_parsed"] == 3
        assert report.get("plan_cache_hits", 0) == 0

    def test_dml_is_not_cached(self, db):
        db.execute("CREATE ATOM_TYPE node (node_id: IDENTIFIER, "
                   "v: INTEGER)")
        db.reset_accounting()
        db.execute("INSERT node (v = 1)")
        db.execute("INSERT node (v = 1)")
        report = db.io_report()
        assert report["statements_parsed"] == 2
        assert report.get("plan_cache_hits", 0) == 0

    def test_lru_eviction(self, db):
        # Auto-parameterization would collapse these literal variants
        # into one shared template — turn it off to exercise the LRU.
        db.data.auto_parameterize = False
        make_items(db, 10)
        db.data.plan_cache.capacity = 4
        for i in range(8):
            db.query(f"SELECT ALL FROM item WHERE n = {i}").materialize()
        assert len(db.data.plan_cache) == 4
        assert db.data.plan_cache.evictions == 4

    def test_shared_prepared_object_on_hit(self, db):
        make_items(db)
        first = db.prepare("SELECT ALL FROM item WHERE n = ?")
        second = db.prepare("SELECT ALL FROM item  WHERE n = ?")
        assert first is second

    def test_string_literals_survive_normalization(self, db):
        """Whitespace inside string literals distinguishes statements —
        'a b' and 'a  b' must never share a cached plan."""
        make_items(db, 3)
        db.insert_atom("item", {"n": 100, "grp": 0, "name": "a b"})
        db.insert_atom("item", {"n": 101, "grp": 0, "name": "a  b"})
        one = db.query("SELECT ALL FROM item WHERE name = 'a b'")
        two = db.query("SELECT ALL FROM item WHERE name = 'a  b'")
        assert [m.atom["n"] for m in one] == [100]
        assert [m.atom["n"] for m in two] == [101]
        # ... while formatting outside literals still shares the key.
        db.data.plan_cache.clear()
        db.reset_accounting()
        db.query("SELECT ALL FROM item WHERE name = 'a b'").materialize()
        db.query("SELECT  ALL FROM item  WHERE name = 'a b'").materialize()
        assert db.io_report()["plan_cache_hits"] == 1


# ---------------------------------------------------------------------------
# Invalidation: DDL, LDL, version stamps
# ---------------------------------------------------------------------------

class TestInvalidation:
    def test_catalog_version_bumps(self, db):
        v0 = db.data.catalog_version
        db.execute("CREATE ATOM_TYPE t (t_id: IDENTIFIER, x: INTEGER)")
        v1 = db.data.catalog_version
        assert v1 > v0
        db.execute_ldl("CREATE SORT ORDER t_x ON t (x)")
        v2 = db.data.catalog_version
        assert v2 > v1
        db.execute_ldl("DROP SORT ORDER t_x")
        assert db.data.catalog_version > v2
        db.execute("DEFINE MOLECULE TYPE mt FROM t")
        v3 = db.data.catalog_version
        assert v3 > v2
        db.execute("DROP MOLECULE_TYPE mt")
        assert db.data.catalog_version > v3
        db.execute("DROP ATOM_TYPE t")
        assert db.data.catalog_version > v3 + 1 - 1

    def test_ldl_structure_picked_up_by_prepared_plan(self, db):
        make_items(db)
        stmt = db.prepare("SELECT ALL FROM item ORDER BY grp")
        assert stmt.plan().root_access.kind == "atom_type_scan"
        db.execute_ldl("CREATE SORT ORDER item_grp ON item (grp)")
        assert stmt.plan().root_access.kind == "sort_scan"
        assert db.io_report()["plans_invalidated"] >= 1
        groups = [m.atom["grp"] for m in stmt.execute()]
        assert groups == sorted(groups)
        # ... and dropping the structure re-plans back to the scan.
        db.execute_ldl("DROP SORT ORDER item_grp")
        assert stmt.plan().root_access.kind == "atom_type_scan"

    def test_drop_atom_type_raises_instead_of_stale(self, db):
        db.execute("CREATE ATOM_TYPE t (t_id: IDENTIFIER, x: INTEGER)")
        stmt = db.prepare("SELECT ALL FROM t WHERE x = ?")
        assert stmt.execute(1).materialize() == []
        db.execute("DROP ATOM_TYPE t")
        with pytest.raises(ValidationError):
            stmt.execute(1)

    def test_cached_plain_text_also_revalidates(self, db):
        make_items(db)
        db.query("SELECT ALL FROM item ORDER BY grp LIMIT 3").materialize()
        db.execute_ldl("CREATE SORT ORDER item_grp ON item (grp)")
        db.reset_accounting()
        result = db.query("SELECT ALL FROM item ORDER BY grp LIMIT 3")
        result.materialize()
        report = db.io_report()
        assert report["plan_cache_hits"] == 1       # text cache still hits
        assert report["plans_invalidated"] == 1     # ... but re-plans
        assert "SORT SCAN" in result.plan_text

    def test_define_molecule_type_invalidates(self, db):
        db.execute("CREATE ATOM_TYPE base (base_id: IDENTIFIER, "
                   "v: INTEGER)")
        stmt = db.prepare("SELECT ALL FROM base")
        stmt.execute().materialize()
        before = db.io_report().get("plans_invalidated", 0)
        db.execute("DEFINE MOLECULE TYPE mt FROM base")
        stmt.execute().materialize()
        assert db.io_report().get("plans_invalidated", 0) == before + 1


# ---------------------------------------------------------------------------
# Serving: PREPARE / EXECUTE_PREPARED
# ---------------------------------------------------------------------------

class TestServingPrepared:
    def test_execute_prepared_streams_without_text(self, db):
        make_items(db)
        manager = db.serve(max_sessions=2)
        with manager.open("w1") as session:
            long_tail = " AND n >= 0" * 30
            text = ("SELECT ALL FROM item WHERE grp = ?" + long_tail +
                    " ORDER BY n LIMIT 3")
            stmt = session.prepare(text)
            # Re-execution ships handle + bindings only: its request is
            # far smaller than reshipping the statement text.
            before = manager.stats.snapshot()["bytes_sent"]
            rows = [m.atom["n"] for m in stmt.execute(2)]
            prepared_bytes = manager.stats.snapshot()["bytes_sent"] - before
            assert rows == [2, 9, 16]
            before = manager.stats.snapshot()["bytes_sent"]
            plain = session.query(text, args=(2,))
            assert [m.atom["n"] for m in plain] == [2, 9, 16]
            plain_bytes = manager.stats.snapshot()["bytes_sent"] - before
            assert prepared_bytes < plain_bytes - len(long_tail)

    def test_rebinding_across_executions(self, db):
        make_items(db)
        db.reset_accounting()
        manager = db.serve()
        with manager.open() as session:
            stmt = session.prepare(
                "SELECT ALL FROM item WHERE n = ? ORDER BY grp LIMIT ?")
            assert [m.atom["n"] for m in stmt.execute(4, 2)] == [4]
            assert [m.atom["n"] for m in stmt.execute(40, 2)] == [40]
            report = manager.io_report()
            assert report["serve_statements_prepared"] == 1
            assert report["serve_prepared_executions"] == 2
            assert report["statements_parsed"] == 1

    def test_prepared_cursor_honours_fetch_size(self, db):
        make_items(db, 40)
        manager = db.serve(fetch_size=4)
        with manager.open() as session:
            stmt = session.prepare("SELECT ALL FROM item WHERE grp = :g")
            cursor = stmt.open_cursor(g=1)
            rows = [m.atom["n"] for m in cursor]
            assert rows == [1, 8, 15, 22, 29, 36]
            assert cursor.max_in_flight <= 8

    def test_prepared_dml_through_session(self, db):
        db.execute("CREATE ATOM_TYPE node (node_id: IDENTIFIER, "
                   "v: INTEGER)")
        manager = db.serve()
        with manager.open() as session:
            insert = session.prepare("INSERT node (v = ?)")
            for i in range(5):
                insert.execute(i)
            result = session.execute(
                "MODIFY node SET v = :nv FROM node WHERE v = :ov",
                nv=99, ov=2)
            assert result.affected == 1
        values = {m.atom["v"] for m in db.query("SELECT ALL FROM node")}
        assert values == {0, 1, 99, 3, 4}

    def test_deallocated_handle_refuses(self, db):
        make_items(db, 5)
        manager = db.serve()
        with manager.open() as session:
            stmt = session.prepare("SELECT ALL FROM item")
            assert session.open_statements == 1
            stmt.close()
            assert session.open_statements == 0
            with pytest.raises(SessionStateError):
                stmt.execute()

    def test_unknown_statement_handle(self, db):
        make_items(db, 5)
        manager = db.serve()
        with manager.open() as session:
            with pytest.raises(SessionStateError, match="no prepared"):
                session.handle(protocol.ExecutePrepared(statement_id=99))

    def test_ldl_between_serving_executions_replans(self, db):
        make_items(db)
        manager = db.serve()
        with manager.open("admin") as admin, manager.open("reader") as rd:
            stmt = rd.prepare("SELECT ALL FROM item ORDER BY grp LIMIT 4")
            first = stmt.execute()
            assert "ATOM TYPE SCAN" in first.plan_text
            del admin  # (admin session exercises multi-session setup)
            db.execute_ldl("CREATE SORT ORDER item_grp ON item (grp)")
            second = stmt.execute()
            assert "SORT SCAN" in second.plan_text
            assert [m.atom["grp"] for m in second] == \
                [m.atom["grp"] for m in first]


# ---------------------------------------------------------------------------
# A threaded hammer: concurrent executions under DDL/LDL churn
# ---------------------------------------------------------------------------

@pytest.mark.timeout(60)
class TestConcurrentInvalidation:
    def test_hammer_never_executes_stale(self, db):
        """Sessions re-executing a shared prepared statement while LDL
        churns tuning structures must always see correct results —
        every execution runs a current (re-validated) plan."""
        make_items(db, 80)
        manager = db.serve(max_sessions=6)
        text = "SELECT ALL FROM item WHERE grp = ? ORDER BY n LIMIT 5"
        expected = {
            g: [m.atom["n"] for m in db.query(text, g)]
            for g in range(7)
        }
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader(worker: int) -> None:
            try:
                session = manager.open(f"r{worker}")
                stmt = session.prepare(text)
                for round_no in range(40):
                    group = (worker + round_no) % 7
                    rows = [m.atom["n"] for m in stmt.execute(group)]
                    assert rows == expected[group], \
                        f"stale plan result {rows} for group {group}"
                session.close()
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)
                stop.set()

        def churn() -> None:
            try:
                for i in range(25):
                    if stop.is_set():
                        break
                    with manager.engine.writer():
                        db.execute_ldl(
                            f"CREATE SORT ORDER churn_{i} ON item (grp)")
                        db.execute_ldl(f"DROP SORT ORDER churn_{i}")
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(w,), daemon=True)
                   for w in range(4)]
        threads.append(threading.Thread(target=churn, daemon=True))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=45)
            assert not thread.is_alive(), "hammer thread deadlocked"
        assert not errors, errors
        assert db.io_report().get("plans_invalidated", 0) >= 1


# ---------------------------------------------------------------------------
# Prepared parallel_select
# ---------------------------------------------------------------------------

class TestParallelPrepared:
    def test_prepared_statement_through_parallel_select(self, db):
        make_items(db, 50)
        stmt = db.prepare("SELECT ALL FROM item WHERE grp = ? ORDER BY n")
        serial = [m.atom["n"] for m in stmt.execute(3)]
        db.reset_accounting()
        outcome = parallel_select(db, stmt, processors=3, args=(3,))
        assert [m.atom["n"] for m in outcome.result] == serial
        assert db.io_report().get("statements_parsed", 0) == 0

    def test_text_path_rides_the_cache(self, db):
        make_items(db, 30)
        db.reset_accounting()
        for _ in range(3):
            parallel_select(db, "SELECT ALL FROM item WHERE grp = :g",
                            processors=2, params={"g": 1})
        report = db.io_report()
        assert report["statements_parsed"] == 1
        assert report["plan_cache_hits"] == 2

    def test_non_select_prepared_rejected(self, db):
        db.execute("CREATE ATOM_TYPE node (node_id: IDENTIFIER, "
                   "v: INTEGER)")
        stmt = db.prepare("INSERT node (v = ?)")
        from repro.errors import DecompositionError
        with pytest.raises(DecompositionError):
            parallel_select(db, stmt, args=(1,))


# ---------------------------------------------------------------------------
# Facade satellites: context manager, reset_accounting
# ---------------------------------------------------------------------------

class TestFacadeLifecycle:
    def test_context_manager_closes_and_flushes(self):
        with Prima() as db:
            make_items(db, 5)
            manager = db.serve()
            session = manager.open("s")
            session.query("SELECT ALL FROM item").materialize()
            assert db.io_report().get("net_messages", 0) > 0
        # closed: sessions torn down, network stats detached
        assert session.closed
        assert "net_messages" not in db.io_report()

    def test_close_is_idempotent(self):
        db = Prima()
        db.close()
        db.close()

    def test_reset_accounting_resets_session_counters(self, db):
        make_items(db, 10)
        manager = db.serve()
        session = manager.open("alice")
        session.query("SELECT ALL FROM item").materialize()
        report = manager.io_report()
        assert report["session:alice:cursors_opened"] == 1
        assert report["serve_cursors_opened"] == 1
        db.reset_accounting()
        report = manager.io_report()
        assert report.get("session:alice:cursors_opened", 0) == 0
        assert report.get("serve_cursors_opened", 0) == 0
        assert report["net_messages"] == 0
        session.close()

    def test_query_and_stream_are_one_implementation(self):
        assert Prima.query is Prima.execute
        assert Prima.stream is Prima.execute


# ---------------------------------------------------------------------------
# The acceptance shape, across every surface
# ---------------------------------------------------------------------------

class TestAcceptanceCrossSurface:
    def test_same_prepared_query_everywhere(self, db):
        """One prepared ``WHERE key-ish = ? ORDER BY a LIMIT ?`` works
        identically through Prima, a serving Session (server-side
        handle), and parallel_select — with zero parse/plan work after
        the single prepare."""
        make_items(db, 60)
        text = "SELECT ALL FROM item WHERE grp = ? ORDER BY n LIMIT ?"
        expected = [m.atom["n"] for m in db.query(text, 2, 3)]
        stmt = db.prepare(text)          # cache hit: the same template
        db.reset_accounting()
        direct = [m.atom["n"] for m in stmt.execute(2, 3)]
        manager = db.serve()
        with manager.open() as session:
            handle = session.prepare(text)   # hit again — no parse
            served = [m.atom["n"] for m in handle.execute(2, 3)]
        outcome = parallel_select(db, stmt, processors=2, args=(2, 3))
        via_parallel = [m.atom["n"] for m in outcome.result]
        assert direct == served == via_parallel == expected
        assert db.io_report().get("statements_parsed", 0) == 0
        assert db.io_report().get("statements_planned", 0) == 0


# ---------------------------------------------------------------------------
# Auto-parameterization: literal variants share one cached template
# ---------------------------------------------------------------------------

class TestAutoParameterize:
    def test_literal_variants_share_one_template(self, db):
        """Distinct literals of one statement shape plan once (as a
        shared template) after the shape is seen twice."""
        make_items(db, 70)
        expected = {g: [m.atom["n"] for m in
                        db.query("SELECT ALL FROM item WHERE grp = ? "
                                 "ORDER BY n", g)]
                    for g in range(5)}
        db.data.plan_cache.clear()
        db.reset_accounting()
        rows = {g: [m.atom["n"] for m in
                    db.query(f"SELECT ALL FROM item WHERE grp = {g} "
                             f"ORDER BY n")]
                for g in range(5)}
        assert rows == expected          # every literal gets its own set
        report = db.io_report()
        # Literal #0 plans literally (first sighting of the shape),
        # literal #1 promotes the shape into a template; #2..#4 ride it.
        assert report["statements_parsed"] == 2
        assert report["plan_cache_template_hits"] == 3

    def test_knob_off_plans_every_literal(self, db):
        make_items(db, 30)
        db.data.auto_parameterize = False
        db.data.plan_cache.clear()
        db.reset_accounting()
        for g in range(4):
            db.query(f"SELECT ALL FROM item WHERE grp = {g}").materialize()
        assert db.io_report()["statements_parsed"] == 4
        assert db.io_report().get("plan_cache_template_hits", 0) == 0

    def test_explicit_placeholders_never_templated(self, db):
        make_items(db, 30)
        db.data.plan_cache.clear()
        db.reset_accounting()
        rows = [m.atom["n"] for m in
                db.query("SELECT ALL FROM item WHERE grp = ?", 3)]
        assert rows == [n for n in range(30) if n % 7 == 3]
        assert db.io_report().get("plan_cache_template_hits", 0) == 0

    def test_limit_literals_lifted(self, db):
        make_items(db, 40)
        db.data.plan_cache.clear()
        db.reset_accounting()
        sizes = [len(db.query(f"SELECT ALL FROM item ORDER BY n LIMIT {k}"))
                 for k in (3, 5, 9)]
        assert sizes == [3, 5, 9]        # each variant honours its window
        assert db.io_report()["plan_cache_template_hits"] == 1

    def test_bound_template_rejects_external_bindings(self, db):
        make_items(db, 20)
        db.data.plan_cache.clear()
        db.prepare("SELECT ALL FROM item WHERE grp = 1")
        db.prepare("SELECT ALL FROM item WHERE grp = 2")
        bound = db.prepare("SELECT ALL FROM item WHERE grp = 3")
        assert bound.param_count == 0
        assert [m.atom["n"] for m in bound.execute()] == \
            [n for n in range(20) if n % 7 == 3]
        with pytest.raises(ExecutionError):
            bound.execute(4)

    def test_string_literals_survive_the_round_trip(self, db):
        make_items(db, 25)
        db.data.plan_cache.clear()
        db.reset_accounting()
        for i in (3, 8, 14):
            rows = db.query(f"SELECT ALL FROM item WHERE name = 'i{i}'")
            assert [m.atom["n"] for m in rows] == [i]
        assert db.io_report()["plan_cache_template_hits"] == 1
