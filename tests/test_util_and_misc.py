"""Unit tests: counters, errors, plan explanations, misc plumbing."""

import pytest

from repro import Prima
from repro.errors import LexerError, PrimaError, StorageError
from repro.util.stats import Counters, Instrumented


class TestCounters:
    def test_bump_and_get(self):
        counters = Counters()
        counters.bump("x")
        counters.bump("x", 4)
        assert counters.get("x") == 5
        assert counters.get("never") == 0

    def test_snapshot_sorted(self):
        counters = Counters()
        counters.bump("b")
        counters.bump("a")
        assert list(counters.snapshot()) == ["a", "b"]

    def test_diff(self):
        counters = Counters()
        counters.bump("x", 3)
        earlier = counters.snapshot()
        counters.bump("x", 2)
        counters.bump("y")
        assert counters.diff(earlier) == {"x": 2, "y": 1}

    def test_diff_skips_unchanged(self):
        counters = Counters()
        counters.bump("same", 5)
        assert counters.diff(counters.snapshot()) == {}

    def test_reset(self):
        counters = Counters()
        counters.bump("x")
        counters.reset()
        assert counters.get("x") == 0

    def test_iteration(self):
        counters = Counters()
        counters.bump("k", 7)
        assert list(counters) == [("k", 7)]

    def test_instrumented_shares_bag(self):
        shared = Counters()
        first = Instrumented(shared)
        second = Instrumented(shared)
        first.counters.bump("x")
        assert second.counters.get("x") == 1
        private = Instrumented()
        assert private.counters.get("x") == 0


class TestErrorHierarchy:
    def test_everything_is_prima_error(self):
        import inspect
        import repro.errors as errors_module
        for _name, cls in inspect.getmembers(errors_module, inspect.isclass):
            if cls.__module__ == "repro.errors":
                assert issubclass(cls, PrimaError)

    def test_layer_catchability(self):
        from repro.errors import BufferFullError, PageSizeError
        assert issubclass(BufferFullError, StorageError)
        assert issubclass(PageSizeError, StorageError)

    def test_lexer_error_carries_position(self):
        err = LexerError("bad", line=3, column=7)
        assert err.line == 3 and err.column == 7
        assert "line 3" in str(err)


class TestPlanExplanations:
    @pytest.fixture
    def db(self):
        database = Prima()
        database.execute("CREATE ATOM_TYPE a (a_id: IDENTIFIER, "
                         "n: INTEGER) KEYS_ARE (n)")
        database.query("SELECT ALL FROM a")
        for value in range(5):
            database.insert_atom("a", {"n": value})
        return database

    def test_key_lookup_explained(self, db):
        plan = db.explain("SELECT ALL FROM a WHERE n = 3")
        assert "KEY LOOKUP a" in plan

    def test_search_argument_explained(self, db):
        plan = db.explain("SELECT ALL FROM a WHERE n > 1")
        assert "ATOM TYPE SCAN" in plan and "search" in plan

    def test_access_path_explained(self, db):
        db.execute_ldl("CREATE ACCESS PATH an ON a (n)")
        plan = db.explain("SELECT ALL FROM a WHERE n > 1 AND n < 4")
        assert "ACCESS PATH SCAN an" in plan
        assert "n >" in plan and "n <" in plan

    def test_cluster_construction_explained(self, db):
        db.execute("CREATE ATOM_TYPE b (b_id: IDENTIFIER, "
                   "a_ref: REF_TO (a.bs))")
        # amend a with the back side: not allowed post-hoc, so rebuild
        database = Prima()
        database.execute_script("""
            CREATE ATOM_TYPE a (a_id: IDENTIFIER, n: INTEGER,
                                bs: SET_OF (REF_TO (b.a_ref)));
            CREATE ATOM_TYPE b (b_id: IDENTIFIER, a_ref: REF_TO (a.bs))
        """)
        database.query("SELECT ALL FROM a")
        database.execute_ldl("CREATE ATOM_CLUSTER ab FROM a-b")
        plan = database.explain("SELECT ALL FROM a-b")
        assert "ATOM CLUSTER ab" in plan

    def test_projection_explained(self, db):
        plan = db.explain("SELECT n FROM a")
        assert "project: 1 item(s)" in plan


class TestScriptErrors:
    def test_helpful_parse_error_position(self):
        from repro.errors import ParseError
        db = Prima()
        with pytest.raises(ParseError) as err:
            db.execute("SELECT ALL FORM a")
        assert "line" in str(err.value)

    def test_unknown_statement(self):
        from repro.errors import ParseError
        with pytest.raises(ParseError):
            Prima().execute("VACUUM everything")

    def test_semantic_error_names_candidates(self):
        from repro.errors import ValidationError
        db = Prima()
        db.execute("CREATE ATOM_TYPE a (a_id: IDENTIFIER)")
        with pytest.raises(ValidationError) as err:
            db.query("SELECT ALL FROM ghost")
        assert "ghost" in str(err.value)
