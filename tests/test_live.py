"""Tests: live queries — subscriptions, invalidation, server push.

Covers the PR-10 gates end to end: epoch-delta invalidation (a commit
outside a subscription's dependency set is one set lookup, never a
re-evaluation), NOTIFY delivery over the in-process and the daemon
transports with identical payloads, correlation-id framing (no NOTIFY
spliced between a request and its reply), subscription hygiene (lease
expiry, unsubscribe idempotence, abrupt EOF, admission budgets, burst
coalescing), and the cluster path (any shard's commit can fire).
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

import repro
from repro import Prima, ShardedCluster
from repro.errors import (
    SessionStateError,
    SubscriptionLimitError,
)
from repro.serve import PrimaDaemon, SessionManager, protocol
from repro.serve.aio import open_client

N_ITEMS = 24
GROUPS = 3


def make_db(n: int = N_ITEMS) -> Prima:
    db = Prima()
    db.execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, "
               "n: INTEGER, grp: INTEGER) KEYS_ARE (n)")
    db.execute("CREATE ATOM_TYPE other (other_id: IDENTIFIER, "
               "k: INTEGER) KEYS_ARE (k)")
    for i in range(n):
        db.insert_atom("item", {"n": i, "grp": i % GROUPS})
    return db


@pytest.fixture
def db():
    return make_db()


class FakeClock:
    """A deterministic manager clock."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached in time")


def drain(conn, timeout: float = 2.0, want: int = 1):
    """Poll a connection until ``want`` NOTIFY frames arrived."""
    frames = []
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline and len(frames) < want:
        frames.extend(conn.notifications(timeout=0.1))
    return frames


# ---------------------------------------------------------------------------
# Dependency extraction and the invalidation index
# ---------------------------------------------------------------------------

class TestDependencies:
    def test_prepared_statement_exposes_dependency_types(self, db):
        prepared = db.data.prepare("SELECT ALL FROM item")
        assert prepared.dependency_types() == frozenset({"item"})

    def test_subscribe_reply_carries_dependency_set(self, db):
        with repro.connect(db) as conn:
            sub = conn.subscribe("SELECT ALL FROM item")
            assert sub.types == ("item",)
            assert sub.catalog_version == db.data.catalog_version

    def test_subscribe_rejects_non_select(self, db):
        with repro.connect(db) as conn:
            with pytest.raises(SessionStateError):
                conn.subscribe("INSERT item (n = 999, grp = 0)")

    def test_subscribe_rejects_unknown_deliver(self, db):
        with repro.connect(db) as conn:
            with pytest.raises(SessionStateError):
                conn.subscribe("SELECT ALL FROM item", deliver="push-pull")


class TestInvalidation:
    def test_unrelated_commit_is_one_set_lookup(self, db):
        """The headline acceptance gate: a commit to a type outside the
        dependency set skips without re-evaluation or notification."""
        with repro.connect(db) as conn:
            conn.subscribe("SELECT ALL FROM item", deliver="requery")
            before = db.access.counters.snapshot()
            db.insert_atom("other", {"k": 77})
            after = db.access.counters.snapshot()
            assert after.get("invalidations_skipped", 0) == \
                before.get("invalidations_skipped", 0) + 1
            assert after.get("subscription_requeries", 0) == \
                before.get("subscription_requeries", 0)
            assert conn.notifications(timeout=0.2) == []

    def test_matching_commit_delivers_notify(self, db):
        with repro.connect(db) as conn:
            sub = conn.subscribe("SELECT ALL FROM item")
            db.insert_atom("item", {"n": 900, "grp": 1})
            frames = drain(conn)
            assert [f.subscription_id for f in frames] == \
                [sub.subscription_id]
            assert frames[0].types == ("item",)
            assert frames[0].molecules is None
            assert frames[0].epoch > 0

    def test_no_subscriptions_means_no_counters(self, db):
        before = db.access.counters.snapshot()
        db.insert_atom("item", {"n": 901, "grp": 0})
        after = db.access.counters.snapshot()
        assert after.get("invalidations_skipped", 0) == \
            before.get("invalidations_skipped", 0)
        assert after.get("invalidations_fired", 0) == \
            before.get("invalidations_fired", 0)

    def test_catalog_bump_fires_all_subscriptions(self, db):
        with repro.connect(db) as conn:
            conn.subscribe("SELECT ALL FROM item")
            db.execute("CREATE ATOM_TYPE later (later_id: IDENTIFIER, "
                       "v: INTEGER)")
            # The next commit (to an unrelated type!) observes the moved
            # catalog stamp and fires everything.
            db.insert_atom("other", {"k": 55})
            frames = drain(conn)
            assert frames and frames[0].catalog_changed

    def test_requery_delivers_fresh_molecules(self, db):
        with repro.connect(db) as conn:
            sub = conn.subscribe("SELECT ALL FROM item WHERE grp = 7",
                                 deliver="requery")
            db.insert_atom("item", {"n": 910, "grp": 7})
            db.insert_atom("item", {"n": 911, "grp": 7})
            frames = drain(conn)
            assert frames[-1].subscription_id == sub.subscription_id
            rows = {m.atom["n"] for m in frames[-1].molecules}
            assert rows <= {910, 911} and rows


# ---------------------------------------------------------------------------
# Hygiene: leases, budgets, coalescing, abrupt EOF
# ---------------------------------------------------------------------------

class TestHygiene:
    def test_lease_expiry_reaps_subscriptions(self, db):
        clock = FakeClock()
        manager = SessionManager(db, max_sessions=1, session_lease=120,
                                 clock=clock)
        conn = repro.connect(manager)
        conn.subscribe("SELECT ALL FROM item")
        assert manager.live.active == 1
        clock.advance(200)
        assert manager.reap()["sessions_expired"] == 1
        assert manager.live.active == 0

    def test_unsubscribe_is_idempotent(self, db):
        with repro.connect(db) as conn:
            sub = conn.subscribe("SELECT ALL FROM item")
            assert conn.unsubscribe(sub.subscription_id) is None
            # A second UNSUBSCRIBE of the same id is a quiet no-op.
            assert conn.unsubscribe(sub.subscription_id) is None

    def test_subscription_budget_enforced(self, db):
        manager = SessionManager(db, max_subscriptions=2)
        with repro.connect(manager) as conn:
            conn.subscribe("SELECT ALL FROM item")
            conn.subscribe("SELECT ALL FROM other")
            with pytest.raises(SubscriptionLimitError):
                conn.subscribe("SELECT ALL FROM item WHERE grp = 1")

    def test_unsubscribe_frees_budget_slot(self, db):
        manager = SessionManager(db, max_subscriptions=1)
        with repro.connect(manager) as conn:
            sub = conn.subscribe("SELECT ALL FROM item")
            conn.unsubscribe(sub.subscription_id)
            conn.subscribe("SELECT ALL FROM other")   # slot reclaimed

    def test_burst_of_commits_coalesces(self, db):
        clock = FakeClock()
        manager = SessionManager(db, clock=clock, notify_interval=60)
        conn = repro.connect(manager)
        conn.subscribe("SELECT ALL FROM item")
        for i in range(100):
            db.insert_atom("item", {"n": 2000 + i, "grp": 0})
        # First delta was due immediately; the other 99 coalesced into
        # one pending delta that flushes when the interval elapses.
        first = conn.notifications(timeout=0.1)
        assert len(first) == 1 and first[0].coalesced == 0
        clock.advance(61)
        manager.live.pump()
        flushed = conn.notifications(timeout=0.1)
        assert len(flushed) == 1
        assert flushed[0].coalesced == 98
        assert flushed[0].epoch >= first[0].epoch
        counters = db.access.counters.snapshot()
        assert counters.get("notifications_coalesced", 0) >= 90

    def test_abrupt_eof_reclaims_subscription_slots(self, db):
        manager = SessionManager(db)
        daemon = PrimaDaemon(manager)
        daemon.start()
        try:
            conn = daemon.connect()
            conn.subscribe("SELECT ALL FROM item")
            assert manager.live.active == 1
            conn._transport.close()   # no GOODBYE: raw socket drop
            wait_until(lambda: manager.live.active == 0)
        finally:
            daemon.stop()

    def test_session_close_drops_subscriptions(self, db):
        manager = SessionManager(db)
        conn = repro.connect(manager)
        conn.subscribe("SELECT ALL FROM item")
        assert manager.live.active == 1
        conn.close()
        assert manager.live.active == 0
        # No stale subscription left to fire.
        db.insert_atom("item", {"n": 950, "grp": 0})

    def test_active_gauge_tracks_registrations(self, db):
        manager = SessionManager(db)
        with repro.connect(manager) as conn:
            sub = conn.subscribe("SELECT ALL FROM item")
            assert manager.metrics.gauges()["subscriptions_active"] == 1.0
            conn.unsubscribe(sub.subscription_id)
            assert manager.metrics.gauges()["subscriptions_active"] == 0.0


# ---------------------------------------------------------------------------
# Framing: NOTIFY never splices into a request/reply exchange
# ---------------------------------------------------------------------------

class TestFraming:
    def test_concurrent_fetch_and_notify_hammer(self, db):
        """Regression: unsolicited NOTIFY frames land mid-exchange on
        the socket; correlation ids keep every reply paired."""
        manager = SessionManager(db)
        daemon = PrimaDaemon(manager)
        daemon.start()
        try:
            conn = daemon.connect()
            conn.subscribe("SELECT ALL FROM item")
            stop = threading.Event()

            def hammer():
                n = 5000
                while not stop.is_set():
                    n += 1
                    db.insert_atom("item", {"n": n, "grp": 5})
                    time.sleep(0.0005)

            writer = threading.Thread(target=hammer)
            writer.start()
            try:
                for _ in range(40):
                    rows = conn.query("SELECT ALL FROM item WHERE grp = 1")
                    assert rows and all(m.atom["grp"] == 1 for m in rows)
                    cursor = conn.cursor("SELECT ALL FROM item WHERE "
                                         "grp = 2", fetch_size=4)
                    for _ in range(4):
                        molecule = cursor.next()
                        assert molecule is None or \
                            molecule.atom["grp"] == 2
                    cursor.close()
            finally:
                stop.set()
                writer.join()
            # The pushes were skimmed, not lost and not spliced.
            assert conn.notifications(timeout=0.5)
        finally:
            daemon.stop()


# ---------------------------------------------------------------------------
# Transport parity and fan-out
# ---------------------------------------------------------------------------

def _payload(frame):
    return (frame.types, frame.catalog_changed, frame.molecules)


class TestParity:
    def test_in_process_and_daemon_payloads_identical(self, db):
        manager = SessionManager(db)
        daemon = PrimaDaemon(manager)
        daemon.start()
        try:
            local = repro.connect(manager)
            remote = daemon.connect()
            local.subscribe("SELECT ALL FROM item")
            remote.subscribe("SELECT ALL FROM item")
            db.insert_atom("item", {"n": 990, "grp": 2})
            local_frames = drain(local)
            remote_frames = drain(remote)
            assert len(local_frames) == len(remote_frames) == 1
            assert _payload(local_frames[0]) == _payload(remote_frames[0])
            assert local_frames[0].epoch == remote_frames[0].epoch
            local.close()
            remote.close()
        finally:
            daemon.stop()

    def test_32_subscribers_receive_identical_payloads(self, db):
        manager = SessionManager(db, max_sessions=40)
        daemon = PrimaDaemon(manager)
        daemon.start()
        conns = []
        try:
            for _ in range(32):
                conn = daemon.connect()
                conn.subscribe("SELECT ALL FROM item")
                conns.append(conn)
            db.insert_atom("item", {"n": 991, "grp": 0})
            payloads = []
            for conn in conns:
                frames = drain(conn, timeout=5.0)
                assert len(frames) == 1
                payloads.append(_payload(frames[0]) + (frames[0].epoch,))
            assert len(set(payloads)) == 1
        finally:
            for conn in conns:
                conn.close()
            daemon.stop()


# ---------------------------------------------------------------------------
# The async client
# ---------------------------------------------------------------------------

class TestAsyncClient:
    def test_subscribe_and_await_notification(self, db):
        manager = SessionManager(db)
        daemon = PrimaDaemon(manager)
        daemon.start()

        async def scenario():
            host, port = daemon.address
            client = await open_client(host, port)
            seen = []
            client.on_notify = seen.append
            reply = await client.subscribe("SELECT ALL FROM item")
            assert isinstance(reply, protocol.SubscribeReply)
            assert reply.types == ("item",)
            db.insert_atom("item", {"n": 980, "grp": 1})
            frame = await client.next_notification(timeout=5.0)
            assert frame.subscription_id == reply.subscription_id
            assert seen == [frame]
            await client.unsubscribe(reply.subscription_id)
            await client.goodbye()
            await client.close()

        try:
            asyncio.run(scenario())
        finally:
            daemon.stop()

    def test_async_iterator_streams_notifications(self, db):
        manager = SessionManager(db)
        daemon = PrimaDaemon(manager)
        daemon.start()

        async def scenario():
            host, port = daemon.address
            client = await open_client(host, port)
            await client.subscribe("SELECT ALL FROM item")
            db.insert_atom("item", {"n": 981, "grp": 1})
            db.insert_atom("item", {"n": 982, "grp": 1})
            frames = []
            async for frame in client.notifications():
                frames.append(frame)
                if len(frames) == 2:
                    break
            assert all(f.types == ("item",) for f in frames)
            assert frames[0].epoch < frames[1].epoch
            await client.close()

        try:
            asyncio.run(asyncio.wait_for(scenario(), timeout=10.0))
        finally:
            daemon.stop()


# ---------------------------------------------------------------------------
# Cluster subscriptions
# ---------------------------------------------------------------------------

class TestCluster:
    def test_any_shard_commit_fires(self):
        with ShardedCluster(shards=3) as cluster:
            cluster.execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, "
                            "n: INTEGER, grp: INTEGER) KEYS_ARE (n)")
            conn = repro.connect(cluster)
            sub = conn.subscribe("SELECT ALL FROM item")
            assert sub.types == ("item",)
            # Hit several shards: strided keys land on different engines.
            for n in (1, 2, 3, 4, 5):
                cluster.execute(f"INSERT item (n = {n}, grp = 0)")
            frames = drain(conn, want=5)
            assert len(frames) == 5
            assert all(f.types == ("item",) for f in frames)
            conn.close()

    def test_cluster_unrelated_commit_skips(self):
        with ShardedCluster(shards=2) as cluster:
            cluster.execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, "
                            "n: INTEGER) KEYS_ARE (n)")
            cluster.execute("CREATE ATOM_TYPE other (other_id: IDENTIFIER, "
                            "k: INTEGER) KEYS_ARE (k)")
            conn = repro.connect(cluster)
            conn.subscribe("SELECT ALL FROM item")
            before = cluster.access.counters.snapshot()
            cluster.execute("INSERT other (k = 1)")
            after = cluster.access.counters.snapshot()
            assert after.get("invalidations_skipped", 0) > \
                before.get("invalidations_skipped", 0)
            assert conn.notifications(timeout=0.2) == []
            conn.close()
