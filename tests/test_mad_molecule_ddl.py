"""Tests: molecule object helpers and DDL structure rendering."""

import pytest

from repro import Prima
from repro.mad.ddl import structure_to_from_clause
from repro.workloads import brep


class TestStructureRendering:
    @pytest.fixture(scope="class")
    def validator(self):
        db = Prima()
        brep.install_schema(db)
        db.query("SELECT ALL FROM solid")
        return db.data.validator

    def _roundtrip(self, validator, from_text: str) -> str:
        from repro.mql.parser import parse
        statement = parse(f"SELECT ALL FROM {from_text}")
        structure = validator.resolve_structure(statement.from_clause)
        rendered = structure_to_from_clause(structure)
        # re-parse and re-resolve: same shape
        statement2 = parse(f"SELECT ALL FROM {rendered}")
        structure2 = validator.resolve_structure(statement2.from_clause)
        assert [n.atom_type for n in structure.walk()] == \
            [n.atom_type for n in structure2.walk()]
        return rendered

    def test_linear_chain(self, validator):
        rendered = self._roundtrip(validator, "brep-face-edge-point")
        assert rendered == "brep.faces-face.border-edge.boundary-point"

    def test_recursive(self, validator):
        rendered = self._roundtrip(validator, "solid.sub-solid (RECURSIVE)")
        assert "RECURSIVE" in rendered

    def test_branching(self, validator):
        rendered = self._roundtrip(validator, "brep-edge (face, point)")
        assert rendered.startswith("brep.edges-edge (")


class TestMoleculeHelpers:
    @pytest.fixture(scope="class")
    def molecule(self):
        handles = brep.generate(Prima(), n_solids=2)
        return handles.db.query(
            "SELECT ALL FROM brep-face-edge WHERE brep_no = 1713")[0]

    def test_depth(self, molecule):
        assert molecule.depth() == 3

    def test_atoms_preorder(self, molecule):
        labels = [label for label, _atom in molecule.atoms()]
        assert labels[0] == "brep"
        assert labels.count("face") == 6
        assert labels.count("edge") == 24    # shared edges appear twice

    def test_atom_count_distinct(self, molecule):
        assert molecule.atom_count() == 1 + 6 + 12

    def test_to_dict_nests(self, molecule):
        data = molecule.to_dict()
        assert len(data["<face>"]) == 6
        assert len(data["<face>"][0]["<edge>"]) == 4

    def test_repr(self, molecule):
        assert "Molecule(brep" in repr(molecule)
        assert "face" in repr(molecule)
