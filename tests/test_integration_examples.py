"""Integration: every shipped example runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(example):
    completed = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True, text=True, timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()
