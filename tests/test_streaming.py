"""Tests: the streaming operator pipeline and the lazy ResultSet cursor.

Covers the Volcano-style execution path end to end — early termination
via LIMIT/OFFSET (verified through ``access.counters``), first-molecule
delivery before the root scan is exhausted, operator-tree explain output
for every root-access kind, partitioned construction workers in the
parallel subsystem — plus the tightest-bound regression of ``_range_for``.
"""

import pytest

from repro import Prima
from repro.data.executor import _range_for
from repro.data.operators import (
    Limit,
    MoleculeConstruct,
    Offset,
    Project,
    RootPartition,
    RootScan,
)
from repro.errors import ValidationError
from repro.mql.parser import parse
from repro.parallel import parallel_select, partition_units
from repro.parallel.decompose import SemanticDecomposer, UnitOfWork
from repro.mad.types import Surrogate


N_PARTS = 40


@pytest.fixture()
def db():
    database = Prima()
    database.execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, "
                     "n: INTEGER, grp: INTEGER) KEYS_ARE (n)")
    for value in range(N_PARTS):
        database.insert_atom("part", {"n": value, "grp": value % 4})
    return database


# ---------------------------------------------------------------------------
# _range_for: tightest-bound combination (regression)
# ---------------------------------------------------------------------------

class TestRangeFor:
    def test_last_term_no_longer_wins_on_lower_bounds(self):
        condition = _range_for([("x", ">", 5), ("x", ">", 3)], "x")
        assert condition.start == 5 and not condition.include_start

    def test_max_of_starts(self):
        condition = _range_for([("x", ">", 3), ("x", ">", 5)], "x")
        assert condition.start == 5 and not condition.include_start

    def test_min_of_stops(self):
        condition = _range_for([("x", "<", 9), ("x", "<", 7)], "x")
        assert condition.stop == 7 and not condition.include_stop

    def test_exclusive_wins_at_equal_value(self):
        condition = _range_for([("x", ">=", 5), ("x", ">", 5)], "x")
        assert condition.start == 5 and not condition.include_start
        condition = _range_for([("x", "<", 5), ("x", "<=", 5)], "x")
        assert condition.stop == 5 and not condition.include_stop

    def test_inclusive_kept_when_looser_side_comes_later(self):
        condition = _range_for([("x", ">", 5), ("x", ">=", 3)], "x")
        assert condition.start == 5 and not condition.include_start

    def test_equality_short_circuits(self):
        condition = _range_for([("x", ">", 3), ("x", "=", 4)], "x")
        assert condition.start == 4 and condition.stop == 4

    def test_end_to_end_over_access_path(self, db):
        db.execute_ldl("CREATE ACCESS PATH pn ON part (n)")
        result = db.query("SELECT ALL FROM part WHERE n > 3 AND n > 5")
        values = sorted(m.atom["n"] for m in result)
        assert values == list(range(6, N_PARTS))


# ---------------------------------------------------------------------------
# LIMIT / OFFSET through the grammar and the pipeline
# ---------------------------------------------------------------------------

class TestLimitOffset:
    def test_parse_limit_offset(self):
        statement = parse("SELECT ALL FROM part LIMIT 5 OFFSET 2")
        assert statement.limit == 5 and statement.offset == 2

    def test_parse_limit_only(self):
        statement = parse("SELECT ALL FROM part LIMIT 7")
        assert statement.limit == 7 and statement.offset == 0

    def test_no_limit_defaults(self):
        statement = parse("SELECT ALL FROM part")
        assert statement.limit is None and statement.offset == 0

    def test_limit_delivers_k(self, db):
        result = db.query("SELECT ALL FROM part LIMIT 5")
        assert len(result) == 5

    def test_limit_zero_is_empty(self, db):
        assert len(db.query("SELECT ALL FROM part LIMIT 0")) == 0

    def test_offset_skips(self, db):
        everything = [m.atom["n"] for m in
                      db.query("SELECT ALL FROM part ORDER BY n")]
        window = [m.atom["n"] for m in
                  db.query("SELECT ALL FROM part ORDER BY n "
                           "LIMIT 4 OFFSET 3")]
        assert window == everything[3:7]

    def test_limit_constructs_at_most_k_molecules(self, db):
        """The acceptance criterion: LIMIT k stops construction at k."""
        db.reset_accounting()
        result = db.query("SELECT ALL FROM part LIMIT 3")
        result.materialize()
        constructed = db.io_report().get("molecules_from_traversal", 0)
        assert constructed == 3

    def test_limit_fetches_less_than_full_scan(self, db):
        db.reset_accounting()
        db.query("SELECT ALL FROM part LIMIT 3").materialize()
        limited = db.io_report()
        db.reset_accounting()
        db.query("SELECT ALL FROM part").materialize()
        full = db.io_report()
        assert limited.get("atoms_read", 0) < full.get("atoms_read", 0)
        assert limited.get("molecules_from_traversal", 0) < \
            full.get("molecules_from_traversal", 0)
        assert full.get("molecules_from_traversal", 0) == N_PARTS

    def test_limit_with_residual_filter(self, db):
        result = db.query("SELECT ALL FROM part "
                          "WHERE EXISTS part: part.grp = 0 LIMIT 2")
        molecules = result.materialize()
        assert len(molecules) == 2
        assert all(m.atom["grp"] == 0 for m in molecules)

    def test_negative_limit_rejected(self, db):
        # the grammar only produces non-negative INTs; drive the
        # validation path directly through the AST
        statement = parse("SELECT ALL FROM part LIMIT 1")
        statement.limit = -1
        with pytest.raises(ValidationError):
            db.data.plan_select(statement)


# ---------------------------------------------------------------------------
# Lazy cursor semantics
# ---------------------------------------------------------------------------

class TestLazyResultSet:
    def test_first_molecule_before_scan_exhausted(self, db):
        db.reset_accounting()
        result = db.query("SELECT ALL FROM part")
        first = next(iter(result))
        assert first is not None
        assert not result.exhausted
        # far fewer atom reads than a full materialisation would need
        assert db.io_report().get("atoms_read", 0) < N_PARTS
        assert db.io_report().get("molecules_from_traversal", 0) == 1

    def test_indexing_materialises_on_demand(self, db):
        db.reset_accounting()
        result = db.query("SELECT ALL FROM part")
        result[2]
        assert db.io_report().get("molecules_from_traversal", 0) == 3
        assert not result.exhausted

    def test_len_materialises_fully(self, db):
        result = db.query("SELECT ALL FROM part")
        assert len(result) == N_PARTS
        assert result.exhausted

    def test_reiteration_is_stable(self, db):
        result = db.query("SELECT ALL FROM part")
        first_pass = [m.atom["n"] for m in result]
        second_pass = [m.atom["n"] for m in result]
        assert first_pass == second_pass and len(first_pass) == N_PARTS

    def test_fetch_next_protocol(self, db):
        result = db.query("SELECT ALL FROM part LIMIT 2")
        assert result.fetch_next() is not None
        assert result.fetch_next() is not None
        assert result.fetch_next() is None
        assert result.exhausted

    def test_fetch_next_works_on_eager_sets(self, db):
        """The one-molecule-at-a-time interface also serves eagerly
        constructed sets (DML outcomes, parallel results)."""
        outcome = parallel_select(db, "SELECT ALL FROM part LIMIT 2")
        first = outcome.result.fetch_next()
        second = outcome.result.fetch_next()
        assert first is not None and second is not None
        assert outcome.result.fetch_next() is None

    def test_close_abandons_pipeline(self, db):
        from repro.errors import CursorStateError
        db.reset_accounting()
        result = db.query("SELECT ALL FROM part")
        result.fetch_next()
        result.close()
        assert result.exhausted
        assert result.truncated
        # The truncated prefix streams, but must not pose as the set.
        with pytest.raises(CursorStateError):
            len(result)
        # one fetched + close()'s single pending-work probe
        assert db.io_report().get("molecules_from_traversal", 0) == 2

    def test_sort_is_a_pipeline_breaker(self, db):
        """ORDER BY without index support must construct everything
        before the first delivery."""
        db.reset_accounting()
        result = db.query("SELECT ALL FROM part ORDER BY n DESC")
        next(iter(result))
        assert db.io_report().get("molecules_from_traversal", 0) == N_PARTS

    def test_dml_results_stay_eager(self, db):
        outcome = db.execute("DELETE ALL FROM part WHERE n = 3")
        assert outcome.affected == 1
        assert len(db.query("SELECT ALL FROM part")) == N_PARTS - 1

    def test_script_select_drained_before_later_dml(self, db):
        """A SELECT in a script reflects the state *before* the script's
        later DML statements."""
        results = db.execute_script(
            "SELECT ALL FROM part WHERE n = 1; "
            "MODIFY part SET n = 999 FROM part WHERE n = 1"
        )
        assert len(results[0]) == 1
        assert results[1].affected == 1

    def test_closed_operator_stays_closed(self, db):
        from repro.mql.parser import parse as parse_mql
        plan = db.data.plan_select(parse_mql("SELECT ALL FROM part"))
        pipeline = plan.compile(db.data)
        assert pipeline.next() is not None
        pipeline.close()
        assert pipeline.next() is None   # no silent re-execution
        assert pipeline.rows_out == 1


# ---------------------------------------------------------------------------
# explain(): the operator tree per root-access kind
# ---------------------------------------------------------------------------

class TestExplainTree:
    def _tree(self, plan: str) -> str:
        assert "pipeline:" in plan
        return plan.split("pipeline:")[1]

    def test_key_lookup_tree(self, db):
        plan = db.explain("SELECT ALL FROM part WHERE n = 3")
        tree = self._tree(plan)
        assert "RootScan (KEY LOOKUP part" in tree
        assert "MoleculeConstruct" in tree and "Project (ALL)" in tree

    def test_atom_type_scan_tree(self, db):
        plan = db.explain("SELECT ALL FROM part WHERE n > 1")
        tree = self._tree(plan)
        assert "RootScan (ATOM TYPE SCAN part" in tree
        assert "ResidualFilter" in tree

    def test_access_path_tree(self, db):
        db.execute_ldl("CREATE ACCESS PATH pn ON part (n)")
        plan = db.explain("SELECT ALL FROM part WHERE n > 1 AND n < 4")
        assert "RootScan (ACCESS PATH SCAN pn" in self._tree(plan)

    def test_sort_scan_tree_skips_sort_operator(self, db):
        db.execute_ldl("CREATE SORT ORDER by_n ON part (n)")
        plan = db.explain("SELECT ALL FROM part ORDER BY n")
        tree = self._tree(plan)
        assert "RootScan (SORT SCAN by_n" in tree
        assert "Sort (" not in tree     # order served by the access

    def test_explicit_sort_without_limit_in_tree(self, db):
        plan = db.explain("SELECT ALL FROM part ORDER BY n DESC")
        tree = self._tree(plan)
        assert "Sort (n DESC — pipeline breaker)" in tree
        assert "TopK" not in tree
        assert tree.index("Sort") < tree.index("RootScan")

    def test_sort_window_fuses_into_topk(self, db):
        """ORDER BY + LIMIT compiles the Sort/Offset/Limit stack into one
        bounded-heap TopK operator."""
        plan = db.explain("SELECT ALL FROM part ORDER BY n DESC "
                          "LIMIT 3 OFFSET 1")
        tree = self._tree(plan)
        assert "TopK (k=3, offset=1; n DESC — bounded heap)" in tree
        assert "Sort (" not in tree
        assert "Limit (" not in tree and "Offset (" not in tree
        assert tree.index("TopK") < tree.index("MoleculeConstruct") < \
            tree.index("RootScan")

    def test_compiled_tree_matches_description(self, db):
        statement = parse("SELECT ALL FROM part WHERE grp = 1 "
                          "ORDER BY n DESC LIMIT 2")
        plan = db.data.plan_select(statement)
        pipeline = plan.compile(db.data)
        names = [line.strip().split(" (")[0]
                 for line in pipeline.render_tree()]
        assert names == [name for name, _detail
                         in plan.operator_descriptions()]


# ---------------------------------------------------------------------------
# operator/scan row counters
# ---------------------------------------------------------------------------

class TestRowCounters:
    def test_operator_rows_counted(self, db):
        db.reset_accounting()
        db.query("SELECT ALL FROM part LIMIT 4").materialize()
        report = db.io_report()
        assert report.get("operator_rows:Limit") == 4
        assert report.get("operator_rows:Project") == 4
        assert report.get("operator_rows:MoleculeConstruct") == 4
        assert report.get("operator_rows:RootScan") == 4

    def test_scan_rows_counted(self, db):
        db.reset_accounting()
        db.query("SELECT ALL FROM part").materialize()
        report = db.io_report()
        assert report.get("scan_rows:AtomTypeScan") == N_PARTS
        assert report.get("scan_rows_delivered") == N_PARTS
        assert report.get("scans_opened") == 1


# ---------------------------------------------------------------------------
# partitioned construction workers (repro.parallel on the operator layer)
# ---------------------------------------------------------------------------

class TestPartitionedConstruction:
    def test_partition_units_round_robin(self):
        units = [UnitOfWork(index=i, root=Surrogate("t", i))
                 for i in range(7)]
        parts = partition_units(units, 3)
        assert [len(p) for p in parts] == [3, 2, 2]
        assert sorted(u.index for p in parts for u in p) == list(range(7))

    def test_partition_count_clamped_to_nonempty(self):
        units = [UnitOfWork(index=0, root=Surrogate("t", 0))]
        assert len(partition_units(units, 4)) == 1

    def test_partitioned_result_equals_serial(self, db):
        serial = db.query("SELECT ALL FROM part WHERE grp = 1")
        outcome = parallel_select(db, "SELECT ALL FROM part WHERE grp = 1",
                                  processors=4, partitions=3)
        assert [m.to_dict() for m in outcome.result] == \
            [m.to_dict() for m in serial]

    def test_order_and_window_equal_serial(self, db):
        """The parallel path applies Sort/Offset/Limit like the serial
        pipeline above the construction workers."""
        mql = "SELECT ALL FROM part ORDER BY n DESC LIMIT 4 OFFSET 2"
        serial = db.query(mql)
        outcome = parallel_select(db, mql, processors=4, partitions=3)
        assert [m.to_dict() for m in outcome.result] == \
            [m.to_dict() for m in serial]
        assert len(outcome.result) == 4

    def test_order_by_projected_away_attribute(self, db):
        """The final sort uses pre-projection values even when the sort
        attribute is projected away."""
        mql = "SELECT grp FROM part ORDER BY n DESC LIMIT 3"
        serial = db.query(mql)
        outcome = parallel_select(db, mql, processors=2)
        assert [m.to_dict() for m in outcome.result] == \
            [m.to_dict() for m in serial]

    def test_roots_come_from_root_scan_operator(self, db):
        decomposer = SemanticDecomposer(db.data)
        plan, units = decomposer.decompose_select("SELECT ALL FROM part")
        assert len(units) == N_PARTS
        scan = RootScan(db.data, plan.root_access)
        assert [u.root for u in units] == list(scan)

    def test_manual_worker_pipeline(self, db):
        """A RootPartition-fed construction pipeline is a first-class
        operator tree."""
        plan = db.data.plan_select(parse("SELECT ALL FROM part"))
        roots = list(RootScan(db.data, plan.root_access))[:5]
        pipeline = Project(
            Limit(Offset(MoleculeConstruct(RootPartition(roots), db.data,
                                           plan.structure), 1), 3),
            db.data, plan.projection, plan.structure)
        molecules = list(pipeline)
        assert [m.atom["n"] for m in molecules] == \
            [db.access.get(r)["n"] for r in roots[1:4]]
