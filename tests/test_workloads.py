"""Tests: the three workload generators (BREP / VLSI / GIS)."""

from repro.workloads import brep, gis, vlsi


class TestBrep:
    def test_counts(self, brep_db):
        counts = brep_db.counts()
        n = counts["brep"]
        assert counts["face"] == 6 * n
        assert counts["edge"] == 12 * n
        assert counts["point"] == 8 * n
        assert counts["solid"] > n        # assembly composites exist

    def test_table_2_1_seeds_planted(self, brep_db):
        db = brep_db.db
        assert db.access.atoms.find_by_key("brep", 1713) is not None
        seed = db.access.atoms.find_by_key("solid", 4711)
        assert seed is not None
        assert db.access.get(seed)["sub"]          # it is an assembly

    def test_box_topology(self, brep_db):
        db = brep_db.db
        brep_atom = db.access.get(brep_db.breps[0])
        assert len(brep_atom["faces"]) == 6
        assert len(brep_atom["edges"]) == 12
        assert len(brep_atom["points"]) == 8
        for face in brep_atom["faces"]:
            values = db.access.get(face)
            assert len(values["border"]) == 4
            assert len(values["crosspoint"]) == 4
        for edge in brep_atom["edges"]:
            values = db.access.get(edge)
            assert len(values["boundary"]) == 2
            assert len(values["face"]) == 2
        for point in brep_atom["points"]:
            values = db.access.get(point)
            assert len(values["line"]) == 3
            assert len(values["face"]) == 3

    def test_full_integrity(self, brep_db):
        assert brep_db.db.verify_integrity() == []

    def test_molecule_types_defined(self, brep_db):
        names = brep_db.db.catalog.names()
        assert names == ["brep_obj", "edge_obj", "face_obj", "piece_list"]

    def test_deterministic(self):
        from repro import Prima
        first = brep.generate(Prima(), n_solids=2, seed=7)
        second = brep.generate(Prima(), n_solids=2, seed=7)
        a = first.db.access.get(first.faces[0])["square_dim"]
        b = second.db.access.get(second.faces[0])["square_dim"]
        assert a == b


class TestVlsi:
    def test_counts(self, vlsi_db):
        counts = vlsi_db.counts()
        assert counts["pin"] == 12 * 3
        assert counts["net"] <= 8
        assert counts["cell"] > 12     # composites on top

    def test_nets_respect_cardinality(self, vlsi_db):
        db = vlsi_db.db
        for net in vlsi_db.nets:
            pins = db.access.get(net)["pins"]
            assert 2 <= len(pins) <= 5

    def test_pin_belongs_to_one_net_max(self, vlsi_db):
        db = vlsi_db.db
        for pin in vlsi_db.pins:
            net = db.access.get(pin)["net"]
            assert net is None or net.atom_type == "net"

    def test_hierarchy_reaches_top(self, vlsi_db):
        top = vlsi.top_cell_no(vlsi_db)
        assert top is not None
        result = vlsi_db.db.query(
            f"SELECT ALL FROM cell_explosion "
            f"WHERE cell_explosion (0).cell_no = {top}")
        assert result[0].atom_count() == len(vlsi_db.cells)

    def test_integrity(self, vlsi_db):
        assert vlsi_db.db.verify_integrity() == []


class TestGis:
    def test_counts_for_grid(self, gis_db):
        counts = gis_db.counts()
        rows = cols = 3
        assert counts["region"] == rows * cols
        assert counts["node"] == (rows + 1) * (cols + 1)
        assert counts["line"] == rows * (cols + 1) + cols * (rows + 1)
        assert counts["map"] == 2

    def test_interior_lines_shared(self, gis_db):
        db = gis_db.db
        shared = 0
        for line in gis_db.lines:
            regions = db.access.get(line)["regions"]
            assert 1 <= len(regions) <= 2
            if len(regions) == 2:
                shared += 1
        # 3x3 grid: 12 interior lines
        assert shared == 12

    def test_interior_nodes_join_four_lines(self, gis_db):
        db = gis_db.db
        degree = {}
        for node in gis_db.nodes:
            values = db.access.get(node)
            degree[(values["x"], values["y"])] = len(values["lines"])
        assert degree[(1.0, 1.0)] == 4     # interior
        assert degree[(0.0, 0.0)] == 2     # corner

    def test_sheets_overlap(self, gis_db):
        db = gis_db.db
        on_both = [
            region for region in gis_db.regions
            if len(db.access.get(region)["maps"]) == 2
        ]
        assert on_both        # the border column belongs to both sheets

    def test_integrity(self, gis_db):
        assert gis_db.db.verify_integrity() == []
