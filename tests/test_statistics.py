"""Tests: meta-data statistics and the selectivity-based optimizer."""

import pytest

from repro import Prima
from repro.data.statistics import AttributeStatistics
from repro.workloads import brep


@pytest.fixture
def db() -> Prima:
    database = Prima()
    database.execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, "
                     "x: INTEGER, tag: CHAR_VAR)")
    database.query("SELECT ALL FROM part")
    for value in range(100):
        database.insert_atom("part", {"x": value, "tag": f"t{value % 4}"})
    return database


class TestCollection:
    def test_analyze_counts_atoms(self, db):
        assert db.analyze("part") == 100
        stats = db.data.statistics.type_statistics("part")
        assert stats.cardinality == 100

    def test_attribute_distribution(self, db):
        db.analyze("part")
        stats = db.data.statistics.type_statistics("part")
        x = stats.attributes["x"]
        assert (x.minimum, x.maximum) == (0, 99)
        assert x.distinct == 100
        tag = stats.attributes["tag"]
        assert tag.distinct == 4

    def test_nulls_counted(self, db):
        db.insert_atom("part", {"x": None, "tag": None})
        db.analyze("part")
        stats = db.data.statistics.type_statistics("part")
        assert stats.attributes["x"].nulls == 1

    def test_analyze_all_types(self):
        handles = brep.generate(Prima(), n_solids=2)
        examined = handles.db.analyze()
        counts = handles.counts()
        assert examined == sum(counts.values())

    def test_fanout_measured(self):
        handles = brep.generate(Prima(), n_solids=2)
        handles.db.analyze()
        stats = handles.db.data.statistics.type_statistics("brep")
        assert stats.fanout["faces"] == 6.0
        assert stats.fanout["edges"] == 12.0
        face_stats = handles.db.data.statistics.type_statistics("face")
        assert face_stats.fanout["border"] == 4.0

    def test_molecule_size_estimate(self):
        handles = brep.generate(Prima(), n_solids=2)
        handles.db.analyze()
        plan = handles.db.data.plan_select(
            __import__("repro.mql.parser", fromlist=["parse"]).parse(
                "SELECT ALL FROM brep-face-edge-point"))
        estimate = handles.db.data.statistics.estimated_molecule_size(
            plan.structure)
        # actual molecule: 1 + 6 + 24 (edge occurrences) + 48 (points)
        assert 50 <= estimate <= 120


class TestSelectivityEstimates:
    def test_equality_uses_distinct(self):
        column = AttributeStatistics(count=100, distinct=4)
        assert column.selectivity("=", "t1") == 0.25
        assert column.selectivity("!=", "t1") == 0.75

    def test_range_interpolates(self):
        column = AttributeStatistics(count=100, minimum=0, maximum=100,
                                     distinct=100)
        assert column.selectivity("<", 25) == pytest.approx(0.25)
        assert column.selectivity(">", 25) == pytest.approx(0.75)
        assert column.selectivity("<", 200) == 1.0

    def test_non_numeric_default(self):
        column = AttributeStatistics(count=10, minimum="a", maximum="z",
                                     distinct=10)
        assert column.selectivity("<", "m") == pytest.approx(1 / 3)

    def test_empty_type(self):
        assert AttributeStatistics().selectivity("=", 1) == 0.0


class TestOptimizerIntegration:
    def test_selective_predicate_keeps_access_path(self, db):
        db.execute_ldl("CREATE ACCESS PATH px ON part (x)")
        db.analyze("part")
        plan = db.explain("SELECT ALL FROM part WHERE x < 5")
        assert "ACCESS PATH SCAN px" in plan

    def test_unselective_predicate_vetoed_to_scan(self, db):
        db.execute_ldl("CREATE ACCESS PATH px ON part (x)")
        db.analyze("part")
        plan = db.explain("SELECT ALL FROM part WHERE x < 90")
        assert "ATOM TYPE SCAN part" in plan

    def test_without_statistics_path_always_used(self, db):
        db.execute_ldl("CREATE ACCESS PATH px ON part (x)")
        plan = db.explain("SELECT ALL FROM part WHERE x < 90")
        assert "ACCESS PATH SCAN px" in plan

    def test_results_identical_either_way(self, db):
        db.execute_ldl("CREATE ACCESS PATH px ON part (x)")
        before = {m.atom["x"] for m in
                  db.query("SELECT ALL FROM part WHERE x < 90")}
        db.analyze("part")
        after = {m.atom["x"] for m in
                 db.query("SELECT ALL FROM part WHERE x < 90")}
        assert before == after and len(after) == 90

    def test_threshold_configurable(self, db):
        db.execute_ldl("CREATE ACCESS PATH px ON part (x)")
        db.analyze("part")
        db.data.scan_threshold = 0.99
        plan = db.explain("SELECT ALL FROM part WHERE x < 90")
        assert "ACCESS PATH SCAN px" in plan


class TestMostCommonValues:
    @pytest.fixture
    def skewed(self) -> Prima:
        database = Prima()
        database.execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, "
                         "x: INTEGER, tag: CHAR_VAR)")
        # 80 rows of one dominant tag + 20 distinct singletons.
        for value in range(80):
            database.insert_atom("part", {"x": value, "tag": "hot"})
        for value in range(20):
            database.insert_atom("part", {"x": 80 + value,
                                          "tag": f"rare{value}"})
        return database

    def test_mcvs_collected_for_skewed_column(self, skewed):
        skewed.analyze("part")
        stats = skewed.data.statistics.type_statistics("part")
        tag = stats.attributes["tag"]
        assert tag.most_common == {"'hot'": 80}
        assert tag.distinct == 21

    def test_uniform_column_keeps_no_mcvs(self, db):
        db.analyze("part")
        stats = db.data.statistics.type_statistics("part")
        assert stats.attributes["x"].most_common == {}
        # ... so equality stays at the classic 1/distinct.
        assert stats.attributes["x"].selectivity("=", 7) == \
            pytest.approx(1 / 100)

    def test_equality_is_value_aware(self, skewed):
        skewed.analyze("part")
        stats = skewed.data.statistics.type_statistics("part")
        tag = stats.attributes["tag"]
        assert tag.selectivity("=", "hot") == pytest.approx(0.80)
        # A non-MCV probe gets the residual mass spread over the
        # residual distinct values: 20 rows / 100 / 20 values.
        assert tag.selectivity("=", "rare3") == pytest.approx(0.01)
        assert tag.selectivity("!=", "hot") == pytest.approx(0.20)

    def test_bind_time_reveto_flips_on_equality(self, skewed):
        """The PR-10 satellite gate: a prepared equality probe on a
        dominant value demotes to the scan at bind time."""
        skewed.execute_ldl("CREATE ACCESS PATH ptag ON part (tag)")
        skewed.analyze("part")
        stmt = skewed.prepare("SELECT ALL FROM part WHERE tag = ?")
        before = skewed.access.counters.snapshot()
        hot = stmt.execute("hot")
        after = skewed.access.counters.snapshot()
        assert len(hot) == 80
        assert after.get("plans_revetoed", 0) == \
            before.get("plans_revetoed", 0) + 1
        # A rare value keeps the access path (no veto).
        rare = stmt.execute("rare3")
        final = skewed.access.counters.snapshot()
        assert len(rare) == 1
        assert final.get("plans_revetoed", 0) == \
            after.get("plans_revetoed", 0)
