"""Fault-injection tests: the page header's fault-tolerance role (3.3)."""

import pytest

from repro.errors import StorageError
from repro.storage.page import Page, PageId
from repro.storage.system import StorageSystem


@pytest.fixture
def flushed_storage():
    storage = StorageSystem(buffer_capacity=4 * 8192)
    storage.create_segment("data", 512)
    pid = storage.allocate_page("data")
    with storage.page(pid, write=True) as page:
        page.insert(b"precious payload")
    storage.flush()
    # drop the clean frame so the next fix reads from disk
    buffer = storage.buffer
    frame = buffer._frames.pop(pid)  # noqa: SLF001
    buffer._used_bytes -= frame.page.size  # noqa: SLF001
    buffer.policy.on_evict(pid)
    return storage, pid


class TestChecksumVerification:
    def test_clean_block_reads_fine(self, flushed_storage):
        storage, pid = flushed_storage
        with storage.page(pid) as page:
            assert page.read(0) == b"precious payload"

    def test_flipped_bit_detected(self, flushed_storage):
        storage, pid = flushed_storage
        handle = storage.disk.file("data")
        image = bytearray(handle._blocks[pid.page_no])  # noqa: SLF001
        image[100] ^= 0xFF
        handle._blocks[pid.page_no] = bytes(image)  # noqa: SLF001
        with pytest.raises(StorageError) as err:
            storage.fix(pid)
        assert "checksum" in str(err.value)

    def test_swapped_blocks_detected(self, flushed_storage):
        """A block delivered under the wrong number (misdirected write)
        is caught by the page-number check."""
        storage, pid = flushed_storage
        other = storage.allocate_page("data")
        with storage.page(other, write=True) as page:
            page.insert(b"other page")
        storage.flush()
        buffer = storage.buffer
        frame = buffer._frames.pop(other)  # noqa: SLF001
        buffer._used_bytes -= frame.page.size  # noqa: SLF001
        buffer.policy.on_evict(other)
        handle = storage.disk.file("data")
        blocks = handle._blocks  # noqa: SLF001
        blocks[pid.page_no], blocks[other.page_no] = \
            blocks[other.page_no], blocks[pid.page_no]
        with pytest.raises(StorageError) as err:
            storage.fix(pid)
        assert "page number" in str(err.value)

    def test_corrupt_sequence_component_detected(self):
        storage = StorageSystem(buffer_capacity=4 * 8192)
        storage.create_segment("seq", 512)
        header = storage.sequences.create("seq")
        storage.sequences.write(header, bytes(range(256)) * 10)
        storage.flush()
        buffer = storage.buffer
        for pid in list(buffer._frames):  # noqa: SLF001
            frame = buffer._frames.pop(pid)  # noqa: SLF001
            buffer._used_bytes -= frame.page.size  # noqa: SLF001
            buffer.policy.on_evict(pid)
        component = storage.sequences.component_pages(header)[1]
        handle = storage.disk.file("seq")
        image = bytearray(handle._blocks[component.page_no])  # noqa: SLF001
        image[64] ^= 0x01
        handle._blocks[component.page_no] = bytes(image)  # noqa: SLF001
        with pytest.raises(StorageError) as err:
            storage.sequences.read(header)
        assert "checksum" in str(err.value)

    def test_corruption_in_buffer_is_not_flagged(self, flushed_storage):
        """Only disk reads verify: in-buffer modifications are legitimate
        (the checksum is refreshed at write-back)."""
        storage, pid = flushed_storage
        with storage.page(pid, write=True) as page:
            page.insert(b"legitimate change")
        with storage.page(pid) as page:
            assert len(page.slots()) == 2
