"""Tests: the 3D-CAD application layer (paper, section 4)."""

import pytest

from repro import Prima
from repro.al import CadWorkbench
from repro.errors import PrimaError


@pytest.fixture
def bench() -> CadWorkbench:
    return CadWorkbench(Prima())


@pytest.fixture
def small_assembly(bench):
    lid = bench.create_box((0, 0, 0), 2.0, description="lid")
    base = bench.create_box((0, 0, 2), 2.0, description="base")
    handle = bench.create_box((1, 1, -1), 1.0, description="handle")
    top = bench.assemble([lid, handle], description="top group")
    box = bench.assemble([top, base], description="box")
    return bench, lid, base, handle, top, box


class TestConstruction:
    def test_create_box_builds_full_brep(self, bench):
        bench.create_box((0, 0, 0), 3.0)
        stats = bench.statistics()
        assert stats == {"solid": 1, "brep": 1, "face": 6, "edge": 12,
                         "point": 8}
        assert bench.db.verify_integrity() == []

    def test_solid_numbers_unique(self, bench):
        first = bench.create_box((0, 0, 0), 1.0)
        second = bench.create_box((5, 5, 5), 1.0)
        assert first != second

    def test_size_validated(self, bench):
        with pytest.raises(PrimaError):
            bench.create_box((0, 0, 0), 0.0)

    def test_assembly_connects_parts(self, small_assembly):
        bench, lid, _base, handle, top, _box = small_assembly
        assert sorted(bench.where_used(lid)) == [top]
        assert bench.where_used(handle) == [top]

    def test_empty_assembly_rejected(self, bench):
        with pytest.raises(PrimaError):
            bench.assemble([])

    def test_unknown_part_rejected(self, bench):
        with pytest.raises(PrimaError):
            bench.assemble([999])

    def test_works_on_existing_database(self):
        from repro.workloads import brep
        handles = brep.generate(Prima(), n_solids=2)
        bench = CadWorkbench(handles.db)
        new_no = bench.create_box((50, 50, 50), 2.0)
        assert bench.db.access.atoms.find_by_key("solid", new_no) is not None


class TestRetrieval:
    def test_bill_of_materials(self, small_assembly):
        bench, lid, base, handle, top, box = small_assembly
        rows = bench.bill_of_materials(box)
        numbers = [no for no, _d, _depth in rows]
        assert numbers[0] == box
        assert set(numbers) == {lid, base, handle, top, box}
        depths = {no: depth for no, _d, depth in rows}
        assert depths[box] == 0 and depths[top] == 1 and depths[lid] == 2

    def test_primitive_parts(self, small_assembly):
        bench, lid, base, handle, _top, box = small_assembly
        assert set(bench.primitive_parts(box)) == {lid, base, handle}

    def test_bounding_hull(self, small_assembly):
        bench, _lid, _base, _handle, _top, box = small_assembly
        hull = bench.bounding_hull(box)
        assert hull == (0.0, 0.0, -1.0, 2.0, 2.0, 4.0)

    def test_bom_of_unknown_solid_empty(self, bench):
        bench.create_box((0, 0, 0), 1.0)
        assert bench.bill_of_materials(12345) == []


class TestUpdates:
    def test_translate_moves_geometry(self, small_assembly):
        bench, lid, *_rest, box = small_assembly
        before = bench.bounding_hull(box)
        moved = bench.translate(box, (10.0, 0.0, 0.0))
        assert moved == 24          # 3 boxes x 8 points
        after = bench.bounding_hull(box)
        assert after[0] == before[0] + 10.0
        assert after[3] == before[3] + 10.0
        assert bench.db.verify_integrity() == []

    def test_translate_single_primitive(self, bench):
        no = bench.create_box((0, 0, 0), 1.0)
        assert bench.translate(no, (0.0, 5.0, 0.0)) == 8
        assert bench.bounding_hull(no)[1] == 5.0

    def test_disassemble(self, small_assembly):
        bench, lid, _base, handle, top, _box = small_assembly
        released = bench.disassemble(top)
        assert released == 2
        assert bench.where_used(lid) == []
        assert bench.db.access.atoms.find_by_key("solid", top) is None
        assert bench.db.verify_integrity() == []

    def test_disassemble_primitive_rejected(self, bench):
        no = bench.create_box((0, 0, 0), 1.0)
        with pytest.raises(PrimaError):
            bench.disassemble(no)
