"""Unit tests: query validation, structure resolution, simplification."""

import pytest

from repro.data.simplification import conjuncts, sargable_root_terms, simplify
from repro.data.validation import MoleculeTypeCatalog, Validator
from repro.errors import ValidationError
from repro.mad.molecule import MoleculeType
from repro.mql.ast import (
    And,
    Comparison,
    Literal,
    Not,
    Or,
    Path,
    Quantified,
)
from repro.mql.parser import parse


@pytest.fixture
def brep_validator(brep_db):
    data = brep_db.db.data
    return data.validator, data


class TestStructureResolution:
    def test_linear_chain(self, brep_validator):
        validator, _data = brep_validator
        statement = parse("SELECT ALL FROM brep-face-edge-point")
        structure = validator.resolve_structure(statement.from_clause)
        assert structure.labels() == ["brep", "face", "edge", "point"]
        assert structure.children[0].via.source_attr == "faces"

    def test_branching(self, brep_validator):
        validator, _data = brep_validator
        statement = parse("SELECT ALL FROM brep-edge (face, point)")
        structure = validator.resolve_structure(statement.from_clause)
        edge = structure.children[0]
        assert {child.label for child in edge.children} == {"face", "point"}

    def test_duplicate_types_get_numbered_labels(self, brep_validator):
        validator, _data = brep_validator
        statement = parse("SELECT ALL FROM edge (point, face-point)")
        structure = validator.resolve_structure(statement.from_clause)
        labels = structure.labels()
        assert "point" in labels and "point_2" in labels

    def test_molecule_type_resolution_keeps_name_as_root_label(
            self, brep_validator):
        validator, _data = brep_validator
        statement = parse("SELECT ALL FROM piece_list")
        structure = validator.resolve_structure(statement.from_clause)
        assert structure.label == "piece_list"
        assert structure.atom_type == "solid"
        assert structure.children[0].recursive

    def test_molecule_type_grafted_inline(self, brep_validator):
        validator, _data = brep_validator
        statement = parse("SELECT ALL FROM brep-face_obj")
        structure = validator.resolve_structure(statement.from_clause)
        assert structure.atom_type == "brep"
        assert structure.children[0].atom_type == "face"
        assert structure.children[0].children[0].atom_type == "edge"

    def test_unknown_name_rejected(self, brep_validator):
        validator, _data = brep_validator
        statement = parse("SELECT ALL FROM nonsense")
        with pytest.raises(ValidationError):
            validator.resolve_structure(statement.from_clause)

    def test_no_association_rejected(self, brep_validator):
        validator, _data = brep_validator
        statement = parse("SELECT ALL FROM solid-point")
        with pytest.raises(ValidationError):
            validator.resolve_structure(statement.from_clause)

    def test_ambiguous_association_needs_attr(self, brep_validator):
        validator, _data = brep_validator
        # solid-solid is ambiguous (sub and super)
        statement = parse("SELECT ALL FROM solid-solid")
        with pytest.raises(ValidationError) as err:
            validator.resolve_structure(statement.from_clause)
        assert "sub" in str(err.value) and "super" in str(err.value)

    def test_explicit_attr_resolves_ambiguity(self, brep_validator):
        validator, _data = brep_validator
        statement = parse("SELECT ALL FROM solid.super-solid")
        structure = validator.resolve_structure(statement.from_clause)
        assert structure.children[0].via.source_attr == "super"

    def test_wrong_attr_target_rejected(self, brep_validator):
        validator, _data = brep_validator
        statement = parse("SELECT ALL FROM brep.faces-point")
        with pytest.raises(ValidationError):
            validator.resolve_structure(statement.from_clause)

    def test_recursion_must_be_self_association(self, brep_validator):
        validator, _data = brep_validator
        statement = parse("SELECT ALL FROM brep-face (RECURSIVE)")
        with pytest.raises(ValidationError):
            validator.resolve_structure(statement.from_clause)

    def test_root_recursion_rejected(self, brep_validator):
        validator, _data = brep_validator
        from repro.mql.ast import FromNode
        with pytest.raises(ValidationError):
            validator.resolve_structure(FromNode("solid", recursive=True))


class TestPathValidation:
    def _check(self, validator, text):
        statement = parse(text)
        structure = validator.resolve_structure(statement.from_clause)
        validator.check_select(statement, structure)
        return structure

    def test_valid_paths_pass(self, brep_validator):
        validator, _data = brep_validator
        self._check(validator, "SELECT face.square_dim, edge "
                               "FROM brep-face-edge WHERE brep_no = 1")

    def test_unknown_attr_rejected(self, brep_validator):
        validator, _data = brep_validator
        with pytest.raises(ValidationError):
            self._check(validator,
                        "SELECT ALL FROM brep WHERE nonsense = 1")

    def test_unknown_label_in_quantifier(self, brep_validator):
        validator, _data = brep_validator
        with pytest.raises(ValidationError):
            self._check(validator, "SELECT ALL FROM brep-face "
                                   "WHERE EXISTS edge: edge.length > 1")

    def test_label_only_projection_ok_but_not_in_where(self, brep_validator):
        validator, _data = brep_validator
        self._check(validator, "SELECT face FROM brep-face")
        with pytest.raises(ValidationError):
            self._check(validator, "SELECT ALL FROM brep-face WHERE face = 1")

    def test_qualified_projection_checked(self, brep_validator):
        validator, _data = brep_validator
        self._check(validator,
                    "SELECT face := SELECT square_dim FROM face "
                    "WHERE square_dim > 1.0 FROM brep-face")
        with pytest.raises(ValidationError):
            self._check(validator,
                        "SELECT face := SELECT nonsense FROM face "
                        "FROM brep-face")

    def test_empty_projection_rejected(self, brep_validator):
        validator, _data = brep_validator
        from repro.mql.ast import Projection, SelectStatement
        statement = parse("SELECT ALL FROM brep")
        structure = validator.resolve_structure(statement.from_clause)
        bad = SelectStatement(Projection(select_all=False, items=[]),
                              statement.from_clause, None)
        with pytest.raises(ValidationError):
            validator.check_select(bad, structure)


class TestCatalog:
    def test_define_and_drop(self):
        from repro.mad.molecule import StructureNode
        catalog = MoleculeTypeCatalog()
        catalog.define(MoleculeType("m", StructureNode("a", "a")))
        assert catalog.get("m") is not None
        with pytest.raises(ValidationError):
            catalog.define(MoleculeType("m", StructureNode("a", "a")))
        catalog.drop("m")
        assert catalog.get("m") is None
        with pytest.raises(ValidationError):
            catalog.drop("m")


class TestSimplification:
    def test_not_pushed_inward(self):
        expr = Not(Or([Comparison("=", Path(("x",)), Literal(1)),
                       Comparison("<", Path(("y",)), Literal(2))]))
        out = simplify(expr)
        assert isinstance(out, And)
        assert out.parts[0].op == "!="
        assert out.parts[1].op == ">="

    def test_double_negation(self):
        expr = Not(Not(Comparison("=", Path(("x",)), Literal(1))))
        out = simplify(expr)
        assert isinstance(out, Comparison) and out.op == "="

    def test_nested_and_flattened(self):
        inner = And([Comparison("=", Path(("x",)), Literal(1)),
                     Comparison("=", Path(("y",)), Literal(2))])
        expr = And([inner, Comparison("=", Path(("z",)), Literal(3))])
        out = simplify(expr)
        assert len(out.parts) == 3

    def test_constant_folding(self):
        expr = Comparison("<", Literal(1), Literal(2))
        out = simplify(expr)
        assert isinstance(out, Literal) and out.value is True

    def test_true_conjunct_removed(self):
        expr = And([Comparison("<", Literal(1), Literal(2)),
                    Comparison("=", Path(("x",)), Literal(1))])
        out = simplify(expr)
        assert isinstance(out, Comparison)

    def test_quantifier_condition_simplified(self):
        expr = Quantified("exists", None, "edge",
                          Not(Not(Comparison("=", Path(("x",)), Literal(1)))))
        out = simplify(expr)
        assert isinstance(out.condition, Comparison)

    def test_none_passthrough(self):
        assert simplify(None) is None

    def test_conjuncts(self):
        expr = simplify(And([Comparison("=", Path(("x",)), Literal(1)),
                             Comparison("=", Path(("y",)), Literal(2))]))
        assert len(conjuncts(expr)) == 2
        assert conjuncts(None) == []


class TestSargableTerms:
    def test_bare_and_labelled_root_attrs(self):
        expr = simplify(And([
            Comparison("=", Path(("brep_no",)), Literal(1713)),
            Comparison("<", Path(("brep", "brep_no")), Literal(99)),
            Comparison(">", Path(("face", "square_dim")), Literal(1.0)),
        ]))
        terms = sargable_root_terms(expr, "brep", {"brep_no", "hull"})
        assert ("brep_no", "=", 1713) in terms
        assert ("brep_no", "<", 99) in terms
        assert len(terms) == 2

    def test_reversed_comparison_normalised(self):
        expr = Comparison("<", Literal(5), Path(("brep_no",)))
        terms = sargable_root_terms(expr, "brep", {"brep_no"})
        assert terms == [("brep_no", ">", 5)]

    def test_or_not_sargable(self):
        expr = Or([Comparison("=", Path(("brep_no",)), Literal(1)),
                   Comparison("=", Path(("brep_no",)), Literal(2))])
        assert sargable_root_terms(expr, "brep", {"brep_no"}) == []

    def test_level_zero_counts_as_root(self):
        expr = Comparison("=", Path(("piece_list", "solid_no"), level=0),
                          Literal(4711))
        terms = sargable_root_terms(expr, "piece_list", {"solid_no"})
        assert terms == [("solid_no", "=", 4711)]

    def test_deeper_level_not_sargable(self):
        expr = Comparison("=", Path(("piece_list", "solid_no"), level=2),
                          Literal(4711))
        assert sargable_root_terms(expr, "piece_list", {"solid_no"}) == []
