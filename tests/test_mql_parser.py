"""Unit tests: the MQL parser over the paper's own statements."""

import pytest

from repro.errors import ParseError
from repro.mad.types import ArrayType, RecordType, SetType
from repro.mql import parse, parse_script
from repro.mql.ast import (
    And,
    Comparison,
    CreateAtomType,
    DefineMoleculeType,
    DeleteStatement,
    EmptyLiteral,
    InsertStatement,
    Literal,
    ModifyStatement,
    Path,
    Quantified,
    RefLookup,
    SelectStatement,
)


class TestDDL:
    def test_fig_2_3_solid(self):
        statement = parse("""
            CREATE ATOM_TYPE solid
            ( solid_id : IDENTIFIER,
              solid_no : INTEGER,
              description : CHAR_VAR,
              sub : SET_OF (REF_TO (solid.super)),
              super : SET_OF (REF_TO (solid.sub)),
              brep : REF_TO (brep.solid) )
            KEYS_ARE (solid_no)
        """)
        assert isinstance(statement, CreateAtomType)
        assert statement.keys == ("solid_no",)
        attrs = dict(statement.attributes)
        assert isinstance(attrs["sub"], SetType)

    def test_cardinality_restrictions(self):
        statement = parse(
            "CREATE ATOM_TYPE brep (brep_id: IDENTIFIER, "
            "faces: SET_OF (REF_TO (face.brep)) (4,VAR), "
            "edges: SET_OF (REF_TO (edge.brep)) (6,12))"
        )
        attrs = dict(statement.attributes)
        assert attrs["faces"].min_card == 4
        assert attrs["faces"].max_card is None
        assert attrs["edges"].max_card == 12

    def test_grouped_record_fields(self):
        statement = parse(
            "CREATE ATOM_TYPE point (point_id: IDENTIFIER, "
            "placement: RECORD x_coord, y_coord, z_coord : REAL, END)"
        )
        placement = dict(statement.attributes)["placement"]
        assert isinstance(placement, RecordType)
        assert [name for name, _t in placement.fields] == \
            ["x_coord", "y_coord", "z_coord"]

    def test_hull_dim(self):
        statement = parse("CREATE ATOM_TYPE b (b_id: IDENTIFIER, "
                          "hull: HULL_DIM (3))")
        hull = dict(statement.attributes)["hull"]
        assert isinstance(hull, ArrayType)
        assert hull.length == 6

    def test_define_molecule_type_both_spellings(self):
        one = parse("DEFINE MOLECULE TYPE edge_obj FROM edge - point")
        two = parse("DEFINE MOLECULE_TYPE edge_obj FROM edge-point")
        assert isinstance(one, DefineMoleculeType)
        assert one.structure.render() == two.structure.render()

    def test_recursive_structure(self):
        statement = parse(
            "DEFINE MOLECULE TYPE piece_list FROM solid.sub - solid (RECURSIVE)"
        )
        child = statement.structure.children[0]
        assert child.recursive
        assert child.via_attr == "sub"

    def test_script_parsing(self):
        statements = parse_script(
            "CREATE ATOM_TYPE a (a_id: IDENTIFIER);"
            "CREATE ATOM_TYPE b (b_id: IDENTIFIER)"
        )
        assert len(statements) == 2


class TestSelect:
    def test_table_2_1_a(self):
        statement = parse("SELECT ALL FROM brep-face-edge-point "
                          "WHERE brep_no = 1713 (* qualification *)")
        assert isinstance(statement, SelectStatement)
        assert statement.projection.select_all
        assert statement.from_clause.render() == "brep-face-edge-point"
        assert isinstance(statement.where, Comparison)

    def test_table_2_1_b_seed(self):
        statement = parse("SELECT ALL FROM piece_list "
                          "WHERE piece_list (0).solid_no = 4711")
        path = statement.where.left
        assert isinstance(path, Path)
        assert path.level == 0
        assert path.parts == ("piece_list", "solid_no")

    def test_table_2_1_c_projection(self):
        statement = parse("SELECT solid_no, description FROM solid "
                          "WHERE sub = EMPTY")
        assert [item.path.parts for item in statement.projection.items] == \
            [("solid_no",), ("description",)]
        assert isinstance(statement.where.right, EmptyLiteral)

    def test_table_2_1_d_full(self):
        statement = parse("""
            SELECT edge, (point,
             face := SELECT face_id, square_dim
                     FROM face
                     WHERE square_dim > 1.9E4)
            FROM brep-edge (face, point)
            WHERE brep_no = 1713
            AND EXISTS_AT_LEAST (2) edge: edge.length > 1.0E2
        """)
        labels = {item.label for item in statement.projection.items
                  if item.subquery is not None}
        assert labels == {"face"}
        assert isinstance(statement.where, And)
        quantifier = statement.where.parts[1]
        assert isinstance(quantifier, Quantified)
        assert quantifier.quantifier == "at_least" and quantifier.count == 2

    def test_branching_structure(self):
        statement = parse("SELECT ALL FROM brep-edge (face, point)")
        edge = statement.from_clause.children[0]
        assert edge.name == "edge"
        assert {child.name for child in edge.children} == {"face", "point"}

    def test_explicit_attr_in_chain(self):
        statement = parse("SELECT ALL FROM solid.sub-solid")
        child = statement.from_clause.children[0]
        assert child.via_attr == "sub"

    def test_quantifier_variants(self):
        for text, kind in [("EXISTS e: e.x = 1", "exists"),
                           ("FOR_ALL e: e.x = 1", "all"),
                           ("EXISTS_EXACTLY (3) e: e.x = 1", "exactly")]:
            statement = parse(f"SELECT ALL FROM a WHERE {text}")
            assert statement.where.quantifier == kind

    def test_parenthesised_qualification(self):
        statement = parse("SELECT ALL FROM a "
                          "WHERE NOT (x = 1 OR y = 2) AND z != 3")
        assert isinstance(statement.where, And)

    def test_dangling_attr_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT ALL FROM solid.sub")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT ALL FROM a WHERE x = 1 garbage")


class TestDML:
    def test_insert_with_refs(self):
        statement = parse("INSERT edge (length = 2.5, "
                          "boundary = [REF point(1), REF point(2)])")
        assert isinstance(statement, InsertStatement)
        attr, value = statement.assignments[1]
        assert attr == "boundary"
        assert all(isinstance(v, RefLookup) for v in value)

    def test_insert_record_literal(self):
        statement = parse("INSERT point (placement = "
                          "{x_coord = 1.0, y_coord = 2.0, z_coord = 0.0})")
        _attr, value = statement.assignments[0]
        assert isinstance(value, Literal)
        assert value.value["x_coord"] == 1.0

    def test_insert_empty(self):
        statement = parse("INSERT solid (sub = EMPTY)")
        assert isinstance(statement.assignments[0][1], EmptyLiteral)

    def test_delete_all_vs_labels(self):
        all_form = parse("DELETE ALL FROM face-edge WHERE square_dim > 1.0")
        label_form = parse("DELETE edge, point FROM face-edge-point")
        assert isinstance(all_form, DeleteStatement)
        assert all_form.labels == []
        assert label_form.labels == ["edge", "point"]

    def test_modify(self):
        statement = parse("MODIFY face SET square_dim = 9.0, name = 'top' "
                          "FROM face WHERE square_dim < 1.0")
        assert isinstance(statement, ModifyStatement)
        assert statement.label == "face"
        assert len(statement.assignments) == 2

    def test_multi_key_ref(self):
        statement = parse("INSERT a (r = REF b(1, 'x'))")
        ref = statement.assignments[0][1]
        assert ref.key == (1, "x")
