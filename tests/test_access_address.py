"""Unit tests: surrogates, the address table, record containers."""

import pytest

from repro.access.address import (
    BASE_STRUCTURE,
    AddressTable,
    RecordId,
    SurrogateGenerator,
)
from repro.access.container import RecordContainer
from repro.errors import AccessError, AtomNotFoundError, RecordNotFoundError
from repro.mad.types import Surrogate
from repro.storage.page import PageId


class TestSurrogateGenerator:
    def test_monotone_per_type(self):
        gen = SurrogateGenerator()
        a1 = gen.generate("a")
        a2 = gen.generate("a")
        b1 = gen.generate("b")
        assert (a1.number, a2.number, b1.number) == (1, 2, 1)

    def test_never_reused_after_note(self):
        gen = SurrogateGenerator()
        gen.note_existing(Surrogate("a", 10))
        assert gen.generate("a").number == 11

    def test_note_lower_is_noop(self):
        gen = SurrogateGenerator()
        gen.generate("a")
        gen.generate("a")
        gen.note_existing(Surrogate("a", 1))
        assert gen.generate("a").number == 3


class TestAddressTable:
    def _rid(self, no=1, slot=0):
        return RecordId(PageId("seg", no), slot)

    def test_register_release(self):
        table = AddressTable()
        s = Surrogate("t", 1)
        table.register(s)
        assert table.exists(s)
        table.release(s)
        assert not table.exists(s)

    def test_double_register_rejected(self):
        table = AddressTable()
        s = Surrogate("t", 1)
        table.register(s)
        with pytest.raises(AtomNotFoundError):
            table.register(s)

    def test_unknown_lookup_rejected(self):
        table = AddressTable()
        with pytest.raises(AtomNotFoundError):
            table.placements(Surrogate("t", 9))

    def test_placements_base_first(self):
        table = AddressTable()
        s = Surrogate("t", 1)
        table.register(s)
        table.place(s, "sort_order:x", self._rid(2))
        table.place(s, BASE_STRUCTURE, self._rid(1))
        table.place(s, "partition:y", self._rid(3))
        placements = table.placements(s)
        assert placements[0].structure == BASE_STRUCTURE
        assert len(placements) == 3

    def test_unplace(self):
        table = AddressTable()
        s = Surrogate("t", 1)
        table.register(s)
        table.place(s, "partition:y", self._rid())
        table.unplace(s, "partition:y")
        assert table.placement(s, "partition:y") is None

    def test_staleness_lifecycle(self):
        table = AddressTable()
        s = Surrogate("t", 1)
        table.register(s)
        table.place(s, "partition:y", self._rid())
        assert table.placement(s, "partition:y").fresh
        table.mark_stale(s, "partition:y")
        assert not table.placement(s, "partition:y").fresh
        assert len(table.stale_placements(s)) == 1
        table.mark_fresh(s, "partition:y")
        assert table.placement(s, "partition:y").fresh

    def test_mark_fresh_with_new_record(self):
        table = AddressTable()
        s = Surrogate("t", 1)
        table.register(s)
        table.place(s, "partition:y", self._rid(1))
        table.mark_fresh(s, "partition:y", self._rid(2))
        assert table.placement(s, "partition:y").record == self._rid(2)

    def test_surrogate_iteration_filtered(self):
        table = AddressTable()
        for i in range(3):
            table.register(Surrogate("a", i + 1))
        table.register(Surrogate("b", 1))
        assert len(list(table.surrogates("a"))) == 3
        assert table.count("a") == 3
        assert table.count() == 4


class TestRecordContainer:
    @pytest.fixture
    def container(self, storage):
        return RecordContainer(storage, "recs", page_size=512)

    def test_insert_read(self, container):
        rid = container.insert(b"hello")
        assert container.read(rid) == b"hello"
        assert container.record_count == 1

    def test_update_in_place(self, container):
        rid = container.insert(b"aaaa")
        new_rid = container.update(rid, b"bb")
        assert new_rid == rid
        assert container.read(rid) == b"bb"

    def test_update_moves_across_pages(self, container):
        rid = container.insert(b"small")
        # Fill the page so a grown record must move.
        for _ in range(3):
            container.insert(b"x" * 120)
        new_rid = container.update(rid, b"y" * 400)
        assert container.read(new_rid) == b"y" * 400

    def test_delete(self, container):
        rid = container.insert(b"gone")
        container.delete(rid)
        assert container.record_count == 0
        with pytest.raises(RecordNotFoundError):
            container.read(rid)

    def test_scan_in_physical_order(self, container):
        payloads = [bytes([i]) * 50 for i in range(30)]
        for payload in payloads:
            container.insert(payload)
        scanned = [payload for _rid, payload in container.scan()]
        assert scanned == payloads

    def test_records_spread_over_pages(self, container):
        for i in range(30):
            container.insert(bytes([i]) * 50)
        assert len(container.page_ids()) > 1

    def test_oversize_record_routed_to_page_sequence(self, container):
        blob = bytes(range(256)) * 10     # 2560 B > 512-byte pages
        rid = container.insert(blob)
        assert container.read(rid) == blob
        assert container.long_record_count == 1

    def test_long_record_update_and_delete(self, container):
        blob = bytes(range(256)) * 10
        rid = container.insert(blob)
        bigger = blob * 2
        rid = container.update(rid, bigger)
        assert container.read(rid) == bigger
        # shrink back below one page: the stub indirection disappears
        rid = container.update(rid, b"tiny")
        assert container.read(rid) == b"tiny"
        assert container.long_record_count == 0
        container.delete(rid)
        assert container.record_count == 0

    def test_short_record_growing_long(self, container):
        rid = container.insert(b"small")
        blob = bytes(range(256)) * 8
        rid = container.update(rid, blob)
        assert container.read(rid) == blob
        assert container.long_record_count == 1

    def test_scan_resolves_long_records(self, container):
        container.insert(b"short")
        blob = bytes(range(256)) * 10
        container.insert(blob)
        payloads = sorted((p for _rid, p in container.scan()), key=len)
        assert payloads == [b"short", blob]

    def test_clear_drops_long_records(self, container):
        container.insert(bytes(range(256)) * 10)
        container.clear()
        assert container.long_record_count == 0
        assert container.record_count == 0

    def test_foreign_record_rejected(self, container, storage):
        other = RecordContainer(storage, "other", page_size=512)
        rid = other.insert(b"x")
        with pytest.raises(AccessError):
            container.read(rid)

    def test_clear(self, container):
        for i in range(10):
            container.insert(bytes([i]) * 50)
        container.clear()
        assert container.record_count == 0
        assert list(container.scan()) == []

    def test_free_space_reused_after_delete(self, container):
        rids = [container.insert(b"x" * 100) for _ in range(4)]
        pages_before = len(container.page_ids())
        for rid in rids:
            container.delete(rid)
        for _ in range(4):
            container.insert(b"y" * 100)
        assert len(container.page_ids()) == pages_before
