"""Shared fixtures: small schemas and generated databases."""

from __future__ import annotations

import pytest

from repro import Prima
from repro.access.system import AccessSystem
from repro.mad import (
    IDENTIFIER,
    INTEGER,
    REAL,
    AtomType,
    CharVarType,
    ReferenceType,
    Schema,
    SetType,
)
from repro.storage.system import StorageSystem
from repro.workloads import brep, gis, vlsi


def pytest_configure(config) -> None:
    # CI installs pytest-timeout (which owns this marker); registering it
    # here keeps local runs without the plugin warning-free.
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test deadline, enforced by pytest-timeout "
        "when installed (the CI tier-1 job)",
    )


@pytest.fixture
def storage() -> StorageSystem:
    """A small storage system (8 frames of the largest size)."""
    return StorageSystem(buffer_capacity=8 * 8192)


@pytest.fixture
def face_edge_access() -> AccessSystem:
    """An access system over a 2-type n:m schema (face <-> edge)."""
    schema = Schema()
    schema.create_atom_type(AtomType("face", [
        ("face_id", IDENTIFIER),
        ("square_dim", REAL),
        ("name", CharVarType()),
        ("border", SetType(ReferenceType("edge", "face"))),
    ], keys=("name",)))
    schema.create_atom_type(AtomType("edge", [
        ("edge_id", IDENTIFIER),
        ("length", REAL),
        ("face", SetType(ReferenceType("face", "border"))),
    ]))
    schema.check_symmetry()
    access = AccessSystem(StorageSystem(buffer_capacity=32 * 8192), schema)
    access.atoms.register_atom_type("face")
    access.atoms.register_atom_type("edge")
    return access


@pytest.fixture
def db() -> Prima:
    """An empty PRIMA instance."""
    return Prima()


@pytest.fixture(scope="module")
def brep_db():
    """A generated BREP database (module-scoped: treat as read-only)."""
    database = Prima()
    handles = brep.generate(database, n_solids=4)
    return handles


@pytest.fixture(scope="module")
def vlsi_db():
    """A generated VLSI database (module-scoped: treat as read-only)."""
    return vlsi.generate(n_cells=12, pins_per_cell=3, n_nets=8)


@pytest.fixture(scope="module")
def gis_db():
    """A generated GIS database (module-scoped: treat as read-only)."""
    return gis.generate(rows=3, cols=3, sheets=2)
