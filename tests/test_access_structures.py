"""Unit tests: partitions, sort orders, access paths, deferred update."""

import pytest

from repro.access.multidim import KeyCondition
from repro.errors import SchemaError, StructureExistsError, StructureNotFoundError


class TestPartitions:
    def test_covers(self, face_edge_access):
        partition = face_edge_access.create_partition(
            "p", "face", ["square_dim"])
        assert partition.covers(["square_dim"])
        assert partition.covers(["square_dim", "face_id"])
        assert not partition.covers(["name"])

    def test_identifier_not_listable(self, face_edge_access):
        with pytest.raises(SchemaError):
            face_edge_access.create_partition("p", "face", ["face_id"])

    def test_backfill_on_install(self, face_edge_access):
        for i in range(5):
            face_edge_access.insert("face", {"square_dim": float(i)})
        partition = face_edge_access.create_partition(
            "p", "face", ["square_dim"])
        assert partition.record_count == 5

    def test_projected_read_uses_partition(self, face_edge_access):
        s = face_edge_access.insert("face", {"square_dim": 4.0})
        face_edge_access.create_partition("p", "face", ["square_dim"])
        before = face_edge_access.counters.get("reads_from_partition")
        values = face_edge_access.get(s, attrs=["square_dim"])
        assert values["square_dim"] == 4.0
        assert face_edge_access.counters.get("reads_from_partition") == \
            before + 1

    def test_stale_partition_not_used(self, face_edge_access):
        s = face_edge_access.insert("face", {"square_dim": 4.0})
        face_edge_access.create_partition("p", "face", ["square_dim"])
        face_edge_access.modify(s, {"square_dim": 9.0})
        before = face_edge_access.counters.get("reads_from_partition")
        values = face_edge_access.get(s, attrs=["square_dim"])
        assert values["square_dim"] == 9.0      # correct despite staleness
        assert face_edge_access.counters.get("reads_from_partition") == before

    def test_refresh_after_propagate(self, face_edge_access):
        s = face_edge_access.insert("face", {"square_dim": 4.0})
        face_edge_access.create_partition("p", "face", ["square_dim"])
        face_edge_access.modify(s, {"square_dim": 9.0})
        assert face_edge_access.propagate_deferred() >= 1
        before = face_edge_access.counters.get("reads_from_partition")
        values = face_edge_access.get(s, attrs=["square_dim"])
        assert values["square_dim"] == 9.0
        assert face_edge_access.counters.get("reads_from_partition") == \
            before + 1

    def test_delete_removes_partition_record(self, face_edge_access):
        s = face_edge_access.insert("face", {"square_dim": 4.0})
        partition = face_edge_access.create_partition(
            "p", "face", ["square_dim"])
        face_edge_access.delete(s)
        assert partition.record_count == 0


class TestSortOrders:
    def test_iterate_sorted(self, face_edge_access):
        for value in (5.0, 1.0, 3.0):
            face_edge_access.insert("edge", {"length": value})
        order = face_edge_access.create_sort_order("so", "edge", ["length"])
        lengths = [face_edge_access.get(s)["length"]
                   for s in order.iterate()]
        assert lengths == [1.0, 3.0, 5.0]

    def test_start_stop_conditions(self, face_edge_access):
        for value in range(10):
            face_edge_access.insert("edge", {"length": float(value)})
        order = face_edge_access.create_sort_order("so", "edge", ["length"])
        got = [face_edge_access.get(s)["length"]
               for s in order.iterate(start=3.0, stop=6.0)]
        assert got == [3.0, 4.0, 5.0, 6.0]

    def test_order_maintained_under_modify(self, face_edge_access):
        surrogates = [face_edge_access.insert("edge", {"length": float(i)})
                      for i in range(5)]
        order = face_edge_access.create_sort_order("so", "edge", ["length"])
        face_edge_access.modify(surrogates[0], {"length": 99.0})
        got = [s for s in order.iterate()]
        assert got[-1] == surrogates[0]

    def test_record_copy_refreshes(self, face_edge_access):
        s = face_edge_access.insert("edge", {"length": 1.0})
        order = face_edge_access.create_sort_order("so", "edge", ["length"])
        face_edge_access.modify(s, {"length": 2.0})
        assert order.read(s) is None          # stale -> not served
        face_edge_access.propagate_deferred()
        assert order.read(s)["length"] == 2.0

    def test_delete_removes_entry(self, face_edge_access):
        s = face_edge_access.insert("edge", {"length": 1.0})
        order = face_edge_access.create_sort_order("so", "edge", ["length"])
        face_edge_access.delete(s)
        assert list(order.iterate()) == []
        assert order.record_count == 0


class TestAccessPaths:
    def test_btree_path_search(self, face_edge_access):
        surrogates = [face_edge_access.insert("edge", {"length": float(i % 3)})
                      for i in range(9)]
        path = face_edge_access.create_access_path("ap", "edge", ["length"])
        assert len(path.search(1.0)) == 3
        assert len(path) == 9

    def test_grid_path_multidim(self, face_edge_access):
        for i in range(10):
            face_edge_access.insert("face", {"square_dim": float(i),
                                             "name": f"f{i}"})
        path = face_edge_access.create_access_path(
            "ap2", "face", ["square_dim", "name"], method="grid")
        got = list(path.scan([KeyCondition(start=2.0, stop=4.0),
                              KeyCondition()]))
        assert len(got) == 3

    def test_maintained_under_dml(self, face_edge_access):
        s = face_edge_access.insert("edge", {"length": 1.0})
        path = face_edge_access.create_access_path("ap", "edge", ["length"])
        face_edge_access.modify(s, {"length": 7.0})
        assert path.search(1.0) == []
        assert path.search(7.0) == [s]
        face_edge_access.delete(s)
        assert path.search(7.0) == []

    def test_btree_scan_per_key_conditions(self, face_edge_access):
        for i in range(6):
            face_edge_access.insert("face", {"square_dim": float(i // 2),
                                             "name": f"n{i}"})
        path = face_edge_access.create_access_path(
            "ap3", "face", ["square_dim", "name"])
        got = list(path.scan([KeyCondition(start=1.0, stop=2.0),
                              KeyCondition(stop="n3")]))
        assert all(1.0 <= key[0] <= 2.0 and key[1] <= "n3"
                   for key, _s in got)


class TestStructureRegistry:
    def test_duplicate_name_rejected(self, face_edge_access):
        face_edge_access.create_partition("dup", "face", ["square_dim"])
        with pytest.raises(StructureExistsError):
            face_edge_access.create_sort_order("dup", "edge", ["length"])

    def test_drop_structure(self, face_edge_access):
        face_edge_access.create_partition("p", "face", ["square_dim"])
        face_edge_access.drop_structure("p")
        with pytest.raises(StructureNotFoundError):
            face_edge_access.atoms.structure("p")
        with pytest.raises(StructureNotFoundError):
            face_edge_access.drop_structure("p")

    def test_structures_for_filtered_by_kind(self, face_edge_access):
        face_edge_access.create_partition("p", "face", ["square_dim"])
        face_edge_access.create_access_path("a", "face", ["square_dim"])
        assert len(face_edge_access.atoms.structures_for("face")) == 2
        assert len(face_edge_access.atoms.structures_for(
            "face", "partition")) == 1


class TestDeferredUpdate:
    def test_queue_and_propagate(self, face_edge_access):
        s = face_edge_access.insert("edge", {"length": 1.0})
        face_edge_access.create_sort_order("so", "edge", ["length"])
        face_edge_access.create_partition("pt", "edge", ["length"])
        face_edge_access.modify(s, {"length": 2.0})
        deferred = face_edge_access.atoms.deferred
        assert deferred.pending_count == 2
        assert face_edge_access.propagate_deferred() == 2
        assert deferred.pending_count == 0

    def test_limit(self, face_edge_access):
        s = face_edge_access.insert("edge", {"length": 1.0})
        face_edge_access.create_sort_order("so", "edge", ["length"])
        face_edge_access.create_partition("pt", "edge", ["length"])
        face_edge_access.modify(s, {"length": 2.0})
        assert face_edge_access.propagate_deferred(limit=1) == 1
        assert face_edge_access.atoms.deferred.pending_count == 1

    def test_requeue_keeps_single_entry(self, face_edge_access):
        s = face_edge_access.insert("edge", {"length": 1.0})
        face_edge_access.create_partition("pt", "edge", ["length"])
        face_edge_access.modify(s, {"length": 2.0})
        face_edge_access.modify(s, {"length": 3.0})
        assert face_edge_access.atoms.deferred.pending_count == 1

    def test_delete_cancels_pending(self, face_edge_access):
        s = face_edge_access.insert("edge", {"length": 1.0})
        face_edge_access.create_partition("pt", "edge", ["length"])
        face_edge_access.modify(s, {"length": 2.0})
        face_edge_access.delete(s)
        assert face_edge_access.atoms.deferred.pending_count == 0
        assert face_edge_access.propagate_deferred() == 0

    def test_drop_structure_cancels_pending(self, face_edge_access):
        s = face_edge_access.insert("edge", {"length": 1.0})
        face_edge_access.create_partition("pt", "edge", ["length"])
        face_edge_access.modify(s, {"length": 2.0})
        face_edge_access.drop_structure("pt")
        assert face_edge_access.atoms.deferred.pending_count == 0
