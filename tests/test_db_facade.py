"""Tests: the Prima facade, molecule API, result sets, integrity verifier."""

import pytest

from repro import Molecule, Prima, ResultSet, Surrogate
from repro.access.integrity import Violation
from repro.errors import PrimaError


class TestFacade:
    def test_quickstart_docstring_flow(self, db):
        db.execute("CREATE ATOM_TYPE city (city_id: IDENTIFIER, "
                   "name: CHAR_VAR) KEYS_ARE (name)")
        result = db.execute("INSERT city (name = 'Brighton')")
        assert result.inserted == Surrogate("city", 1)
        molecules = db.query("SELECT ALL FROM city")
        assert len(molecules) == 1
        assert molecules[0].atom["name"] == "Brighton"

    def test_execute_script(self, db):
        results = db.execute_script("""
            CREATE ATOM_TYPE a (a_id: IDENTIFIER, n: INTEGER);
            INSERT a (n = 1);
            INSERT a (n = 2);
            SELECT ALL FROM a
        """)
        assert len(results) == 4
        assert len(results[-1]) == 2

    def test_programmatic_atom_access(self, db):
        db.execute("CREATE ATOM_TYPE a (a_id: IDENTIFIER, n: INTEGER)")
        db.query("SELECT ALL FROM a")
        s = db.insert_atom("a", {"n": 5})
        assert db.get_atom(s)["n"] == 5
        db.modify_atom(s, {"n": 6})
        assert db.get_atom(s, attrs=["n"])["n"] == 6
        db.delete_atom(s)
        assert db.access.atoms.count("a") == 0

    def test_commit_propagates_and_flushes(self, db):
        db.execute("CREATE ATOM_TYPE a (a_id: IDENTIFIER, n: INTEGER)")
        db.query("SELECT ALL FROM a")
        s = db.insert_atom("a", {"n": 1})
        db.execute_ldl("CREATE PARTITION pn ON a (n)")
        db.modify_atom(s, {"n": 2})
        assert db.access.atoms.deferred.pending_count == 1
        db.commit()
        assert db.access.atoms.deferred.pending_count == 0

    def test_io_report_merges_layers(self, db):
        db.execute("CREATE ATOM_TYPE a (a_id: IDENTIFIER)")
        db.query("SELECT ALL FROM a")
        db.insert_atom("a")
        report = db.io_report()
        assert "atoms_inserted" in report
        assert "fixes" in report
        db.reset_accounting()
        assert db.io_report().get("atoms_inserted", 0) == 0

    def test_explain_requires_select(self, db):
        db.execute("CREATE ATOM_TYPE a (a_id: IDENTIFIER)")
        with pytest.raises(PrimaError):
            db.explain("INSERT a ()" if False else "DELETE ALL FROM a")

    def test_verify_integrity_reports_violations(self, db):
        db.execute("CREATE ATOM_TYPE a (a_id: IDENTIFIER, "
                   "peers: SET_OF (REF_TO (a.peers)) (2,VAR))")
        db.query("SELECT ALL FROM a")
        db.insert_atom("a")
        violations = db.verify_integrity()
        assert len(violations) == 1
        assert isinstance(violations[0], Violation)
        assert violations[0].kind == "cardinality"

    def test_partitioned_buffer_configuration(self):
        db = Prima(partitioned_buffer=True)
        db.execute("CREATE ATOM_TYPE a (a_id: IDENTIFIER, n: INTEGER)")
        db.execute("INSERT a (n = 1)")
        assert len(db.query("SELECT ALL FROM a")) == 1


class TestMoleculeApi:
    @pytest.fixture
    def molecule(self, db) -> Molecule:
        db.execute_script("""
            CREATE ATOM_TYPE parent (p_id: IDENTIFIER, name: CHAR_VAR,
              kids: SET_OF (REF_TO (child.parent)));
            CREATE ATOM_TYPE child (c_id: IDENTIFIER, n: INTEGER,
              parent: REF_TO (parent.kids))
        """)
        db.execute("INSERT parent (name = 'p')")
        db.execute("INSERT child (n = 1, parent = REF parent('p'))"
                   if False else
                   "INSERT child (n = 1)")
        # connect via modify to exercise that path
        parent = db.query("SELECT ALL FROM parent")[0].surrogate
        child = db.query("SELECT ALL FROM child")[0].surrogate
        db.modify_atom(child, {"parent": parent})
        db.insert_atom("child", {"n": 2, "parent": parent})
        return db.query("SELECT ALL FROM parent-child")[0]

    def test_surrogate_property(self, molecule):
        assert molecule.surrogate.atom_type == "parent"

    def test_atoms_iteration(self, molecule):
        labels = [label for label, _atom in molecule.atoms()]
        assert labels == ["parent", "child", "child"]

    def test_atom_count_and_depth(self, molecule):
        assert molecule.atom_count() == 3
        assert molecule.depth() == 2

    def test_component_list(self, molecule):
        kids = molecule.component_list("child")
        assert sorted(kid.atom["n"] for kid in kids) == [1, 2]
        assert molecule.component_list("ghost") == []

    def test_to_dict(self, molecule):
        data = molecule.to_dict()
        assert data["name"] == "p"
        assert len(data["<child>"]) == 2

    def test_map_atoms(self, molecule):
        molecule.map_atoms(lambda atom: {"only": 1})
        assert molecule.atom == {"only": 1}
        assert molecule.component_list("child")[0].atom == {"only": 1}


class TestResultSet:
    def test_dml_reprs(self):
        assert "affected=3" in repr(ResultSet(affected=3))
        assert "inserted" in repr(ResultSet(inserted=Surrogate("a", 1)))
        assert "0 molecules" in repr(ResultSet())

    def test_atom_count_deduplicates(self, db):
        db.execute_script("""
            CREATE ATOM_TYPE f (f_id: IDENTIFIER,
              es: SET_OF (REF_TO (e.fs)));
            CREATE ATOM_TYPE e (e_id: IDENTIFIER,
              fs: SET_OF (REF_TO (f.es)))
        """)
        db.query("SELECT ALL FROM f")
        shared = db.insert_atom("e")
        db.insert_atom("f", {"es": [shared]})
        db.insert_atom("f", {"es": [shared]})
        result = db.query("SELECT ALL FROM f-e")
        assert len(result) == 2
        assert result.atom_count() == 3   # shared atom counted once
