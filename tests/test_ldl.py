"""Unit + integration tests: the load definition language."""

import pytest

from repro import Prima
from repro.errors import ParseError, StructureNotFoundError
from repro.ldl.parser import (
    CreateAccessPath,
    CreateAtomCluster,
    CreatePartition,
    CreateSortOrder,
    DropStructure,
    parse_ldl,
    parse_ldl_script,
)
from repro.workloads import brep


class TestParser:
    def test_access_path(self):
        statement = parse_ldl("CREATE ACCESS PATH p ON face (square_dim)")
        assert isinstance(statement, CreateAccessPath)
        assert statement.method == "btree"

    def test_access_path_grid(self):
        statement = parse_ldl(
            "CREATE ACCESS PATH p ON point (x, y) USING GRID")
        assert statement.method == "grid"
        assert statement.attrs == ["x", "y"]

    def test_sort_order(self):
        statement = parse_ldl("CREATE SORT ORDER s ON edge (length)")
        assert isinstance(statement, CreateSortOrder)

    def test_partition(self):
        statement = parse_ldl("CREATE PARTITION pt ON face (square_dim, name)")
        assert isinstance(statement, CreatePartition)
        assert statement.attrs == ["square_dim", "name"]

    def test_atom_cluster_with_structure(self):
        statement = parse_ldl(
            "CREATE ATOM_CLUSTER c FROM brep-face-edge-point")
        assert isinstance(statement, CreateAtomCluster)
        assert statement.structure.render() == "brep-face-edge-point"

    def test_drop_variants(self):
        for text in ("DROP ACCESS PATH x", "DROP SORT ORDER x",
                     "DROP PARTITION x", "DROP ATOM_CLUSTER x"):
            statement = parse_ldl(text)
            assert isinstance(statement, DropStructure)
            assert statement.name == "x"

    def test_script(self):
        statements = parse_ldl_script(
            "CREATE PARTITION a ON t (x); DROP PARTITION a"
        )
        assert len(statements) == 2

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_ldl("MAKE THINGS FAST")


class TestExecution:
    @pytest.fixture
    def handles(self):
        return brep.generate(Prima(), n_solids=2)

    def test_install_all_four_mechanisms(self, handles):
        db = handles.db
        messages = db.execute_ldl("""
            CREATE ACCESS PATH face_sq ON face (square_dim);
            CREATE SORT ORDER edge_len ON edge (length);
            CREATE PARTITION face_slim ON face (square_dim);
            CREATE ATOM_CLUSTER brep_cl FROM brep-face-edge-point
        """)
        assert len(messages) == 4
        assert sorted(db.access.atoms.structure_names()) == \
            ["brep_cl", "edge_len", "face_slim", "face_sq"]

    def test_drop(self, handles):
        db = handles.db
        db.execute_ldl("CREATE PARTITION p ON face (square_dim)")
        db.execute_ldl("DROP PARTITION p")
        with pytest.raises(StructureNotFoundError):
            db.access.atoms.structure("p")

    def test_transparency_queries_identical(self, handles):
        """The LDL structures only serve performance — results at the MAD
        interface are bit-identical with and without them (paper, 2.3)."""
        db = handles.db
        queries = [
            "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713",
            "SELECT ALL FROM face-edge WHERE square_dim > 10.0",
            "SELECT solid_no, description FROM solid WHERE sub = EMPTY",
            "SELECT ALL FROM point-edge-face",
        ]
        def canonical(query):
            # Tuning structures may change *delivery order* (an access
            # path delivers in value order); the molecule SET must be
            # identical, so compare order-insensitively.
            return sorted(repr(d) for d in db.query(query).to_dicts())

        before = [canonical(q) for q in queries]
        db.execute_ldl("""
            CREATE ACCESS PATH f_sq ON face (square_dim);
            CREATE SORT ORDER e_len ON edge (length);
            CREATE PARTITION f_dim ON face (square_dim);
            CREATE ATOM_CLUSTER bc FROM brep-face-edge-point
        """)
        after = [canonical(q) for q in queries]
        assert before == after

    def test_transparency_under_updates(self, handles):
        db = handles.db
        db.execute_ldl("""
            CREATE SORT ORDER e_len ON edge (length);
            CREATE PARTITION f_dim ON face (square_dim);
            CREATE ATOM_CLUSTER bc FROM brep-face-edge-point
        """)
        db.execute("MODIFY edge SET length = 77.0 FROM brep-edge "
                   "WHERE brep_no = 1713")
        # without propagation: reads still correct (stale copies skipped)
        molecule = db.query("SELECT ALL FROM brep-face-edge-point "
                            "WHERE brep_no = 1713")[0]
        for face in molecule.component_list("face"):
            for edge in face.component_list("edge"):
                assert edge.atom["length"] == 77.0
        db.commit()
        molecule = db.query("SELECT ALL FROM brep-face-edge-point "
                            "WHERE brep_no = 1713")[0]
        for face in molecule.component_list("face"):
            for edge in face.component_list("edge"):
                assert edge.atom["length"] == 77.0

    def test_cluster_serves_matching_query(self, handles):
        db = handles.db
        db.execute_ldl("CREATE ATOM_CLUSTER bc FROM brep-face-edge-point")
        db.reset_accounting()
        result = db.query(
            "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713")
        assert len(result) == 1   # drain the lazy cursor
        assert db.io_report().get("molecules_from_cluster", 0) == 1

    def test_cluster_ignored_for_other_structures(self, handles):
        db = handles.db
        db.execute_ldl("CREATE ATOM_CLUSTER bc FROM brep-face-edge-point")
        db.reset_accounting()
        db.query("SELECT ALL FROM brep-face WHERE brep_no = 1713")
        assert db.io_report().get("molecules_from_cluster", 0) == 0
