"""Tests: descending / mixed-direction ordered scans + dynamic TopK bound.

Covers the direction-aware access layer end to end — DESC ORDER BY served
by a reverse sort-order (or B*-tree access-path) scan, mixed-direction
ORDER BY prefix-served in either direction, the surrogate tie-break
agreement between every SortScan backing and the stable Sort operator,
the dynamic heap-bound pushdown into the lazy B*-tree walk, the parallel
prologue's direction + bound shaping, the wrong-label ORDER BY
diagnostic, and the closed-cursor contract edge cases.
"""

import pytest

from repro import Prima
from repro.access.scans import SortScan
from repro.data.operators import TopK
from repro.errors import CursorStateError, ValidationError
from repro.mql.parser import parse
from repro.parallel.decompose import SemanticDecomposer

N_PARTS = 60


def build_db(sort_order=None, access_path=None, n_parts=N_PARTS):
    db = Prima()
    db.execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, "
               "n: INTEGER, grp: INTEGER) KEYS_ARE (n)")
    for value in range(n_parts):
        db.insert_atom("part", {"n": value, "grp": value % 4})
    if sort_order:
        attrs = ", ".join(sort_order)
        db.execute_ldl(f"CREATE SORT ORDER so ON part ({attrs})")
    if access_path:
        attrs = ", ".join(access_path)
        db.execute_ldl(f"CREATE ACCESS PATH ap ON part ({attrs})")
    return db


def _find(operator, kind):
    if isinstance(operator, kind):
        return operator
    for child in operator.children:
        found = _find(child, kind)
        if found is not None:
            return found
    return None


class TestReverseServing:
    def test_desc_fully_served_by_reverse_sort_order(self):
        db = build_db(sort_order=["n"])
        plan = db.data.plan_select(
            parse("SELECT ALL FROM part ORDER BY n DESC"))
        assert plan.order_served_by_access
        assert plan.root_access.kind == "sort_scan"
        assert plan.root_access.detail["reverse"] is True
        got = [m.atom["n"] for m in
               db.query("SELECT ALL FROM part ORDER BY n DESC")]
        assert got == list(reversed(range(N_PARTS)))

    def test_desc_limit_constructs_exactly_k(self):
        db = build_db(sort_order=["n"])
        db.reset_accounting()
        got = [m.atom["n"] for m in
               db.query("SELECT ALL FROM part ORDER BY n DESC LIMIT 5")]
        assert got == [59, 58, 57, 56, 55]
        report = db.io_report()
        assert report.get("operator_rows:MoleculeConstruct") == 5
        # The lazy walk stopped with the construction, not after it:
        # at most a handful of index entries were ever visited.
        assert report.get("sort_scan_entries_walked", 0) <= 6

    def test_desc_served_by_reverse_access_path(self):
        db = build_db(access_path=["n"])
        plan = db.data.plan_select(
            parse("SELECT ALL FROM part ORDER BY n DESC"))
        assert plan.order_served_by_access
        assert plan.root_access.detail["order"] == "ap"
        got = [m.atom["n"] for m in
               db.query("SELECT ALL FROM part ORDER BY n DESC LIMIT 3")]
        assert got == [59, 58, 57]

    def test_multi_attr_desc_served(self):
        db = build_db(sort_order=["grp", "n"])
        plan = db.data.plan_select(
            parse("SELECT ALL FROM part ORDER BY grp DESC, n DESC"))
        assert plan.order_served_by_access
        got = [(m.atom["grp"], m.atom["n"]) for m in
               db.query("SELECT ALL FROM part ORDER BY grp DESC, n DESC")]
        assert got == sorted(got, reverse=True)

    def test_ascending_still_served_forward(self):
        db = build_db(sort_order=["n"])
        plan = db.data.plan_select(
            parse("SELECT ALL FROM part ORDER BY n"))
        assert plan.order_served_by_access
        assert not plan.root_access.detail["reverse"]

    def test_longer_access_path_beats_shorter_sort_order(self):
        """A fully-matching (grp, n) access path serves the whole ORDER
        BY; the one-attribute sort order must not shadow it."""
        db = build_db(sort_order=["grp"], access_path=["grp", "n"])
        plan = db.data.plan_select(
            parse("SELECT ALL FROM part ORDER BY grp DESC, n DESC "
                  "LIMIT 4"))
        assert plan.order_served_by_access
        assert plan.root_access.detail["order"] == "ap"
        db.reset_accounting()
        got = [(m.atom["grp"], m.atom["n"]) for m in db.query(
            "SELECT ALL FROM part ORDER BY grp DESC, n DESC LIMIT 4")]
        assert got == [(3, 59), (3, 55), (3, 51), (3, 47)]
        assert db.io_report().get("operator_rows:MoleculeConstruct") == 4

    def test_equal_match_prefers_sort_order_record_copies(self):
        db = build_db(sort_order=["n"], access_path=["n"])
        plan = db.data.plan_select(
            parse("SELECT ALL FROM part ORDER BY n DESC"))
        assert plan.root_access.detail["order"] == "so"

    def test_access_path_reverse_convenience(self):
        from repro.access.access_path import AccessPath
        db = build_db(access_path=["n"])
        path = db.data.access.atoms.structure("ap")
        assert isinstance(path, AccessPath)
        forward = [key[0] for key, _s in path.scan()]
        backward = [key[0] for key, _s in path.scan(reverse=True)]
        assert backward == list(reversed(forward))


class TestMixedDirectionPrefix:
    def test_leading_desc_run_prefix_served(self):
        db = build_db(sort_order=["grp"])
        plan = db.data.plan_select(
            parse("SELECT ALL FROM part ORDER BY grp DESC, n LIMIT 6"))
        assert not plan.order_served_by_access
        assert plan.order_prefix_served == 1
        assert plan.root_access.detail["reverse"] is True

    def test_mixed_result_equals_full_sort(self):
        mql = "SELECT ALL FROM part ORDER BY grp DESC, n LIMIT 6"
        baseline = [m.atom["n"] for m in build_db().query(mql)]
        served = [m.atom["n"] for m in
                  build_db(sort_order=["grp"]).query(mql)]
        assert served == baseline
        # grp 3 holds parts 3, 7, 11, ... — ascending n within the group.
        assert served == [3, 7, 11, 15, 19, 23]

    def test_mixed_prefix_cuts_construction(self):
        db = build_db(sort_order=["grp"])
        db.reset_accounting()
        statement = parse("SELECT ALL FROM part ORDER BY grp DESC, n "
                          "LIMIT 6")
        plan = db.data.plan_select(statement)
        pipeline = plan.compile(db.data)
        assert [m.atom["n"] for m in pipeline] == [3, 7, 11, 15, 19, 23]
        topk = _find(pipeline, TopK)
        assert topk.bounds_pushed > 0
        # grp 3 holds 15 parts; the reverse walk stops at the first
        # grp-2 entry without constructing it.
        assert db.io_report().get(
            "operator_rows:MoleculeConstruct") == 15

    def test_explain_shows_prefix_served_and_direction(self):
        db = build_db(sort_order=["grp"])
        text = db.explain("SELECT ALL FROM part ORDER BY grp DESC, n "
                          "LIMIT 6", analyze=True)
        assert "order_prefix_served=1" in text
        assert "dynamic bound into the reverse scan" in text
        assert "SORT SCAN so ON part (grp) DESC" in text

    def test_direction_flip_breaks_prefix(self):
        """ORDER BY grp, n DESC over a (grp, n) sort order serves only
        the first attribute — the direction flip ends the uniform run."""
        db = build_db(sort_order=["grp", "n"])
        plan = db.data.plan_select(
            parse("SELECT ALL FROM part ORDER BY grp, n DESC LIMIT 4"))
        assert not plan.order_served_by_access
        assert plan.order_prefix_served == 1
        mql = "SELECT ALL FROM part ORDER BY grp, n DESC LIMIT 4"
        assert [m.atom["n"] for m in db.query(mql)] == \
            [m.atom["n"] for m in build_db().query(mql)]


class TestTieBreakConsistency:
    """Every backing of a descending scan agrees with the stable sort:
    equal keys arrive in insertion (ascending surrogate) order."""

    def backends(self):
        return {
            "sort_order": build_db(sort_order=["grp"]),
            "access_path": build_db(access_path=["grp"]),
            "explicit": build_db(),
        }

    def test_desc_scan_paths_agree_on_ties(self):
        results = {}
        for label, db in self.backends().items():
            scan = SortScan(db.data.access.atoms, "part", ["grp"],
                            reverse=True)
            results[label] = [values["n"] for _s, values in scan]
        assert results["sort_order"] == results["access_path"] \
            == results["explicit"]
        # Within each equal-grp run the parts keep insertion order.
        assert results["explicit"][:15] == list(range(3, N_PARTS, 4))

    def test_desc_query_equals_stable_sort_operator(self):
        mql = "SELECT ALL FROM part ORDER BY grp DESC"
        baseline = [m.atom["n"] for m in build_db().query(mql)]
        for label, db in self.backends().items():
            assert [m.atom["n"] for m in db.query(mql)] == baseline, label


class TestDynamicBound:
    def test_walk_stops_with_the_bound(self):
        db = build_db(sort_order=["grp"], n_parts=1000)
        db.reset_accounting()
        statement = parse("SELECT ALL FROM part ORDER BY grp, n LIMIT 5")
        plan = db.data.plan_select(statement)
        pipeline = plan.compile(db.data)
        list(pipeline)
        report = db.io_report()
        # grp 0 holds 250 of 1000 parts: the walk visits the grp-0 run
        # plus the single grp-1 entry that passes the bound.
        assert report.get("sort_scan_entries_walked") == 251
        assert report.get("operator_rows:MoleculeConstruct") == 250

    def test_bound_off_constructs_one_more(self):
        db = build_db(sort_order=["grp"], n_parts=1000)
        db.reset_accounting()
        plan = db.data.plan_select(
            parse("SELECT ALL FROM part ORDER BY grp, n LIMIT 5"))
        pipeline = plan.compile(db.data, push_bound=False)
        list(pipeline)
        assert _find(pipeline, TopK).cut_short
        assert db.io_report().get(
            "operator_rows:MoleculeConstruct") == 251

    def test_bound_results_equal_unbounded(self):
        mql = "SELECT ALL FROM part ORDER BY grp, n LIMIT 7 OFFSET 2"
        with_bound = [m.atom["n"] for m in
                      build_db(sort_order=["grp"]).query(mql)]
        without = [m.atom["n"] for m in build_db().query(mql)]
        assert with_bound == without

    def test_reopen_after_bound_replays_cached_run(self):
        db = build_db(sort_order=["grp"])
        result = db.query("SELECT ALL FROM part ORDER BY grp, n LIMIT 4")
        first = [m.atom["n"] for m in result]
        result.reopen()
        assert [m.atom["n"] for m in result] == first


class TestParallelShaping:
    def test_served_order_limits_the_prologue(self):
        db = build_db(sort_order=["n"])
        decomposer = SemanticDecomposer(db.data)
        plan, units = decomposer.decompose_select(
            "SELECT ALL FROM part ORDER BY n DESC LIMIT 5")
        assert plan.order_served_by_access
        assert len(units) == 5          # one DU per window member only
        result = decomposer.run_all(plan, units, partitions=3)
        assert [m.atom["n"] for m in result] == [59, 58, 57, 56, 55]

    def test_prefix_bound_prunes_the_prologue(self):
        db = build_db(sort_order=["grp"])
        decomposer = SemanticDecomposer(db.data)
        plan, units = decomposer.decompose_select(
            "SELECT ALL FROM part ORDER BY grp DESC, n LIMIT 6")
        assert plan.order_prefix_served == 1
        # grp 3 holds 15 parts; no DU beyond that group is created.
        assert len(units) == 15
        result = decomposer.run_all(plan, units, partitions=4)
        assert [m.atom["n"] for m in result] == [3, 7, 11, 15, 19, 23]

    def test_root_only_residual_keeps_prefix_shaping(self):
        # An OR qualification is not sargable: it stays residual, the
        # sort order still serves the ORDER BY.  Because the residual
        # touches only root attributes, the prologue can evaluate it
        # per root atom and still truncate at the window — counting
        # only *qualified* roots, so disqualified ones never displace a
        # window member.
        db = build_db(sort_order=["n"])
        decomposer = SemanticDecomposer(db.data)
        plan, units = decomposer.decompose_select(
            "SELECT ALL FROM part WHERE n < 4 OR n > 54 "
            "ORDER BY n DESC LIMIT 8")
        assert plan.order_served_by_access
        assert plan.residual_where is not None
        assert len(units) == 8          # window of qualified roots only
        result = decomposer.run_all(plan, units, partitions=3)
        assert [m.atom["n"] for m in result] == \
            [59, 58, 57, 56, 55, 3, 2, 1]

    def test_parallel_equals_serial_under_desc(self):
        from repro.parallel import parallel_select
        db = build_db(sort_order=["grp"])
        mql = "SELECT ALL FROM part ORDER BY grp DESC, n LIMIT 6"
        serial = [m.atom["n"] for m in db.query(mql)]
        outcome = parallel_select(db, mql, processors=4)
        assert [m.atom["n"] for m in outcome.result] == serial


class TestOrderByDiagnostics:
    def test_wrong_label_reported_as_wrong_label(self):
        db = build_db()
        with pytest.raises(ValidationError) as excinfo:
            db.query("SELECT ALL FROM part ORDER BY widget.n")
        message = str(excinfo.value)
        assert "widget" in message
        assert "root label 'part'" in message

    def test_deep_path_still_rejected_by_shape(self):
        db = build_db()
        with pytest.raises(ValidationError) as excinfo:
            db.query("SELECT ALL FROM part ORDER BY a.b.c")
        assert "root attributes only" in str(excinfo.value)


class TestCursorContract:
    def test_reopen_mid_iteration_under_desc_order(self):
        db = build_db(sort_order=["n"])
        result = db.query("SELECT ALL FROM part ORDER BY n DESC LIMIT 10")
        first_three = [result.fetch_next().atom["n"] for _ in range(3)]
        assert first_three == [59, 58, 57]
        result.reopen()                 # mid-iteration: legal, restarts
        assert [m.atom["n"] for m in result] == list(range(59, 49, -1))

    def test_reopen_after_partial_close_raises(self):
        db = build_db(sort_order=["n"])
        result = db.query("SELECT ALL FROM part ORDER BY n DESC LIMIT 10")
        result.fetch_next()
        result.close()
        assert result.truncated
        with pytest.raises(CursorStateError):
            result.reopen()

    def test_close_after_complete_fetch_is_not_truncated(self):
        """A cursor that consumed every molecule but never pulled the
        terminal None is complete — close() must not poison reopen()."""
        db = build_db(sort_order=["n"])
        result = db.query("SELECT ALL FROM part ORDER BY n DESC LIMIT 3")
        assert [result.fetch_next().atom["n"] for _ in range(3)] == \
            [59, 58, 57]
        result.close()                 # all 3 fetched; nothing pending
        assert not result.truncated
        result.reopen()
        assert len(result) == 3

    def test_close_on_empty_result_is_not_truncated(self):
        db = build_db()
        result = db.query("SELECT ALL FROM part WHERE n > 999 "
                          "ORDER BY n DESC")
        result.close()
        assert not result.truncated
        result.reopen()
        assert len(result) == 0

    def test_truncated_set_refuses_whole_set_accessors(self):
        db = build_db()
        result = db.query("SELECT ALL FROM part ORDER BY grp, n LIMIT 5")
        result.fetch_next()
        result.close()
        assert result.truncated
        with pytest.raises(CursorStateError):
            len(result)
        with pytest.raises(CursorStateError):
            result.to_dicts()
        # The streaming interface still serves the cached prefix
        # (close() probed one molecule into the cache alongside it).
        assert [m.atom["n"] for m in result] == [0, 4]

    def test_fetch_next_interleaved_with_indexing_on_topk(self):
        db = build_db()
        result = db.query("SELECT ALL FROM part ORDER BY grp, n LIMIT 5")
        first = result.fetch_next()
        assert first.atom["n"] == 0
        # Indexing materialises ahead without moving the fetch cursor.
        assert result[3].atom["n"] == 12
        assert result.fetch_next().atom["n"] == 4
        assert len(result) == 5
        assert result.fetch_next().atom["n"] == 8
