"""Tests: snapshot reads (copy-on-write atom versions) and the
process-parallel construction pool.

The version store and the :class:`SnapshotView` facade are exercised
directly first; then the serving layer's end-to-end guarantees: a
pinned cursor never sees a concurrent commit, reads acquire zero
type-level S locks, readers overlap inside the engine lock, and the
``fork``-based worker pool produces byte-identical results to the
threaded path on extra processes.
"""

import os
import threading

import pytest

from repro import Prima
from repro.errors import (
    AtomNotFoundError,
    CursorStateError,
    DecompositionError,
    SessionStateError,
)

N_ITEMS = 96
GROUPS = 6


@pytest.fixture
def db():
    database = Prima()
    database.execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, "
                     "n: INTEGER, grp: INTEGER) KEYS_ARE (n)")
    for i in range(N_ITEMS):
        database.insert_atom("item", {"n": i, "grp": i % GROUPS})
    return database


@pytest.fixture
def manager(db):
    return db.serve(max_sessions=4)


# ---------------------------------------------------------------------------
# The version store (unit level)
# ---------------------------------------------------------------------------

class TestAtomVersionStore:
    def test_publish_advances_the_epoch(self, db):
        store = db.access.atoms.version_store()
        before = store.epoch
        db.insert_atom("item", {"n": 9000})
        assert store.epoch > before

    def test_preserve_is_a_noop_without_pins(self, db):
        store = db.access.atoms.version_store()
        surrogate = db.access.atoms.find_by_key("item", (3,))
        db.modify_atom(surrogate, {"grp": 99})
        assert store.versions_preserved == 0
        assert not store.pinned

    def test_first_write_per_window_wins(self, db):
        store = db.access.atoms.version_store()
        surrogate = db.access.atoms.find_by_key("item", (3,))
        snapshot = db.data.open_snapshot()
        try:
            db.modify_atom(surrogate, {"grp": 50})
            db.modify_atom(surrogate, {"grp": 60})
            # Both writes landed after the pin, but only the oldest
            # pre-image matters to the pinned reader.
            assert snapshot.get(surrogate)["grp"] == 3 % GROUPS
        finally:
            snapshot.release()

    def test_unpin_garbage_collects_versions(self, db):
        store = db.access.atoms.version_store()
        surrogate = db.access.atoms.find_by_key("item", (4,))
        snapshot = db.data.open_snapshot()
        db.modify_atom(surrogate, {"grp": 77})
        assert store.versions_preserved == 1
        snapshot.release()
        assert not store.pinned
        assert store.changed_since(0) == {}

    def test_release_is_idempotent(self, db):
        snapshot = db.data.open_snapshot()
        snapshot.release()
        snapshot.release()
        assert not db.access.atoms.version_store().pinned


# ---------------------------------------------------------------------------
# SnapshotView semantics
# ---------------------------------------------------------------------------

class TestSnapshotView:
    def test_creations_after_the_epoch_are_invisible(self, db):
        with db.data.open_snapshot() as snapshot:
            created = db.insert_atom("item", {"n": 9100})
            assert not snapshot.exists(created)
            with pytest.raises(AtomNotFoundError):
                snapshot.get(created)
            assert snapshot.count("item") == N_ITEMS
            assert db.access.atoms.count("item") == N_ITEMS + 1

    def test_deletions_after_the_epoch_are_resurrected(self, db):
        surrogate = db.access.atoms.find_by_key("item", (10,))
        with db.data.open_snapshot() as snapshot:
            db.delete_atom(surrogate)
            assert not db.access.atoms.exists(surrogate)
            assert snapshot.exists(surrogate)
            assert snapshot.get(surrogate)["n"] == 10
            assert snapshot.count("item") == N_ITEMS

    def test_modifications_read_their_epoch_values(self, db):
        surrogate = db.access.atoms.find_by_key("item", (11,))
        with db.data.open_snapshot() as snapshot:
            db.modify_atom(surrogate, {"grp": 1234})
            assert snapshot.get(surrogate)["grp"] == 11 % GROUPS
            assert db.access.atoms.get(surrogate)["grp"] == 1234

    def test_find_by_key_honours_moved_keys(self, db):
        surrogate = db.access.atoms.find_by_key("item", (12,))
        with db.data.open_snapshot() as snapshot:
            db.modify_atom(surrogate, {"n": 9200})
            # The live holder of n=9200 held n=12 at the epoch.
            assert snapshot.find_by_key("item", (12,)) == surrogate
            assert snapshot.find_by_key("item", (9200,)) is None
            assert db.access.atoms.find_by_key("item", (9200,)) == surrogate

    def test_ordered_scan_merges_displaced_atoms(self, db):
        # A key move after the pin displaces the atom in the live index
        # walk; the snapshot scan merges its epoch values back in at
        # the correct sorted position.
        from repro.data.result import ResultSet
        db.execute_ldl("CREATE SORT ORDER item_so ON item (n)")
        prepared = db.prepare("SELECT ALL FROM item WHERE grp = 0 "
                              "ORDER BY n")
        snapshot = db.data.open_snapshot()
        try:
            target = db.access.atoms.find_by_key("item", (18,))
            db.modify_atom(target, {"n": 9999})
            plan = prepared.bind((), {})
            rows = [m.atom["n"] for m in
                    ResultSet(source=plan.compile(db.data,
                                                  snapshot=snapshot))]
            assert rows == [n for n in range(N_ITEMS)
                            if n % GROUPS == 0]
        finally:
            snapshot.release()


# ---------------------------------------------------------------------------
# Serving: snapshot isolation end to end
# ---------------------------------------------------------------------------

class TestServingIsolation:
    def test_pinned_cursor_never_sees_concurrent_checkin(self, db, manager):
        reader = manager.open()
        writer = manager.open()
        target = db.access.atoms.find_by_key("item", (7,))
        cursor = reader.query("SELECT ALL FROM item WHERE grp = 1",
                              fetch_size=4)
        first = cursor.fetch_many(2)
        writer.checkin({target: {"grp": 999}})
        rest = cursor.fetch_many(N_ITEMS)
        rows = sorted(m.atom["n"] for m in first + rest)
        assert rows == [n for n in range(N_ITEMS) if n % GROUPS == 1]
        # A cursor opened after the checkin sees the new state.
        after = sorted(m.atom["n"] for m in
                       reader.query("SELECT ALL FROM item WHERE grp = 1"))
        assert 7 not in after
        reader.close()
        writer.close()

    def test_writer_commit_during_open_cursor(self, db, manager):
        reader = manager.open()
        writer = manager.open()
        cursor = reader.query("SELECT ALL FROM item", fetch_size=8)
        head = cursor.fetch_many(3)
        assert writer.execute("INSERT item (n = 9300)").affected == 1
        assert writer.execute(
            "DELETE ALL FROM item WHERE n = 50").affected == 1
        rows = [m.atom["n"]
                for m in head + cursor.fetch_many(N_ITEMS + 10)]
        assert len(rows) == N_ITEMS
        assert 9300 not in rows and 50 in rows
        reader.close()
        writer.close()

    def test_reopen_keeps_the_pinned_epoch(self, db, manager):
        reader = manager.open()
        writer = manager.open()
        cursor = reader.open_cursor("SELECT ALL FROM item WHERE grp = 2",
                                    fetch_size=4)
        before = [m.atom["n"] for m in cursor]
        writer.execute("INSERT item (n = 9400, grp = 2)")
        cursor.rewind()
        # REOPEN replays the same pipeline against the same snapshot —
        # the new atom stays invisible until the cursor is re-opened.
        assert [m.atom["n"] for m in cursor] == before
        fresh = reader.query("SELECT ALL FROM item WHERE grp = 2")
        assert 9400 in [m.atom["n"] for m in fresh]
        reader.close()
        writer.close()

    def test_reopen_after_truncation_still_raises(self, db, manager):
        with manager.open() as session:
            result = session.query("SELECT ALL FROM item", fetch_size=4)
            result.fetch_many(4)
            result.close()   # molecules pending -> truncated
            with pytest.raises((CursorStateError, SessionStateError)):
                result.reopen()

    def test_snapshot_pin_released_on_close(self, db, manager):
        store = db.access.atoms.version_store()
        with manager.open() as session:
            cursor = session.open_cursor("SELECT ALL FROM item",
                                         fetch_size=8)
            assert store.pinned
            cursor.close()
            assert not store.pinned

    def test_reads_acquire_zero_type_level_s_locks(self, db, manager):
        with manager.open() as session:
            before = dict(manager.txns.locks.grants)
            session.query("SELECT ALL FROM item", fetch_size=8).materialize()
            session.query("SELECT ALL FROM item WHERE grp = 3").materialize()
            grants = manager.txns.locks.grants
            assert grants["S"] - before["S"] == 0
        report = db.io_report()
        assert report["serve_snapshot_reads"] == 2

    def test_reader_progresses_while_peer_retains_x(self, db, manager):
        writer = manager.open()
        writer.execute("INSERT item (n = 9500)")   # session retains X
        reader = manager.open()
        rows = reader.query("SELECT ALL FROM item WHERE n = 9500")
        assert len(rows) == 1
        reader.close()
        writer.close()

    def test_readers_overlap_inside_the_engine_lock(self, db, manager):
        # Structural proof that the reader side is shared: four threads
        # inside it at once (impossible under the old engine RLock).
        barrier = threading.Barrier(4, timeout=10)

        def read() -> None:
            with manager.engine.reader():
                barrier.wait()

        threads = [threading.Thread(target=read, daemon=True)
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert manager.engine.max_concurrent_readers >= 4

    def test_concurrent_sessions_fetch_correct_sets(self, db, manager):
        # Many sessions streaming concurrently against one engine:
        # every session delivers exactly its group's set, batches
        # interleaving freely on the shared reader side.
        errors: list[BaseException] = []

        def stream(group: int) -> None:
            try:
                session = manager.open()
                rows = [m.atom["n"] for m in
                        session.query(f"SELECT ALL FROM item "
                                      f"WHERE grp = {group}",
                                      fetch_size=4)]
                expected = [n for n in range(N_ITEMS)
                            if n % GROUPS == group]
                assert [n for n in rows if n < N_ITEMS] == expected
                session.close()
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [threading.Thread(target=stream, args=(g,), daemon=True)
                   for g in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors


# ---------------------------------------------------------------------------
# EXPLAIN over the wire
# ---------------------------------------------------------------------------

class TestRemoteExplain:
    def test_session_explain_returns_the_plan(self, db, manager):
        with manager.open() as session:
            text = session.explain("SELECT ALL FROM item WHERE grp = 1")
            assert "MOLECULE TYPE SCAN item" in text
            assert "pipeline:" in text
        assert db.io_report()["serve_explains"] == 1

    def test_explain_is_billed_as_a_message_pair(self, db, manager):
        before = manager.stats.snapshot()["messages"]
        with manager.open() as session:
            session.explain("SELECT ALL FROM item")
        assert manager.stats.snapshot()["messages"] == before + 2

    def test_explain_rejects_dml(self, manager):
        with manager.open() as session:
            with pytest.raises(SessionStateError):
                session.explain("INSERT item (n = 9600)")

    def test_remote_cursor_ships_plan_text(self, manager):
        with manager.open() as session:
            cursor = session.open_cursor("SELECT ALL FROM item WHERE grp = 2",
                                         fetch_size=4)
            assert "MOLECULE TYPE SCAN item" in cursor.explain()
            cursor.close()


# ---------------------------------------------------------------------------
# Process-parallel construction
# ---------------------------------------------------------------------------

def _fork_available() -> bool:
    import multiprocessing
    return "fork" in multiprocessing.get_all_start_methods()


class TestProcessParallel:
    QUERY = "SELECT ALL FROM item WHERE grp = 1 ORDER BY n"

    def test_modes_produce_identical_results(self, db):
        serial = [m.atom["n"] for m in db.query(self.QUERY)]
        threaded = db.parallel_select(self.QUERY, processors=3,
                                      mode="threads")
        forked = db.parallel_select(self.QUERY, processors=3,
                                    mode="processes")
        assert [m.atom["n"] for m in threaded.result] == serial
        assert [m.atom["n"] for m in forked.result] == serial

    @pytest.mark.skipif(not _fork_available(),
                        reason="fork start method unavailable")
    def test_processes_run_in_distinct_pids(self, db):
        outcome = db.parallel_select(self.QUERY, processors=3,
                                     mode="processes")
        children = outcome.worker_pids - {os.getpid()}
        assert children, "no forked worker constructed molecules"

    def test_threads_stay_in_one_pid(self, db):
        outcome = db.parallel_select(self.QUERY, processors=3,
                                     mode="threads")
        assert outcome.worker_pids == {os.getpid()}

    def test_unknown_mode_rejected(self, db):
        with pytest.raises(DecompositionError):
            db.parallel_select(self.QUERY, mode="fibers")

    def test_parallel_query_inside_session_process_mode(self, db):
        manager = db.serve(max_sessions=2, parallel_mode="processes")
        with manager.open() as session:
            outcome = session.parallel_query(self.QUERY, processors=3)
            rows = [m.atom["n"] for m in outcome.result]
        assert rows == [n for n in range(N_ITEMS) if n % GROUPS == 1]

    def test_serve_knob_validation(self, db):
        with pytest.raises(ValueError):
            db.serve(parallel_mode="fibers")

    @pytest.mark.skipif(not _fork_available(),
                        reason="fork start method unavailable")
    def test_process_pool_with_topk_window(self, db):
        query = "SELECT ALL FROM item ORDER BY grp, n LIMIT 7"
        serial = [(m.atom["grp"], m.atom["n"]) for m in db.query(query)]
        outcome = db.parallel_select(query, processors=4, mode="processes")
        assert [(m.atom["grp"], m.atom["n"])
                for m in outcome.result] == serial
