"""Unit tests: slotted pages."""

import pytest

from repro.errors import PageOverflowError, StorageError
from repro.storage.page import PAGE_TYPE_DATA, PAGE_TYPE_META, Page


@pytest.fixture
def page() -> Page:
    return Page.format(512, page_no=42)


class TestHeader:
    def test_format_fields(self, page):
        assert page.page_no == 42
        assert page.page_type == PAGE_TYPE_DATA
        assert page.slot_count == 0
        assert page.size == 512

    def test_page_type_settable(self, page):
        page.page_type = PAGE_TYPE_META
        assert page.page_type == PAGE_TYPE_META

    def test_serialise_roundtrip(self, page):
        page.insert(b"payload")
        image = page.to_bytes()
        clone = Page.from_bytes(image)
        assert clone.read(0) == b"payload"
        assert clone.page_no == 42

    def test_bad_magic_rejected(self):
        with pytest.raises(StorageError):
            Page.from_bytes(bytes(512))

    def test_checksum_detects_corruption(self, page):
        page.insert(b"payload")
        image = bytearray(page.to_bytes())
        clone = Page.from_bytes(bytes(image))
        assert clone.verify_checksum()
        image[100] ^= 0xFF
        # keep the magic intact, corrupt the body
        corrupted = Page(bytearray(image))
        assert not corrupted.verify_checksum()

    def test_bad_size_rejected(self):
        with pytest.raises(Exception):
            Page(bytearray(700))


class TestRecords:
    def test_insert_read(self, page):
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_multiple_records(self, page):
        slots = [page.insert(bytes([i]) * 10) for i in range(5)]
        for i, slot in enumerate(slots):
            assert page.read(slot) == bytes([i]) * 10

    def test_delete_frees_slot(self, page):
        slot = page.insert(b"gone")
        page.delete(slot)
        with pytest.raises(StorageError):
            page.read(slot)

    def test_deleted_slot_reused(self, page):
        first = page.insert(b"a")
        page.insert(b"b")
        page.delete(first)
        again = page.insert(b"c")
        assert again == first
        assert page.read(again) == b"c"

    def test_update_in_place(self, page):
        slot = page.insert(b"aaaa")
        page.update(slot, b"bb")
        assert page.read(slot) == b"bb"

    def test_update_grow_relocates(self, page):
        slot = page.insert(b"aa")
        page.insert(b"bb")
        page.update(slot, b"c" * 100)
        assert page.read(slot) == b"c" * 100

    def test_slot_numbers_stable_across_compaction(self, page):
        slots = [page.insert(bytes([i]) * 30) for i in range(8)]
        for victim in slots[::2]:
            page.delete(victim)
        # force compaction by filling the page
        big = page.insert(b"x" * (page.free_space - 8))
        for i in (1, 3, 5, 7):
            assert page.read(slots[i]) == bytes([i]) * 30
        assert page.read(big)

    def test_overflow_raises(self, page):
        with pytest.raises(PageOverflowError):
            page.insert(b"x" * 600)

    def test_overflow_after_fill(self, page):
        page.insert(b"x" * 400)
        with pytest.raises(PageOverflowError):
            page.insert(b"y" * 200)

    def test_update_overflow_keeps_record(self, page):
        slot = page.insert(b"small")
        page.insert(b"x" * 300)
        with pytest.raises(PageOverflowError):
            page.update(slot, b"y" * 400)
        assert page.read(slot) == b"small"

    def test_records_listing(self, page):
        page.insert(b"a")
        slot_b = page.insert(b"b")
        page.delete(slot_b)
        page.insert(b"c")
        assert [payload for _slot, payload in page.records()] == [b"a", b"c"]

    def test_empty_slot_errors(self, page):
        with pytest.raises(StorageError):
            page.read(0)
        with pytest.raises(StorageError):
            page.delete(99)


class TestRawPayload:
    def test_write_read_payload(self, page):
        blob = bytes(range(200))
        page.write_payload(blob)
        assert page.read_payload() == blob

    def test_payload_capacity(self):
        assert Page.payload_capacity(512) == 512 - 16

    def test_payload_overflow(self, page):
        with pytest.raises(PageOverflowError):
            page.write_payload(bytes(600))

    def test_payload_overwrite_shrinks(self, page):
        page.write_payload(bytes(100))
        page.write_payload(bytes(10))
        assert len(page.read_payload()) == 10
