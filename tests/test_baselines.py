"""Tests: the Fig. 2.1 baselines (hierarchical and network stores)."""

import pytest

from repro import Prima
from repro.baselines import HierarchicalStore, NetworkStore
from repro.workloads import brep


@pytest.fixture(scope="module")
def stores():
    db = Prima()
    handles = brep.generate(db, n_solids=3)
    hierarchical = HierarchicalStore()
    hierarchical.load_from_prima(db)
    network = NetworkStore()
    network.load_from_prima(db)
    return handles, hierarchical, network


class TestHierarchical:
    def test_redundant_copies(self, stores):
        handles, hierarchical, _network = stores
        counts = hierarchical.counts_by_kind()
        # every edge borders 2 faces -> 2 copies; every point sits on
        # 3 faces x (2 edges per face) = 6 copies
        assert counts["edge"] == 2 * len(handles.edges)
        assert counts["point"] == 6 * len(handles.points)
        assert counts["face"] == len(handles.faces)

    def test_more_records_than_mad(self, stores):
        handles, hierarchical, _network = stores
        mad_atoms = (len(handles.breps) + len(handles.faces)
                     + len(handles.edges) + len(handles.points))
        assert hierarchical.record_count > 2 * mad_atoms

    def test_downward_traversal_works(self, stores):
        _handles, hierarchical, _network = stores
        delivered, touched = hierarchical.downward_traversal(1713)
        assert delivered == 6 + 24 + 48   # faces, edge copies, point copies
        assert touched >= delivered

    def test_reverse_traversal_scans_everything(self, stores):
        handles, hierarchical, _network = stores
        db = handles.db
        placement = db.access.get(handles.points[0])["placement"]
        faces, touched = hierarchical.reverse_traversal_cost(
            placement["x_coord"], placement["y_coord"],
            placement["z_coord"])
        assert faces == 3
        assert touched == hierarchical.record_count   # full scan


class TestNetwork:
    def test_no_entity_redundancy(self, stores):
        handles, _hierarchical, network = stores
        counts = network.counts_by_kind()
        assert counts["edge"] == len(handles.edges)
        assert counts["point"] == len(handles.points)

    def test_link_records_present(self, stores):
        handles, _hierarchical, network = stores
        counts = network.counts_by_kind()
        assert counts["link:face_edge"] == 4 * len(handles.faces)
        assert counts["link:edge_point"] == 2 * len(handles.edges)
        assert network.link_record_count > 0

    def test_symmetric_traversal_possible(self, stores):
        handles, _hierarchical, network = stores
        members, _t = network.members_of("face_edge", handles.faces[0])
        assert len(members) == 4
        owners, _t = network.owners_of("face_edge", handles.edges[0])
        assert len(owners) == 2

    def test_reverse_traversal_through_links(self, stores):
        handles, _hierarchical, network = stores
        faces, touched = network.faces_of_point(handles.points[0])
        assert len(faces) == 3
        assert touched > len(faces)    # indirection overhead

    def test_smaller_than_hierarchical(self, stores):
        _handles, hierarchical, network = stores
        assert network.byte_size < hierarchical.byte_size


class TestMadComparison:
    def test_mad_reverse_traversal_direct(self, stores):
        """MAD answers point->faces by following back-references: the
        records touched are just the atoms of the answer path."""
        handles, hierarchical, _network = stores
        db = handles.db
        db.reset_accounting()
        point = db.access.get(handles.points[0])
        faces = point["face"]
        reads = 1 + len(faces)
        for face in faces:
            db.access.get(face)
        assert len(faces) == 3
        assert reads < hierarchical.record_count / 10
