"""Unit tests: the atom manager — CRUD, keys, back-reference maintenance."""

import pytest

from repro.errors import (
    AtomNotFoundError,
    CardinalityError,
    DuplicateKeyError,
    IntegrityError,
    TypeMismatchError,
    UnknownTypeError,
)
from repro.access.integrity import verify_database
from repro.mad.types import Surrogate


class TestInsertGet:
    def test_insert_returns_surrogate(self, face_edge_access):
        s = face_edge_access.insert("face", {"square_dim": 1.0})
        assert isinstance(s, Surrogate)
        assert s.atom_type == "face"

    def test_get_includes_identifier(self, face_edge_access):
        s = face_edge_access.insert("face", {"square_dim": 1.0})
        values = face_edge_access.get(s)
        assert values["face_id"] == s
        assert values["square_dim"] == 1.0

    def test_defaults_applied(self, face_edge_access):
        s = face_edge_access.insert("face")
        values = face_edge_access.get(s)
        assert values["border"] == []
        assert values["square_dim"] is None

    def test_attribute_selection(self, face_edge_access):
        s = face_edge_access.insert("face", {"square_dim": 2.0,
                                             "name": "top"})
        values = face_edge_access.get(s, attrs=["name"])
        assert set(values) == {"face_id", "name"}

    def test_unknown_attribute_rejected(self, face_edge_access):
        with pytest.raises(UnknownTypeError):
            face_edge_access.insert("face", {"nope": 1})
        s = face_edge_access.insert("face")
        with pytest.raises(AtomNotFoundError):
            face_edge_access.get(s, attrs=["nope"])

    def test_type_checked(self, face_edge_access):
        with pytest.raises(TypeMismatchError):
            face_edge_access.insert("face", {"square_dim": "not a number"})

    def test_identifier_not_writable(self, face_edge_access):
        with pytest.raises(TypeMismatchError):
            face_edge_access.insert("face", {"face_id": Surrogate("face", 9)})

    def test_unknown_surrogate(self, face_edge_access):
        with pytest.raises(AtomNotFoundError):
            face_edge_access.get(Surrogate("face", 999))

    def test_atoms_of_type_physical_order(self, face_edge_access):
        inserted = [face_edge_access.insert("edge", {"length": float(i)})
                    for i in range(5)]
        got = [s for s, _v in face_edge_access.atoms.atoms_of_type("edge")]
        assert got == inserted

    def test_count(self, face_edge_access):
        for i in range(3):
            face_edge_access.insert("edge")
        assert face_edge_access.atoms.count("edge") == 3


class TestKeys:
    def test_key_lookup(self, face_edge_access):
        s = face_edge_access.insert("face", {"name": "top"})
        assert face_edge_access.atoms.find_by_key("face", "top") == s

    def test_duplicate_key_rejected(self, face_edge_access):
        face_edge_access.insert("face", {"name": "top"})
        with pytest.raises(DuplicateKeyError):
            face_edge_access.insert("face", {"name": "top"})

    def test_key_moves_on_modify(self, face_edge_access):
        s = face_edge_access.insert("face", {"name": "old"})
        face_edge_access.modify(s, {"name": "new"})
        assert face_edge_access.atoms.find_by_key("face", "old") is None
        assert face_edge_access.atoms.find_by_key("face", "new") == s

    def test_key_conflict_on_modify(self, face_edge_access):
        face_edge_access.insert("face", {"name": "a"})
        s = face_edge_access.insert("face", {"name": "b"})
        with pytest.raises(DuplicateKeyError):
            face_edge_access.modify(s, {"name": "a"})

    def test_key_released_on_delete(self, face_edge_access):
        s = face_edge_access.insert("face", {"name": "gone"})
        face_edge_access.delete(s)
        assert face_edge_access.atoms.find_by_key("face", "gone") is None
        face_edge_access.insert("face", {"name": "gone"})  # reusable


class TestBackReferences:
    def test_insert_maintains_backrefs(self, face_edge_access):
        e = face_edge_access.insert("edge")
        f = face_edge_access.insert("face", {"border": [e]})
        assert face_edge_access.get(e)["face"] == [f]

    def test_modify_add_and_remove(self, face_edge_access):
        e1 = face_edge_access.insert("edge")
        e2 = face_edge_access.insert("edge")
        f = face_edge_access.insert("face", {"border": [e1]})
        face_edge_access.modify(f, {"border": [e2]})
        assert face_edge_access.get(e1)["face"] == []
        assert face_edge_access.get(e2)["face"] == [f]

    def test_modify_from_either_side(self, face_edge_access):
        e = face_edge_access.insert("edge")
        f = face_edge_access.insert("face")
        face_edge_access.modify(e, {"face": [f]})
        assert face_edge_access.get(f)["border"] == [e]

    def test_delete_disconnects(self, face_edge_access):
        e = face_edge_access.insert("edge")
        f = face_edge_access.insert("face", {"border": [e]})
        face_edge_access.delete(e)
        assert face_edge_access.get(f)["border"] == []

    def test_dangling_reference_rejected(self, face_edge_access):
        ghost = Surrogate("edge", 777)
        with pytest.raises(IntegrityError):
            face_edge_access.insert("face", {"border": [ghost]})

    def test_wrong_target_type_rejected(self, face_edge_access):
        f = face_edge_access.insert("face")
        with pytest.raises(TypeMismatchError):
            face_edge_access.insert("face", {"border": [f]})

    def test_no_violations_after_random_dml(self, face_edge_access):
        import random
        rng = random.Random(3)
        edges = [face_edge_access.insert("edge") for _ in range(10)]
        faces = [face_edge_access.insert(
            "face", {"border": rng.sample(edges, 3)}) for _ in range(6)]
        for _ in range(30):
            action = rng.random()
            if action < 0.4:
                face_edge_access.modify(rng.choice(faces),
                                        {"border": rng.sample(edges, 2)})
            elif action < 0.7 and len(edges) > 3:
                victim = edges.pop(rng.randrange(len(edges)))
                face_edge_access.delete(victim)
            else:
                edges.append(face_edge_access.insert("edge"))
        assert verify_database(face_edge_access.atoms) == []


class TestRestore:
    def test_restore_after_delete(self, face_edge_access):
        e = face_edge_access.insert("edge", {"length": 5.0})
        f = face_edge_access.insert("face", {"border": [e]})
        values = face_edge_access.get(e)
        values.pop("edge_id")
        face_edge_access.delete(e)
        face_edge_access.atoms.restore_atom(e, values)
        assert face_edge_access.get(e)["length"] == 5.0
        assert face_edge_access.get(f)["border"] == [e]
        assert verify_database(face_edge_access.atoms) == []

    def test_restore_existing_rejected(self, face_edge_access):
        e = face_edge_access.insert("edge")
        with pytest.raises(IntegrityError):
            face_edge_access.atoms.restore_atom(e, {"length": 1.0})

    def test_restored_surrogate_not_reissued(self, face_edge_access):
        e = face_edge_access.insert("edge")
        values = face_edge_access.get(e)
        values.pop("edge_id")
        face_edge_access.delete(e)
        face_edge_access.atoms.restore_atom(e, values)
        fresh = face_edge_access.insert("edge")
        assert fresh.number > e.number


class TestSelfReference:
    @pytest.fixture
    def part_access(self):
        from repro.access.system import AccessSystem
        from repro.mad import (IDENTIFIER, AtomType, ReferenceType, Schema,
                               SetType)
        from repro.storage.system import StorageSystem
        schema = Schema()
        schema.create_atom_type(AtomType("part", [
            ("part_id", IDENTIFIER),
            ("sub", SetType(ReferenceType("part", "super"))),
            ("super", SetType(ReferenceType("part", "sub"))),
        ]))
        schema.check_symmetry()
        access = AccessSystem(StorageSystem(), schema)
        access.atoms.register_atom_type("part")
        return access

    def test_recursive_association(self, part_access):
        child = part_access.insert("part")
        parent = part_access.insert("part", {"sub": [child]})
        assert part_access.get(child)["super"] == [parent]
        assert verify_database(part_access.atoms) == []

    def test_atom_referencing_itself(self, part_access):
        lonely = part_access.insert("part")
        part_access.modify(lonely, {"sub": [lonely]})
        values = part_access.get(lonely)
        assert values["sub"] == [lonely]
        assert values["super"] == [lonely]
        assert verify_database(part_access.atoms) == []

    def test_self_reference_removed(self, part_access):
        lonely = part_access.insert("part")
        part_access.modify(lonely, {"sub": [lonely]})
        part_access.modify(lonely, {"sub": []})
        values = part_access.get(lonely)
        assert values["sub"] == [] and values["super"] == []


class TestLongFieldAtoms:
    """Texts and images beyond one page go onto page sequences (3.3)."""

    @pytest.fixture
    def doc_access(self):
        from repro.access.system import AccessSystem
        from repro.mad import BYTE_VAR, CHAR_VAR, IDENTIFIER, AtomType, Schema
        from repro.storage.system import StorageSystem
        schema = Schema()
        schema.create_atom_type(AtomType("doc", [
            ("doc_id", IDENTIFIER),
            ("title", CHAR_VAR),
            ("body", BYTE_VAR),
        ], keys=("title",)))
        schema.check_symmetry()
        access = AccessSystem(StorageSystem(buffer_capacity=64 * 8192),
                              schema)
        access.atoms.register_atom_type("doc")
        return access

    def test_100kb_atom_roundtrip(self, doc_access):
        body = bytes(range(256)) * 400          # 100 KB
        s = doc_access.insert("doc", {"title": "scan", "body": body})
        assert doc_access.get(s)["body"] == body

    def test_long_atom_modify(self, doc_access):
        body = bytes(range(256)) * 100
        s = doc_access.insert("doc", {"title": "a", "body": body})
        doc_access.modify(s, {"body": body * 3})
        assert doc_access.get(s)["body"] == body * 3
        doc_access.modify(s, {"body": b"short now"})
        assert doc_access.get(s)["body"] == b"short now"

    def test_long_atom_delete_releases_pages(self, doc_access):
        before = doc_access.storage.segment("at_doc").allocated_pages
        s = doc_access.insert("doc", {"title": "a",
                                      "body": bytes(100_000)})
        doc_access.delete(s)
        after = doc_access.storage.segment("at_doc").allocated_pages
        assert after <= before + 1   # stub page may remain allocated

    def test_atoms_of_type_sees_long_atoms(self, doc_access):
        doc_access.insert("doc", {"title": "small", "body": b"x"})
        doc_access.insert("doc", {"title": "large",
                                  "body": bytes(50_000)})
        titles = {values["title"] for _s, values
                  in doc_access.atoms.atoms_of_type("doc")}
        assert titles == {"small", "large"}

    def test_long_text_attribute(self, doc_access):
        text = "ein langer text " * 4000
        s = doc_access.insert("doc", {"title": "t", "body": None})
        doc_access.modify(s, {"body": text.encode()})
        assert doc_access.get(s)["body"] == text.encode()
