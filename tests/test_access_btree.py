"""Unit and property tests: the B*-tree access path."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.access.btree import BStarTree, Key, make_key
from repro.errors import AccessError
from repro.mad.types import Surrogate


def s(n: int) -> Surrogate:
    return Surrogate("t", n)


class TestKeys:
    def test_total_order_across_types(self):
        values = [None, False, True, -5, 3.5, 10, "abc", s(1)]
        keys = [make_key(v) for v in values]
        for i in range(len(keys) - 1):
            assert keys[i] < keys[i + 1]

    def test_tuple_keys(self):
        assert make_key((1, "a")) < make_key((1, "b"))
        assert make_key((1,)) < make_key((1, "a"))

    def test_unusable_key_rejected(self):
        tree = BStarTree()
        with pytest.raises(AccessError):
            tree.insert(object(), s(1))

    def test_key_equality_and_hash(self):
        assert make_key(5) == make_key(5)
        assert hash(make_key(5)) == hash(Key((5,)))


class TestBasics:
    def test_insert_search(self):
        tree = BStarTree(order=4)
        tree.insert(10, s(1))
        tree.insert(20, s(2))
        assert tree.search(10) == [s(1)]
        assert tree.search(99) == []

    def test_duplicates_under_one_key(self):
        tree = BStarTree(order=4)
        for n in range(5):
            tree.insert(7, s(n))
        assert sorted(x.number for x in tree.search(7)) == list(range(5))

    def test_duplicate_entry_rejected(self):
        tree = BStarTree()
        tree.insert(1, s(1))
        with pytest.raises(AccessError):
            tree.insert(1, s(1))

    def test_delete(self):
        tree = BStarTree(order=4)
        tree.insert(1, s(1))
        tree.delete(1, s(1))
        assert len(tree) == 0
        with pytest.raises(AccessError):
            tree.delete(1, s(1))

    def test_contains(self):
        tree = BStarTree()
        tree.insert(3, s(1))
        assert tree.contains(3, s(1))
        assert not tree.contains(3, s(2))

    def test_order_too_small(self):
        with pytest.raises(AccessError):
            BStarTree(order=2)

    def test_height_grows(self):
        tree = BStarTree(order=4)
        for n in range(100):
            tree.insert(n, s(n))
        assert tree.height >= 3
        tree.check_invariants()


class TestRangeScans:
    @pytest.fixture
    def tree(self):
        tree = BStarTree(order=6)
        for n in range(0, 100, 2):
            tree.insert(n, s(n))
        return tree

    def test_full_scan_sorted(self, tree):
        keys = [k.values[0] for k, _ in tree.items()]
        assert keys == list(range(0, 100, 2))

    def test_bounded_range(self, tree):
        got = [k.values[0] for k, _ in tree.range(start=10, stop=20)]
        assert got == [10, 12, 14, 16, 18, 20]

    def test_exclusive_bounds(self, tree):
        got = [k.values[0] for k, _ in tree.range(
            start=10, stop=20, include_start=False, include_stop=False)]
        assert got == [12, 14, 16, 18]

    def test_reverse_scan(self, tree):
        got = [k.values[0] for k, _ in tree.range(start=10, stop=20,
                                                  reverse=True)]
        assert got == [20, 18, 16, 14, 12, 10]

    def test_open_start(self, tree):
        got = [k.values[0] for k, _ in tree.range(stop=6)]
        assert got == [0, 2, 4, 6]

    def test_open_stop_reverse(self, tree):
        got = [k.values[0] for k, _ in tree.range(start=94, reverse=True)]
        assert got == [98, 96, 94]

    def test_range_between_keys(self, tree):
        got = [k.values[0] for k, _ in tree.range(start=11, stop=13)]
        assert got == [12]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 60),
                          st.integers(1, 10)), max_size=300))
def test_btree_matches_oracle(ops):
    """Property: a B*-tree behaves exactly like a sorted set of
    (key, surrogate) pairs under arbitrary insert/delete sequences."""
    tree = BStarTree(order=4)
    oracle: set[tuple[int, int]] = set()
    for is_insert, key, number in ops:
        entry = (key, number)
        if is_insert or not oracle:
            if entry not in oracle:
                tree.insert(key, s(number))
                oracle.add(entry)
        else:
            victim = sorted(oracle)[0]
            tree.delete(victim[0], s(victim[1]))
            oracle.discard(victim)
    tree.check_invariants()
    got = [(k.values[0], surr.number) for k, surr in tree.items()]
    assert got == sorted(oracle)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 50), min_size=1, max_size=120, unique=True),
       st.integers(0, 50), st.integers(0, 50))
def test_btree_range_matches_slice(keys, lo, hi):
    """Property: range() equals filtering the sorted key list."""
    tree = BStarTree(order=4)
    for key in keys:
        tree.insert(key, s(key))
    lo, hi = min(lo, hi), max(lo, hi)
    got = [k.values[0] for k, _ in tree.range(start=lo, stop=hi)]
    assert got == [k for k in sorted(keys) if lo <= k <= hi]
    got_rev = [k.values[0] for k, _ in tree.range(start=lo, stop=hi,
                                                  reverse=True)]
    assert got_rev == list(reversed(got))
