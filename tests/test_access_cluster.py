"""Unit tests: atom clusters (Fig. 3.2)."""

import pytest

from repro.errors import AccessError
from repro.mad.molecule import StructureNode


@pytest.fixture
def clustered(face_edge_access):
    access = face_edge_access
    edges = [access.insert("edge", {"length": float(i)}) for i in range(6)]
    faces = [access.insert("face", {"square_dim": float(i),
                                    "border": edges[2 * i:2 * i + 2]})
             for i in range(3)]
    structure = StructureNode("face", "face")
    structure.add_child(StructureNode(
        "edge", "edge", via=access.schema.association("face", "border")))
    cluster = access.create_cluster("fc", structure)
    return access, edges, faces, cluster


class TestMaterialisation:
    def test_one_cluster_per_root(self, clustered):
        _access, _edges, faces, cluster = clustered
        assert cluster.cluster_count == 3
        assert cluster.roots() == sorted(faces)

    def test_characteristic_atom(self, clustered):
        _access, edges, faces, cluster = clustered
        char = cluster.characteristic(faces[0])
        assert char["root"] == faces[0]
        assert set(char["members"]["edge"]) == set(edges[0:2])
        assert faces[0] in char["members"]["face"]

    def test_read_cluster_groups_by_label(self, clustered):
        _access, _edges, faces, cluster = clustered
        members = cluster.read_cluster(faces[1])
        assert len(members["edge"]) == 2
        assert len(members["face"]) == 1

    def test_read_member_relative_addressing(self, clustered):
        _access, edges, faces, cluster = clustered
        atom = cluster.read_member(faces[0], edges[1])
        assert atom["length"] == 1.0

    def test_read_member_unknown_rejected(self, clustered):
        _access, edges, faces, cluster = clustered
        with pytest.raises(AccessError):
            cluster.read_member(faces[0], edges[5])

    def test_unknown_root_rejected(self, clustered):
        access, _edges, _faces, cluster = clustered
        ghost = access.insert("face")
        access.delete(ghost)
        with pytest.raises(AccessError):
            cluster.read_cluster(ghost)

    def test_new_root_insert_materialises(self, clustered):
        access, edges, _faces, cluster = clustered
        new_face = access.insert("face", {"border": [edges[0]]})
        assert new_face in cluster.roots()
        assert len(cluster.read_cluster(new_face)["edge"]) == 1


class TestStaleness:
    def test_member_modify_marks_stale(self, clustered):
        access, edges, faces, cluster = clustered
        access.modify(edges[0], {"length": 99.0})
        assert cluster.is_stale(faces[0])

    def test_lazy_refresh_on_read(self, clustered):
        access, edges, faces, cluster = clustered
        access.modify(edges[0], {"length": 99.0})
        atom = cluster.read_member(faces[0], edges[0])
        assert atom["length"] == 99.0
        assert not cluster.is_stale(faces[0])

    def test_propagate_refreshes(self, clustered):
        access, edges, faces, cluster = clustered
        access.modify(edges[0], {"length": 42.0})
        access.propagate_deferred()
        assert not cluster.is_stale(faces[0])
        assert cluster.read_member(faces[0], edges[0])["length"] == 42.0

    def test_connection_change_updates_membership(self, clustered):
        access, edges, faces, cluster = clustered
        access.modify(faces[0], {"border": [edges[5]]})
        access.propagate_deferred()
        members = set(cluster.members_of(faces[0], "edge"))
        assert members == {edges[5]}

    def test_member_delete_rebuilds(self, clustered):
        access, edges, faces, cluster = clustered
        access.delete(edges[0])
        members = set(cluster.members_of(faces[0], "edge"))
        assert members == {edges[1]}

    def test_root_delete_drops_cluster(self, clustered):
        access, _edges, faces, cluster = clustered
        access.delete(faces[0])
        assert faces[0] not in cluster.roots()
        assert cluster.cluster_count == 2


class TestSharedMembers:
    def test_nm_member_in_two_clusters(self, clustered):
        access, edges, faces, cluster = clustered
        # connect edge 0 to face 1 as well (n:m sharing)
        border = access.get(faces[1])["border"] + [edges[0]]
        access.modify(faces[1], {"border": border})
        access.propagate_deferred()
        in_0 = set(cluster.members_of(faces[0], "edge"))
        in_1 = set(cluster.members_of(faces[1], "edge"))
        assert edges[0] in in_0 and edges[0] in in_1

    def test_shared_member_modify_staleness_both(self, clustered):
        access, edges, faces, cluster = clustered
        border = access.get(faces[1])["border"] + [edges[0]]
        access.modify(faces[1], {"border": border})
        access.propagate_deferred()
        access.modify(edges[0], {"length": 7.0})
        assert cluster.is_stale(faces[0]) and cluster.is_stale(faces[1])


class TestRecursiveCluster:
    def test_recursive_structure_materialised(self, db):
        db.execute_script("""
        CREATE ATOM_TYPE part (part_id: IDENTIFIER, part_no: INTEGER,
          sub: SET_OF (REF_TO (part.super)),
          super: SET_OF (REF_TO (part.sub))) KEYS_ARE (part_no)
        """)
        db.query("SELECT ALL FROM part")
        leaf1 = db.insert_atom("part", {"part_no": 1})
        leaf2 = db.insert_atom("part", {"part_no": 2})
        mid = db.insert_atom("part", {"part_no": 3, "sub": [leaf1]})
        db.execute_ldl("CREATE ATOM_CLUSTER pc FROM part.sub-part (RECURSIVE)")
        top = db.insert_atom("part", {"part_no": 4, "sub": [mid, leaf2]})
        cluster = db.access.atoms.structure("pc")
        members = set(cluster.members_of(top, "part"))
        assert members == {top, mid, leaf1, leaf2}

    def test_drop_cluster_releases_storage(self, clustered):
        access, _edges, _faces, cluster = clustered
        segment = cluster._segment  # noqa: SLF001
        access.drop_structure("fc")
        assert not access.storage.segments.exists(segment)
