"""Tests: the sharded cluster — routing, scatter-gather, invalidation.

Covers the four gates of the sharding layer: routed-vs-scatter result
parity against a single-engine oracle, shard-local TopK bound pushdown
(no shard constructs more than the global window), per-shard DDL
invalidation plus coordinator replan, and daemon-over-cluster parity on
results and accounting.
"""

from __future__ import annotations

import pytest

import repro
from repro import Prima, ShardedCluster, ShardRouter
from repro.errors import DecompositionError, PrimaError
from repro.mad.types import Surrogate
from repro.parallel import parallel_select
from repro.serve import PrimaDaemon, SessionManager
from repro.shard.router import stable_hash

SHARDS = 4
N_CITIES = 60
GROUPS = 6

DDL = ("CREATE ATOM_TYPE city (city_id: IDENTIFIER, name: CHAR_VAR, "
       "pop: INTEGER, grp: INTEGER) KEYS_ARE (name)")


def populate(db, n: int = N_CITIES) -> None:
    db.execute(DDL)
    for i in range(n):
        db.execute(f"INSERT city (name = 'c{i}', pop = {1000 + i * 7}, "
                   f"grp = {i % GROUPS})")


@pytest.fixture
def cluster():
    with ShardedCluster(shards=SHARDS) as c:
        populate(c)
        yield c


@pytest.fixture
def oracle():
    db = Prima()
    populate(db)
    return db


def payloads(molecules, attrs=("name", "pop", "grp")):
    """Surrogate-free comparison payloads (cluster and oracle assign
    different surrogate numbers, so identity attrs are stripped)."""
    return [tuple(m.atom.get(a) for a in attrs) for m in molecules]


# ---------------------------------------------------------------------------
# The router: placement decisions
# ---------------------------------------------------------------------------

class TestRouter:
    def test_stable_hash_is_deterministic_and_type_aware(self):
        assert stable_hash("c7") == stable_hash("c7")
        assert stable_hash(17) == 17
        assert stable_hash(-17) == 17
        assert stable_hash(True) == 1

    def test_hash_routing_consistent_with_insert_placement(self):
        router = ShardRouter(SHARDS)
        for i in range(40):
            key = f"c{i}"
            placed = router.shard_for_insert(("name",), "city",
                                             {"name": key, "pop": i})
            assert placed == router.shard_of_key("city", key)
            assert 0 <= placed < SHARDS

    def test_unroutable_insert_returns_none(self):
        router = ShardRouter(SHARDS)
        assert router.shard_for_insert((), "city", {"pop": 1}) is None
        assert router.shard_for_insert(("name",), "city", {"pop": 1}) is None

    def test_range_routing_partitions_by_split_points(self):
        router = ShardRouter(4, ranges={"city": ("g", "n", "t")})
        assert router.shard_of_key("city", "a") == 0
        assert router.shard_of_key("city", "g") == 1
        assert router.shard_of_key("city", "m") == 1
        assert router.shard_of_key("city", "n") == 2
        assert router.shard_of_key("city", "z") == 3

    def test_range_routing_validates_split_points(self):
        with pytest.raises(PrimaError, match="split point"):
            ShardRouter(4, ranges={"city": ("g",)})
        with pytest.raises(PrimaError, match="ascending"):
            ShardRouter(3, ranges={"city": ("n", "g")})

    def test_surrogate_residue_recovers_owner(self):
        router = ShardRouter(SHARDS)
        for number in range(1, 20):
            assert router.shard_of_surrogate(
                Surrogate("city", number)) == (number - 1) % SHARDS

    def test_cluster_rejects_mismatched_router(self):
        with pytest.raises(PrimaError, match="router is built for"):
            ShardedCluster(shards=4, router=ShardRouter(2))


# ---------------------------------------------------------------------------
# Routed execution: single-key lookups touch exactly one shard
# ---------------------------------------------------------------------------

class TestRoutedLookup:
    def test_data_is_actually_partitioned(self, cluster):
        counts = [engine.access.atoms.count("city")
                  for engine in cluster.engines]
        assert sum(counts) == N_CITIES
        assert all(count > 0 for count in counts)
        assert cluster.access.counters.snapshot()["routed_inserts"] \
            == N_CITIES

    def test_prepared_key_lookup_touches_one_shard(self, cluster, oracle):
        stmt = cluster.prepare("SELECT ALL FROM city WHERE name = ?")
        expected_shard = cluster.router.shard_of_key("city", "c13")
        before = [engine.access.counters.snapshot().get("cluster_queries", 0)
                  for engine in cluster.engines]
        result = stmt.execute("c13")
        rows = payloads(result)
        result.close()
        after = [engine.access.counters.snapshot().get("cluster_queries", 0)
                 for engine in cluster.engines]
        touched = [i for i in range(SHARDS) if after[i] > before[i]]
        assert touched == [expected_shard]
        assert result.shard == expected_shard
        oracle_rows = payloads(
            oracle.execute("SELECT ALL FROM city WHERE name = 'c13'"))
        assert rows == oracle_rows == [("c13", 1000 + 13 * 7, 13 % GROUPS)]
        assert cluster.access.counters.snapshot()["routed_queries"] == 1

    def test_every_key_routes_to_its_owner(self, cluster, oracle):
        stmt = cluster.prepare("SELECT ALL FROM city WHERE name = ?")
        for i in range(0, N_CITIES, 7):
            result = stmt.execute(f"c{i}")
            assert payloads(result) == [(f"c{i}", 1000 + i * 7, i % GROUPS)]
            assert result.shard == cluster.router.shard_of_key("city",
                                                               f"c{i}")
            result.close()

    def test_explain_carries_the_routing_line(self, cluster):
        plan = cluster.explain("SELECT ALL FROM city WHERE name = 'c3'")
        assert f"routed to 1 of {SHARDS} shard(s)" in plan
        scatter = cluster.explain("SELECT ALL FROM city WHERE pop > 1100")
        assert f"scatter to {SHARDS} shard(s)" in scatter

    def test_unbound_parameter_key_falls_back_to_scatter(self, cluster):
        # A plan-time explain of a parameterized key cannot route yet;
        # binding concrete values resolves the target shard.
        stmt = cluster.prepare("SELECT ALL FROM city WHERE name = :n")
        plan = stmt.plan()
        assert plan.routing["mode"] == "routed"
        assert "shard" not in plan.routing
        bound = stmt.bind((), {"n": "c5"})
        assert bound.routing["shard"] == \
            cluster.router.shard_of_key("city", "c5")


# ---------------------------------------------------------------------------
# Scatter-gather parity against the single-engine oracle
# ---------------------------------------------------------------------------

class TestScatterParity:
    def test_full_scan_parity(self, cluster, oracle):
        mine = sorted(payloads(cluster.execute("SELECT ALL FROM city")))
        ref = sorted(payloads(oracle.execute("SELECT ALL FROM city")))
        assert mine == ref
        assert cluster.access.counters.snapshot()["scatter_queries"] == 1

    def test_ordered_topk_byte_identical(self, cluster, oracle):
        mql = "SELECT ALL FROM city ORDER BY pop DESC LIMIT 10"
        assert payloads(cluster.execute(mql)) == \
            payloads(oracle.execute(mql))

    def test_ordered_window_with_offset(self, cluster, oracle):
        mql = ("SELECT ALL FROM city ORDER BY pop DESC "
               "LIMIT 8 OFFSET 5")
        assert payloads(cluster.execute(mql)) == \
            payloads(oracle.execute(mql))

    def test_ordered_stream_without_limit(self, cluster, oracle):
        mql = "SELECT ALL FROM city ORDER BY pop"
        assert payloads(cluster.execute(mql)) == \
            payloads(oracle.execute(mql))

    def test_residual_filter_parity(self, cluster, oracle):
        mql = ("SELECT ALL FROM city WHERE pop > 1100 AND grp = 2 "
               "ORDER BY pop")
        assert payloads(cluster.execute(mql)) == \
            payloads(oracle.execute(mql))

    def test_projection_applies_once_at_the_gather(self, cluster, oracle):
        mql = "SELECT (name) FROM city ORDER BY pop DESC LIMIT 5"
        mine = cluster.execute(mql)
        ref = oracle.execute(mql)
        assert payloads(mine, attrs=("name",)) == \
            payloads(ref, attrs=("name",))

    def test_rewind_replays_the_gathered_window(self, cluster):
        result = cluster.execute(
            "SELECT ALL FROM city ORDER BY pop DESC LIMIT 6")
        first = payloads(result)
        result.reopen()
        assert payloads(result) == first
        result.close()

    def test_parallel_select_refuses_a_cluster(self, cluster):
        with pytest.raises(DecompositionError, match="scatter-gathers"):
            parallel_select(cluster, "SELECT ALL FROM city")


# ---------------------------------------------------------------------------
# Shard-local TopK bound pushdown
# ---------------------------------------------------------------------------

class TestTopKPushdown:
    def _constructed(self, engine) -> int:
        snapshot = engine.access.counters.snapshot()
        return snapshot.get("molecules_from_traversal", 0) + \
            snapshot.get("molecules_from_cluster", 0)

    def test_no_shard_constructs_more_than_the_window(self, cluster,
                                                      oracle):
        k = 5
        cluster.execute_ldl("CREATE ACCESS PATH city_pop ON city (pop)")
        oracle.execute_ldl("CREATE ACCESS PATH city_pop ON city (pop)")
        cluster.analyze()
        oracle.analyze()
        before = [self._constructed(e) for e in cluster.engines]
        mql = f"SELECT ALL FROM city ORDER BY pop DESC LIMIT {k}"
        result = cluster.execute(mql)
        rows = payloads(result)
        result.close()
        assert rows == payloads(oracle.execute(mql))
        per_shard = [self._constructed(e) - before[i]
                     for i, e in enumerate(cluster.engines)]
        # Each shard's own TopK window caps construction at k molecules;
        # the coordinator's pushed global bound can only tighten that.
        assert all(count <= k for count in per_shard), per_shard
        assert sum(per_shard) < N_CITIES

    def test_global_bound_pushed_into_later_shards(self, cluster):
        cluster.execute_ldl("CREATE ACCESS PATH city_pop ON city (pop)")
        cluster.analyze()
        result = cluster.execute(
            "SELECT ALL FROM city ORDER BY pop DESC LIMIT 3")
        result.materialize()
        result.close()
        pushed = cluster.access.counters.snapshot().get(
            "shard_bounds_pushed", 0)
        # The bound tightens once the first shard fills the window —
        # every remaining shard receives it before draining.
        assert pushed == SHARDS - 1


# ---------------------------------------------------------------------------
# DML and DDL across shards
# ---------------------------------------------------------------------------

class TestClusterDML:
    def test_modify_fans_out_and_matches_oracle(self, cluster, oracle):
        mql = "MODIFY city SET pop = 9999 FROM city WHERE grp = 1"
        mine = cluster.execute(mql).affected
        ref = oracle.execute(mql).affected
        assert mine == ref == N_CITIES // GROUPS
        check = "SELECT ALL FROM city WHERE pop = 9999 ORDER BY name"
        assert payloads(cluster.execute(check)) == \
            payloads(oracle.execute(check))
        assert cluster.access.counters.snapshot()["dml_fanouts"] == 1

    def test_delete_fans_out_and_matches_oracle(self, cluster, oracle):
        mql = "DELETE city FROM city WHERE grp = 4"
        assert cluster.execute(mql).affected == \
            oracle.execute(mql).affected == N_CITIES // GROUPS
        assert cluster.access.atoms.count("city") == \
            N_CITIES - N_CITIES // GROUPS

    def test_direct_atom_access_routes_by_surrogate(self, cluster):
        surrogate = cluster.insert_atom(
            "city", {"name": "zz", "pop": 1, "grp": 0})
        owner = cluster.router.shard_of_surrogate(surrogate)
        assert cluster.engines[owner].access.atoms.exists(surrogate)
        cluster.modify_atom(surrogate, {"pop": 2})
        assert cluster.get_atom(surrogate)["pop"] == 2
        cluster.delete_atom(surrogate)
        assert not cluster.engines[owner].access.atoms.exists(surrogate)

    def test_keyless_inserts_round_robin(self):
        with ShardedCluster(shards=3) as c:
            c.execute("CREATE ATOM_TYPE note (note_id: IDENTIFIER, "
                      "v: INTEGER)")
            for i in range(9):
                c.execute(f"INSERT note (v = {i})")
            assert [e.access.atoms.count("note") for e in c.engines] \
                == [3, 3, 3]
            assert c.access.counters.snapshot()["unrouted_inserts"] == 9


class TestDDLInvalidation:
    def test_ddl_fans_out_and_moves_every_catalog(self, cluster):
        versions = [e.data.catalog_version for e in cluster.engines]
        fanouts = cluster.access.counters.snapshot()["ddl_fanouts"]
        cluster.execute("CREATE ATOM_TYPE extra (extra_id: IDENTIFIER, "
                        "v: INTEGER)")
        for engine, before in zip(cluster.engines, versions):
            assert engine.schema.atom_type("extra") is not None
            assert engine.data.catalog_version > before
        assert cluster.access.counters.snapshot()["ddl_fanouts"] \
            == fanouts + 1

    def test_prepared_statement_replans_after_ddl(self, cluster):
        stmt = cluster.prepare(
            "SELECT ALL FROM city WHERE pop = ? ORDER BY name")
        assert "SCAN" in stmt.explain(args=(1014,))
        cluster.execute_ldl("CREATE ACCESS PATH city_pop ON city (pop)")
        cluster.analyze()
        # The summed cluster version moved (every shard's DDL bump);
        # the handle re-derives routing and the shards replan onto the
        # fresh access path — no re-prepare needed.
        replanned = stmt.explain(args=(1014,))
        assert "city_pop" in replanned
        assert cluster.access.counters.snapshot()[
            "cluster_plans_invalidated"] >= 1

    def test_prepared_cache_returns_one_handle(self, cluster):
        first = cluster.prepare("SELECT ALL FROM city WHERE name = ?")
        second = cluster.prepare(
            "SELECT  ALL\nFROM city   WHERE name = ?")
        assert second is first
        assert cluster.access.counters.snapshot()[
            "cluster_prepared_hits"] == 1


# ---------------------------------------------------------------------------
# Serving a cluster: sessions, the daemon, accounting
# ---------------------------------------------------------------------------

class TestServingOverCluster:
    def test_in_process_connection_parity(self, cluster, oracle):
        mql = "SELECT ALL FROM city ORDER BY pop DESC LIMIT 10"
        with repro.connect(cluster) as conn:
            assert conn.shards == SHARDS
            assert payloads(conn.query(mql)) == \
                payloads(oracle.execute(mql))
            stmt = conn.prepare("SELECT ALL FROM city WHERE name = ?")
            assert payloads(stmt.execute("c9")) \
                == [("c9", 1000 + 9 * 7, 9 % GROUPS)]
            assert f"routed to 1 of {SHARDS}" in conn.explain(
                "SELECT ALL FROM city WHERE name = 'c9'")

    def test_routed_cursor_reports_its_shard(self, cluster):
        with repro.connect(cluster) as conn:
            cursor = conn.cursor("SELECT ALL FROM city WHERE name = 'c2'")
            assert cursor.shard == cluster.router.shard_of_key("city", "c2")
            scatter = conn.cursor("SELECT ALL FROM city ORDER BY pop")
            assert scatter.shard is None
            cursor.close()
            scatter.close()

    def test_daemon_over_cluster_parity(self, cluster, oracle):
        manager = SessionManager(cluster, max_sessions=4)
        mql = "SELECT ALL FROM city ORDER BY pop DESC LIMIT 10"
        with PrimaDaemon(manager) as daemon:
            with daemon.connect(name="ws") as conn:
                assert conn.shards == SHARDS
                assert payloads(conn.query(mql, fetch_size=4)) == \
                    payloads(oracle.execute(mql))
                cursor = conn.cursor(
                    "SELECT ALL FROM city WHERE name = 'c2'")
                assert cursor.shard == \
                    cluster.router.shard_of_key("city", "c2")
                cursor.close()
                assert conn.execute(
                    "INSERT city (name = 'c600', pop = 42, grp = 0)"
                ).affected == 1
        assert manager.active_sessions == 0
        owner = cluster.router.shard_of_key("city", "c600")
        assert cluster.engines[owner].access.atoms.find_by_key(
            "city", "c600") is not None

    def test_daemon_accounting_covers_the_cluster(self, cluster):
        manager = SessionManager(cluster, max_sessions=2)
        with PrimaDaemon(manager) as daemon:
            with daemon.connect() as conn:
                result = conn.query("SELECT ALL FROM city ORDER BY pop")
                assert len(list(result)) == N_CITIES
                result.close()
        report = cluster.io_report()
        assert report["shards"] == SHARDS
        # Every shard served part of the gather, so every modelled
        # service channel billed some communication time.
        assert all(ms > 0 for ms in report["shard_service_ms"])
        assert report["shard_makespan_ms"] == \
            max(report["shard_service_ms"])
        assert report.get("serve_sessions_opened", 0) >= 1

    def test_connect_shards_option_creates_a_cluster(self):
        with repro.connect(shards=3, name="fresh") as conn:
            assert conn.shards == 3
            conn.execute("CREATE ATOM_TYPE t (t_id: IDENTIFIER, "
                         "v: INTEGER) KEYS_ARE (v)")
            for i in range(6):
                conn.execute(f"INSERT t (v = {i})")
            assert sorted(m.atom["v"] for m in conn.query(
                "SELECT ALL FROM t")) == list(range(6))


# ---------------------------------------------------------------------------
# The range-router split-point advisor
# ---------------------------------------------------------------------------

class TestRangeAdvisor:
    def test_derive_split_points_integers(self):
        assert ShardRouter.derive_split_points(0, 100, 4) == (25, 50, 75)

    def test_derive_split_points_floats(self):
        assert ShardRouter.derive_split_points(0.0, 1.0, 4) == \
            (0.25, 0.5, 0.75)

    def test_derive_rejects_non_numeric_and_degenerate_domains(self):
        assert ShardRouter.derive_split_points("a", "z", 4) is None
        assert ShardRouter.derive_split_points(5, 5, 4) is None
        assert ShardRouter.derive_split_points(True, False, 4) is None
        assert ShardRouter.derive_split_points(None, None, 4) is None
        assert ShardRouter.derive_split_points(0, 100, 1) is None

    def test_derive_rejects_too_narrow_integer_domains(self):
        # 8 shards over [0, 3]: rounding collides adjacent cuts.
        assert ShardRouter.derive_split_points(0, 3, 8) is None

    def test_adopt_ranges_validates_like_the_constructor(self):
        router = ShardRouter(4)
        with pytest.raises(PrimaError):
            router.adopt_ranges("city", (1, 2))       # wrong count
        with pytest.raises(PrimaError):
            router.adopt_ranges("city", (3, 2, 1))    # not ascending
        router.adopt_ranges("city", (10, 20, 30))
        assert router.scheme("city") == "range"
        assert router.range_points("city") == (10, 20, 30)
        assert router.routable("city")

    def test_advise_ranges_derives_from_statistics(self):
        with ShardedCluster(shards=SHARDS) as cluster:
            cluster.execute("CREATE ATOM_TYPE m (m_id: IDENTIFIER, "
                            "v: INTEGER) KEYS_ARE (v)")
            for v in range(100):
                cluster.execute(f"INSERT m (v = {v})")
            adopted = cluster.advise_ranges()
            assert "m" in adopted
            assert len(adopted["m"]) == SHARDS - 1
            assert list(adopted["m"]) == sorted(adopted["m"])
            assert cluster.router.scheme("m") == "range"
            assert cluster.io_report()["router_ranges_advised"] == 1

    def test_advise_skips_declared_and_keyless_types(self):
        with ShardedCluster(shards=2, ranges={"r": (50,)}) as cluster:
            cluster.execute("CREATE ATOM_TYPE r (r_id: IDENTIFIER, "
                            "v: INTEGER) KEYS_ARE (v)")
            cluster.execute("CREATE ATOM_TYPE nk (nk_id: IDENTIFIER, "
                            "w: INTEGER)")
            for v in range(10):
                cluster.execute(f"INSERT r (v = {v * 10})")
                cluster.execute(f"INSERT nk (w = {v})")
            adopted = cluster.advise_ranges()
            assert adopted == {}
            assert cluster.router.range_points("r") == (50,)

    def test_advise_skips_non_numeric_keys(self, cluster):
        # The fixture's city type is keyed on name (CHAR_VAR).
        assert cluster.advise_ranges("city") == {}
        assert cluster.router.scheme("city") == "hash"

    def test_mixed_placement_keeps_old_atoms_findable(self):
        with ShardedCluster(shards=3) as cluster:
            cluster.execute("CREATE ATOM_TYPE m (m_id: IDENTIFIER, "
                            "v: INTEGER) KEYS_ARE (v)")
            for v in range(30):
                cluster.execute(f"INSERT m (v = {v})")
            cluster.advise_ranges("m")
            # Ranges adopted over hash-placed data: lookups must keep
            # scattering, so every pre-adoption atom stays reachable.
            assert not cluster.router.routable("m")
            for v in (0, 13, 29):
                rows = cluster.data.execute_text(
                    f"SELECT ALL FROM m WHERE v = {v}")
                assert [x.atom["v"] for x in rows] == [v]
            # New inserts follow the derived ranges.
            cluster.execute("INSERT m (v = 500)")
            owner = cluster.router.shard_of_key("m", 500)
            assert cluster.engines[owner].access.atoms.find_by_key(
                "m", 500) is not None
            rows = cluster.data.execute_text(
                "SELECT ALL FROM m WHERE v = 500")
            assert [x.atom["v"] for x in rows] == [500]

    def test_advised_cluster_parity_with_oracle(self, oracle):
        with ShardedCluster(shards=SHARDS) as cluster:
            cluster.execute("CREATE ATOM_TYPE m (m_id: IDENTIFIER, "
                            "v: INTEGER) KEYS_ARE (v)")
            oracle2 = Prima()
            oracle2.execute("CREATE ATOM_TYPE m (m_id: IDENTIFIER, "
                            "v: INTEGER) KEYS_ARE (v)")
            for v in range(40):
                cluster.execute(f"INSERT m (v = {v})")
                oracle2.execute(f"INSERT m (v = {v})")
            cluster.advise_ranges("m")
            for v in range(40, 60):
                cluster.execute(f"INSERT m (v = {v})")
                oracle2.execute(f"INSERT m (v = {v})")
            mql = "SELECT ALL FROM m WHERE v >= 20"
            assert sorted(x.atom["v"] for x in
                          cluster.data.execute_text(mql)) == \
                sorted(x.atom["v"] for x in oracle2.execute(mql))
