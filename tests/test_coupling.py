"""Unit tests: workstation-host coupling (checkout/checkin)."""

import pytest

from repro import Prima
from repro.coupling import NetworkModel, PrimaServer, Workstation
from repro.errors import CouplingError
from repro.workloads import brep

QUERY = "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713"


@pytest.fixture
def coupled():
    db = Prima()
    handles = brep.generate(db, n_solids=3)
    server = PrimaServer(db)
    return handles, server, Workstation(server)


class TestCheckout:
    def test_set_oriented_two_messages(self, coupled):
        _handles, server, station = coupled
        result = station.checkout(QUERY)
        assert len(result) == 1
        assert server.stats.messages == 2    # request + response
        assert len(station.buffer) == 27

    def test_record_at_a_time_many_messages(self, coupled):
        _handles, server, station = coupled
        station.checkout(QUERY, set_oriented=False)
        assert server.stats.messages > 2 * 27

    def test_set_oriented_fewer_bytes_than_messages_dominate(self, coupled):
        handles, server, station = coupled
        station.checkout(QUERY)
        set_time = server.stats.comm_time_ms
        other = PrimaServer(handles.db)
        baseline = Workstation(other)
        baseline.checkout(QUERY, set_oriented=False)
        assert other.stats.comm_time_ms > 5 * set_time

    def test_local_reads_cost_nothing(self, coupled):
        handles, server, station = coupled
        station.checkout(QUERY)
        messages = server.stats.messages
        for edge in handles.edges[:5]:
            if edge in station.buffer:
                station.read(edge)
        assert server.stats.messages == messages

    def test_read_not_checked_out_rejected(self, coupled):
        _handles, _server, station = coupled
        from repro.mad.types import Surrogate
        with pytest.raises(CouplingError):
            station.read(Surrogate("edge", 9999))


class TestCheckin:
    def test_modifications_applied_at_commit(self, coupled):
        handles, _server, station = coupled
        result = station.checkout(QUERY)
        edge = result[0].component_list("face")[0] \
            .component_list("edge")[0].surrogate
        station.modify(edge, {"length": 321.0})
        # not yet on the server
        assert handles.db.access.get(edge)["length"] != 321.0
        applied = station.commit()
        assert applied == 1
        assert handles.db.access.get(edge)["length"] == 321.0

    def test_checkin_single_message_pair(self, coupled):
        handles, server, station = coupled
        result = station.checkout(QUERY)
        molecule = result[0]
        for face in molecule.component_list("face"):
            station.modify(face.surrogate, {"square_dim": 1.0})
        before = server.stats.messages
        station.commit()
        assert server.stats.messages == before + 2   # request + ack

    def test_buffer_cleared_after_commit(self, coupled):
        _handles, _server, station = coupled
        station.checkout(QUERY)
        station.commit()
        assert len(station.buffer) == 0

    def test_commit_without_changes(self, coupled):
        _handles, server, station = coupled
        station.checkout(QUERY)
        before = server.stats.messages
        assert station.commit() == 0
        assert server.stats.messages == before   # nothing shipped

    def test_modify_not_checked_out_rejected(self, coupled):
        _handles, _server, station = coupled
        from repro.mad.types import Surrogate
        with pytest.raises(CouplingError):
            station.modify(Surrogate("edge", 9999), {"length": 1.0})

    def test_integrity_after_checkin(self, coupled):
        handles, _server, station = coupled
        station.checkout(QUERY)
        for edge in list(station.buffer._atoms):  # noqa: SLF001
            if edge.atom_type == "edge":
                station.modify(edge, {"length": 2.0})
        station.commit()
        assert handles.db.verify_integrity() == []


class TestNetworkModel:
    def test_transfer_time_model(self):
        model = NetworkModel(per_message_ms=5.0, bytes_per_ms=1000.0)
        assert model.transfer_ms(0) == 5.0
        assert model.transfer_ms(1000) == 6.0

    def test_stats_accumulate(self):
        from repro.coupling.network import NetworkStats
        stats = NetworkStats()
        model = NetworkModel()
        stats.account(model, 100)
        stats.account(model, 200)
        assert stats.messages == 2
        assert stats.bytes_sent == 300
        snapshot = stats.snapshot()
        assert snapshot["messages"] == 2

    def test_checkin_unknown_atom_rejected(self, coupled):
        handles, server, _station = coupled
        from repro.mad.types import Surrogate
        with pytest.raises(CouplingError):
            server.checkin({Surrogate("edge", 99999): {"length": 1.0}})


class TestLocalCreation:
    """Newly created molecules move back to PRIMA at commit (section 4)."""

    def test_create_and_commit(self, coupled):
        handles, server, station = coupled
        station.checkout(QUERY)
        temp = station.create("solid", {"solid_no": 700,
                                        "description": "drafted locally"})
        assert temp.number < 0          # temporary surrogate
        applied = station.commit()
        assert applied >= 1
        real = station.last_mapping[temp]
        assert real.number > 0
        assert handles.db.access.get(real)["solid_no"] == 700

    def test_creation_referencing_checked_out_atom(self, coupled):
        handles, _server, station = coupled
        station.checkout("SELECT ALL FROM solid WHERE solid_no = 1")
        parent = station.create("solid", {
            "solid_no": 701,
            "sub": [handles.solids[0]],
        })
        station.commit()
        real = station.last_mapping[parent]
        assert handles.db.access.get(real)["sub"] == [handles.solids[0]]
        assert handles.db.verify_integrity() == []

    def test_creations_referencing_each_other(self, coupled):
        handles, _server, station = coupled
        child = station.create("solid", {"solid_no": 702})
        parent = station.create("solid", {"solid_no": 703, "sub": [child]})
        station.commit()
        real_child = station.last_mapping[child]
        real_parent = station.last_mapping[parent]
        assert handles.db.access.get(real_parent)["sub"] == [real_child]
        assert handles.db.access.get(real_child)["super"] == [real_parent]
        assert handles.db.verify_integrity() == []

    def test_creation_then_local_modify(self, coupled):
        handles, _server, station = coupled
        temp = station.create("solid", {"solid_no": 704})
        station.modify(temp, {"description": "renamed before checkin"})
        station.commit()
        real = station.last_mapping[temp]
        assert handles.db.access.get(real)["description"] == \
            "renamed before checkin"

    def test_creation_deleted_before_commit_never_ships(self, coupled):
        handles, server, station = coupled
        before = handles.db.access.atoms.count("solid")
        temp = station.create("solid", {"solid_no": 705})
        station.delete(temp)
        messages = server.stats.messages
        assert station.commit() == 0
        assert server.stats.messages == messages
        assert handles.db.access.atoms.count("solid") == before

    def test_checked_out_delete_ships(self, coupled):
        handles, _server, station = coupled
        station.checkout("SELECT ALL FROM solid WHERE sub = EMPTY")
        victims = [m.surrogate for m in
                   handles.db.query("SELECT ALL FROM solid "
                                    "WHERE description = 'box solid 3'")]
        station.delete(victims[0])
        station.commit()
        assert not handles.db.access.atoms.exists(victims[0])

    def test_checkin_stays_one_message_pair(self, coupled):
        _handles, server, station = coupled
        station.checkout(QUERY)
        for index in range(5):
            station.create("solid", {"solid_no": 710 + index})
        before = server.stats.messages
        station.commit()
        assert server.stats.messages == before + 2
