"""Tests: checkpoint save/load and DDL round-tripping."""

import pathlib

import pytest

from repro import Prima
from repro.errors import PrimaError
from repro.mad.ddl import atom_type_to_ddl, dump_schema
from repro.persistence import load, save
from repro.workloads import brep, gis


class TestPersistence:
    def test_roundtrip_preserves_queries(self, tmp_path):
        db = Prima()
        handles = brep.generate(db, n_solids=3)
        db.execute_ldl("CREATE ACCESS PATH f_sq ON face (square_dim)")
        path = tmp_path / "solids.prima"
        written = save(db, path)
        assert written == path.stat().st_size

        restored = load(path)
        query = "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713"
        assert restored.query(query).to_dicts() == db.query(query).to_dicts()
        assert restored.verify_integrity() == []

    def test_restored_instance_is_writable(self, tmp_path):
        db = Prima()
        db.execute("CREATE ATOM_TYPE a (a_id: IDENTIFIER, n: INTEGER) "
                   "KEYS_ARE (n)")
        db.execute("INSERT a (n = 1)")
        path = tmp_path / "db.prima"
        save(db, path)
        restored = load(path)
        restored.execute("INSERT a (n = 2)")
        assert len(restored.query("SELECT ALL FROM a")) == 2
        # surrogates continue after the checkpoint, never reused
        surrogates = [m.surrogate.number
                      for m in restored.query("SELECT ALL FROM a")]
        assert len(set(surrogates)) == 2

    def test_save_flushes_and_propagates(self, tmp_path):
        db = Prima()
        db.execute("CREATE ATOM_TYPE a (a_id: IDENTIFIER, n: INTEGER)")
        db.query("SELECT ALL FROM a")
        s = db.insert_atom("a", {"n": 1})
        db.execute_ldl("CREATE PARTITION pn ON a (n)")
        db.modify_atom(s, {"n": 5})
        save(db, tmp_path / "db.prima")
        assert db.access.atoms.deferred.pending_count == 0

    def test_facade_methods(self, tmp_path):
        db = Prima()
        db.execute("CREATE ATOM_TYPE a (a_id: IDENTIFIER)")
        db.query("SELECT ALL FROM a")
        db.save(tmp_path / "x.prima")
        assert isinstance(Prima.load(tmp_path / "x.prima"), Prima)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(PrimaError):
            load(tmp_path / "ghost.prima")

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "not_a_db"
        path.write_bytes(b"something else entirely")
        with pytest.raises(PrimaError):
            load(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "future.prima"
        path.write_bytes(b"PRIMA-REPRO\x00" + (99).to_bytes(4, "little")
                         + b"xx")
        with pytest.raises(PrimaError) as err:
            load(path)
        assert "version" in str(err.value)


class TestDdlRoundTrip:
    def test_atom_type_rendering(self):
        db = Prima()
        db.execute("CREATE ATOM_TYPE a (a_id: IDENTIFIER, n: INTEGER, "
                   "s: SET_OF (REF_TO (a.t)) (2,VAR), "
                   "t: SET_OF (REF_TO (a.s))) KEYS_ARE (n)")
        text = atom_type_to_ddl(db.schema.atom_type("a"))
        assert "CREATE ATOM_TYPE a" in text
        assert "SET_OF (REF_TO (a.t)) (2,VAR)" in text
        assert "KEYS_ARE (n)" in text

    def _roundtrip(self, db: Prima) -> Prima:
        dumped = db.dump_ddl()
        fresh = Prima()
        fresh.execute_script(dumped)
        return fresh

    def test_brep_schema_roundtrips(self):
        db = Prima()
        brep.install_schema(db)
        fresh = self._roundtrip(db)
        assert fresh.schema.atom_type_names() == \
            db.schema.atom_type_names()
        assert fresh.catalog.names() == db.catalog.names()
        # second-generation dump is a fixpoint
        assert fresh.dump_ddl() == db.dump_ddl()

    def test_gis_schema_roundtrips(self):
        handles = gis.generate(rows=2, cols=2)
        fresh = self._roundtrip(handles.db)
        assert fresh.dump_ddl() == handles.db.dump_ddl()

    def test_roundtripped_schema_is_usable(self):
        db = Prima()
        brep.install_schema(db)
        fresh = self._roundtrip(db)
        # insert through the round-tripped schema
        fresh.query("SELECT ALL FROM solid")
        s = fresh.insert_atom("solid", {"solid_no": 1})
        assert fresh.get_atom(s)["solid_no"] == 1

    def test_attribute_details_preserved(self):
        db = Prima()
        brep.install_schema(db)
        fresh = self._roundtrip(db)
        original = db.schema.atom_type("brep").attr("faces")
        restored = fresh.schema.atom_type("brep").attr("faces")
        assert original == restored
        assert db.schema.atom_type("point").attr("placement") == \
            fresh.schema.atom_type("point").attr("placement")

    def test_recursive_molecule_type_roundtrips(self):
        db = Prima()
        brep.install_schema(db)
        fresh = self._roundtrip(db)
        piece_list = fresh.catalog.get("piece_list")
        assert piece_list is not None and piece_list.recursive
