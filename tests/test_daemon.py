"""Tests: the asyncio daemon, the wire protocol, and repro.connect().

Covers the event-loop transport end to end — many concurrent async
clients against one daemon thread, admission control over the socket,
resource hygiene (idle cursors, statement handles, session leases) with
an injected clock, abrupt-disconnect reclamation — plus the transport
parity the protocol refactor guarantees: the in-process and the
daemon-socket transport produce identical results *and* identical
modelled network accounting, because both bill through the protocol
codec.
"""

from __future__ import annotations

import asyncio
import struct
import threading
import time

import pytest

import repro
from repro import Prima
from repro.coupling.network import NetworkModel
from repro.errors import (
    CursorStateError,
    ProtocolError,
    ServeError,
    SessionError,
    SessionExpiredError,
    SessionLimitError,
    SessionStateError,
)
from repro.serve import (
    Connection,
    PrimaDaemon,
    ServeLoop,
    SessionManager,
    protocol,
)
from repro.serve.aio import open_client
from repro.serve.tuning import (
    MAX_FETCH_SIZE,
    MIN_FETCH_SIZE,
    tune_fetch_size,
)

N_ITEMS = 60
GROUPS = 6


def make_db(n: int = N_ITEMS) -> Prima:
    db = Prima()
    db.execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, "
               "n: INTEGER, grp: INTEGER) KEYS_ARE (n)")
    for i in range(n):
        db.insert_atom("item", {"n": i, "grp": i % GROUPS})
    return db


@pytest.fixture
def db():
    return make_db()


class FakeClock:
    """A deterministic manager clock for hygiene tests."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def wait_until(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.01)


# ---------------------------------------------------------------------------
# repro.connect(): one façade, every target
# ---------------------------------------------------------------------------

class TestConnect:
    def test_fresh_prima_owned_by_connection(self):
        with repro.connect(name="solo") as conn:
            conn.execute("CREATE ATOM_TYPE t (t_id: IDENTIFIER, "
                         "v: INTEGER)")
            conn.execute("INSERT t (v = 7)")
            assert [m.atom["v"] for m in conn.query("SELECT ALL FROM t")] \
                == [7]
            assert conn.name == "solo"
        assert conn.closed

    def test_existing_prima_reuses_attached_manager(self, db):
        first = repro.connect(db, max_sessions=3)
        second = repro.connect(db)   # no knobs: reuse, same admission domain
        assert second.manager is first.manager
        assert first.manager.active_sessions == 2
        first.close()
        second.close()
        assert first.manager.active_sessions == 0

    def test_existing_prima_with_knobs_builds_new_manager(self, db):
        a = repro.connect(db, max_sessions=1)
        b = repro.connect(db, max_sessions=1)   # separate manager
        assert a.manager is not b.manager
        a.close()
        b.close()

    def test_session_manager_target(self, db):
        manager = SessionManager(db, max_sessions=2)
        with repro.connect(manager, name="m") as conn:
            assert conn.name == "m"
            assert manager.active_sessions == 1
        with pytest.raises(ValueError, match="knobs"):
            repro.connect(manager, max_sessions=5)

    def test_rejects_unknown_target(self):
        with pytest.raises(TypeError, match="cannot connect"):
            repro.connect(42)

    def test_rejects_bad_address(self):
        with pytest.raises(ValueError, match="cannot parse"):
            repro.connect("prima://nowhere")

    def test_closed_connection_refuses(self, db):
        conn = repro.connect(db)
        conn.close()
        with pytest.raises(SessionError):
            conn.query("SELECT ALL FROM item")
        conn.close()   # idempotent

    def test_context_manager_aborts_on_error(self, db):
        manager = SessionManager(db, max_sessions=1)
        with pytest.raises(RuntimeError):
            with repro.connect(manager) as conn:
                conn.execute("INSERT item (n = 900, grp = 0)")
                raise RuntimeError("boom")
        # The abort released the session's X lock on ``item`` and its
        # admission slot: the next writer gets both immediately.
        assert conn.closed
        assert manager.active_sessions == 0
        with repro.connect(manager) as fresh:
            assert fresh.execute("INSERT item (n = 901, grp = 0)"
                                 ).affected == 1


# ---------------------------------------------------------------------------
# The daemon: many async clients, one event-loop thread
# ---------------------------------------------------------------------------

class TestDaemon:
    def test_sync_client_round_trip(self, db):
        manager = SessionManager(db, max_sessions=4)
        with PrimaDaemon(manager) as daemon:
            with daemon.connect(name="ws") as conn:
                rows = sorted(m.atom["n"] for m in
                              conn.query("SELECT ALL FROM item",
                                         fetch_size=8))
                assert rows == list(range(N_ITEMS))
                assert conn.execute("INSERT item (n = 600, grp = 1)"
                                    ).affected == 1
                stmt = conn.prepare("SELECT ALL FROM item WHERE grp = ?")
                assert len(list(stmt.execute(1))) == N_ITEMS // GROUPS + 1
                assert "SCAN" in conn.explain("SELECT ALL FROM item")
                assert conn.ping() == "ws"
        assert manager.active_sessions == 0

    def test_wire_errors_keep_their_class(self, db):
        manager = SessionManager(db, max_sessions=4)
        with PrimaDaemon(manager) as daemon:
            with daemon.connect() as conn:
                with pytest.raises(SessionStateError, match="no cursor"):
                    conn._transport.request(  # noqa: SLF001
                        protocol.Fetch(cursor_id=99, count=4))
                cursor = conn.cursor("SELECT ALL FROM item", fetch_size=4)
                next(iter(cursor))
                cursor.close()
                with pytest.raises(SessionStateError):
                    cursor.rewind()

    def test_truncation_surfaces_across_the_wire(self, db):
        manager = SessionManager(db, max_sessions=4)
        with PrimaDaemon(manager) as daemon:
            with daemon.connect() as conn:
                result = conn.query("SELECT ALL FROM item", fetch_size=4)
                result.fetch_next()
                result.close()
                assert result.truncated
                with pytest.raises(CursorStateError):
                    result.reopen()

    def test_many_async_clients_one_daemon_thread(self, db):
        clients = 32
        manager = SessionManager(db, max_sessions=clients)
        threads_before = threading.active_count()
        peak_threads = 0

        async def one_client(host, port, index):
            async with await open_client(host, port, f"c{index}") as client:
                reply = await client.request(protocol.Open(
                    f"SELECT ALL FROM item WHERE grp = {index % GROUPS}",
                    None, (), None))
                return sorted(m.atom["n"] for m in reply.batch)

        async def fleet(host, port):
            nonlocal peak_threads
            results = await asyncio.gather(*[
                one_client(host, port, i) for i in range(clients)])
            peak_threads = threading.active_count()
            return results

        with PrimaDaemon(manager) as daemon:
            host, port = daemon.address
            results = asyncio.run(fleet(host, port))
            assert daemon.connections_served == clients

        expected = {g: sorted(n for n in range(N_ITEMS) if n % GROUPS == g)
                    for g in range(GROUPS)}
        for index, rows in enumerate(results):
            assert rows == expected[index % GROUPS]
        # The whole fleet was served by O(1) extra threads: the daemon's
        # event loop — not one thread per session.
        assert peak_threads - threads_before <= 2
        assert manager.active_sessions == 0
        assert db.io_report()["serve_sessions_opened"] >= clients

    def test_admission_reject_over_socket(self, db):
        manager = SessionManager(db, max_sessions=1, admission="reject")

        async def scenario(host, port):
            first = await open_client(host, port)
            try:
                with pytest.raises(SessionLimitError):
                    await open_client(host, port)
            finally:
                await first.goodbye()
                await first.close()

        with PrimaDaemon(manager) as daemon:
            asyncio.run(scenario(*daemon.address))
        assert manager.active_sessions == 0

    def test_admission_queue_over_socket(self, db):
        manager = SessionManager(db, max_sessions=1, admission="queue")

        async def scenario(host, port):
            first = await open_client(host, port)
            waiting = asyncio.ensure_future(open_client(host, port))
            await asyncio.sleep(0.08)
            assert not waiting.done()   # parked, not rejected
            await first.goodbye()
            await first.close()
            second = await asyncio.wait_for(waiting, timeout=5)
            pong = await second.request(protocol.Ping())
            assert pong.session
            await second.goodbye()
            await second.close()

        with PrimaDaemon(manager) as daemon:
            asyncio.run(scenario(*daemon.address))
        assert db.io_report()["serve_sessions_queued"] >= 1
        assert manager.active_sessions == 0

    def test_queue_timeout_over_socket(self, db):
        manager = SessionManager(db, max_sessions=1, admission="queue",
                                 queue_timeout=0.1)

        async def scenario(host, port):
            first = await open_client(host, port)
            try:
                with pytest.raises(SessionLimitError, match="timed out"):
                    await open_client(host, port)
            finally:
                await first.goodbye()
                await first.close()

        with PrimaDaemon(manager) as daemon:
            asyncio.run(scenario(*daemon.address))

    def test_abrupt_disconnect_mid_fetch_reclaims_everything(self, db):
        manager = SessionManager(db, max_sessions=1)

        async def scenario(host, port):
            client = await open_client(host, port)
            reply = await client.request(protocol.Open(
                "SELECT ALL FROM item", 4, (), None))
            assert not reply.exhausted
            await client.close()   # no GOODBYE: the crash path

        with PrimaDaemon(manager) as daemon:
            before = db.io_report().get("serve_pipelines_released", 0)
            asyncio.run(scenario(*daemon.address))
            # The daemon aborts the session on EOF: pipeline truncated
            # and released, admission slot returned.
            wait_until(lambda: manager.active_sessions == 0)
            wait_until(lambda: db.io_report().get(
                "serve_pipelines_released", 0) > before)
            with daemon.connect() as conn:   # the slot is usable again
                assert conn.ping()

    def test_hello_required_first(self, db):
        manager = SessionManager(db, max_sessions=1)
        with PrimaDaemon(manager) as daemon:

            async def scenario(host, port):
                reader, writer = await asyncio.open_connection(host, port)
                from repro.serve.aio import read_message, write_message
                await write_message(writer, protocol.Ping())
                reply = await read_message(reader)
                assert isinstance(reply, protocol.WireError)
                assert reply.kind == "ProtocolError"
                writer.close()

            asyncio.run(scenario(*daemon.address))
        assert manager.active_sessions == 0

    def test_daemon_cannot_restart(self, db):
        manager = SessionManager(db)
        daemon = PrimaDaemon(manager).start()
        daemon.stop()
        with pytest.raises(SessionError, match="restarted"):
            daemon.start()


# ---------------------------------------------------------------------------
# Resource hygiene: idle cursors, statement handles, session leases
# ---------------------------------------------------------------------------

class TestHygiene:
    def test_idle_cursor_reaped(self, db):
        clock = FakeClock()
        manager = SessionManager(db, idle_cursor_timeout=30, clock=clock)
        conn = repro.connect(manager)
        cursor = conn.cursor("SELECT ALL FROM item", fetch_size=4)
        next(iter(cursor))
        before = db.io_report().get("serve_pipelines_released", 0)
        clock.advance(31)
        reaped = manager.reap()
        assert reaped["cursors_reaped"] == 1
        assert db.io_report()["serve_pipelines_released"] > before
        assert db.io_report()["serve_cursors_reaped"] == 1
        with pytest.raises(SessionExpiredError, match="reclaimed"):
            conn._transport.request(  # noqa: SLF001
                protocol.Fetch(cursor.cursor_id, 4))
        conn.close()

    def test_active_cursor_survives_reap(self, db):
        clock = FakeClock()
        manager = SessionManager(db, idle_cursor_timeout=30, clock=clock)
        conn = repro.connect(manager)
        cursor = conn.cursor("SELECT ALL FROM item", fetch_size=4)
        clock.advance(20)
        next(iter(cursor))          # touches the cursor
        clock.advance(20)
        assert manager.reap()["cursors_reaped"] == 0
        assert sorted(m.atom["n"] for m in cursor) == \
            sorted(range(1, N_ITEMS))
        conn.close()

    def test_idle_statement_reaped(self, db):
        clock = FakeClock()
        manager = SessionManager(db, idle_statement_timeout=60, clock=clock)
        conn = repro.connect(manager)
        stmt = conn.prepare("SELECT ALL FROM item WHERE grp = ?")
        assert len(list(stmt.execute(0))) == N_ITEMS // GROUPS
        clock.advance(61)
        assert manager.reap()["statements_reaped"] == 1
        with pytest.raises(SessionExpiredError, match="deallocated"):
            stmt.execute(1)
        conn.close()

    def test_session_lease_expiry_reclaims_slot(self, db):
        clock = FakeClock()
        manager = SessionManager(db, max_sessions=1, session_lease=120,
                                 clock=clock)
        conn = repro.connect(manager, name="idle")
        conn.execute("INSERT item (n = 700, grp = 0)")   # holds X on item
        clock.advance(121)
        assert manager.reap()["sessions_expired"] == 1
        assert manager.active_sessions == 0
        with pytest.raises(SessionExpiredError, match="lease expired"):
            conn.ping()
        # The slot is free for the next client.
        with repro.connect(manager) as fresh:
            assert fresh.ping()
        assert db.io_report()["serve_sessions_expired"] == 1

    def test_ping_keepalive_refreshes_lease(self, db):
        clock = FakeClock()
        manager = SessionManager(db, session_lease=120, clock=clock)
        conn = repro.connect(manager)
        for _ in range(3):
            clock.advance(100)
            conn.ping()             # keepalive beats the lease
        assert manager.reap()["sessions_expired"] == 0
        assert conn.ping()
        conn.close()

    def test_daemon_reaper_enforces_lease(self, db):
        manager = SessionManager(db, max_sessions=1, session_lease=0.15)
        with PrimaDaemon(manager, reap_interval=0.03) as daemon:
            conn = daemon.connect()
            assert conn.ping()
            wait_until(lambda: manager.active_sessions == 0)
            with pytest.raises(SessionExpiredError):
                conn.ping()
            with daemon.connect() as fresh:   # the slot came back
                assert fresh.ping()


# ---------------------------------------------------------------------------
# Transport parity: in-process vs daemon socket
# ---------------------------------------------------------------------------

def run_workload(conn: Connection) -> list:
    out = []
    out.append(sorted(m.atom["n"] for m in
                      conn.query("SELECT ALL FROM item WHERE grp = 2",
                                 fetch_size=4)))
    stmt = conn.prepare("SELECT ALL FROM item WHERE grp = ?")
    out.append(sorted(m.atom["n"] for m in stmt.execute(3)))
    stmt.close()
    out.append(conn.execute("INSERT item (n = 800, grp = 0)").affected)
    out.append(conn.explain("SELECT ALL FROM item WHERE n < 10"))
    cursor = conn.checkout("SELECT ALL FROM item WHERE grp = 0",
                           fetch_size=None)
    surrogates = [m.surrogate for m in cursor]
    mapping = conn.checkin({surrogates[0]: {"grp": 5}})
    out.append(mapping)
    return out


def accounting(manager: SessionManager) -> dict:
    return {key: value for key, value in manager.io_report().items()
            if key.startswith(("net_", "session:", "serve_sessions_peak"))}


class TestTransportParity:
    def test_results_and_accounting_identical(self):
        db_local, db_remote = make_db(), make_db()
        local_mgr = SessionManager(db_local, max_sessions=2)
        remote_mgr = SessionManager(db_remote, max_sessions=2)

        with repro.connect(local_mgr, name="c") as conn:
            local_out = run_workload(conn)
        with PrimaDaemon(remote_mgr) as daemon:
            with daemon.connect(name="c") as conn:
                remote_out = run_workload(conn)

        # Identical results...
        assert local_out[:4] == remote_out[:4]
        # ...identical modelled accounting: both transports bill through
        # the protocol codec, message for message, byte for byte.
        assert accounting(local_mgr) == accounting(remote_mgr)

    def test_fetch_streaming_parity(self):
        db_local, db_remote = make_db(), make_db()
        local_mgr = SessionManager(db_local, default_fetch_size=8)
        remote_mgr = SessionManager(db_remote, default_fetch_size=8)
        with repro.connect(local_mgr, name="s") as conn:
            local_rows = [m.atom["n"] for m in
                          conn.query("SELECT ALL FROM item ORDER BY n")]
        with PrimaDaemon(remote_mgr) as daemon:
            with daemon.connect(name="s") as conn:
                remote_rows = [m.atom["n"] for m in
                               conn.query("SELECT ALL FROM item "
                                          "ORDER BY n")]
        assert local_rows == remote_rows == list(range(N_ITEMS))
        assert accounting(local_mgr) == accounting(remote_mgr)


# ---------------------------------------------------------------------------
# Fetch-size auto-tuning
# ---------------------------------------------------------------------------

class TestAutoTuning:
    def test_tuned_size_formula(self):
        model = NetworkModel()
        # f >= per_message_ms * bw * (1 - t) / (t * row_bytes), clamped.
        expected = int(model.per_message_ms * model.bytes_per_ms * 0.8
                       / (0.2 * 1000))
        assert tune_fetch_size(model, 1000) == expected
        assert tune_fetch_size(model, 1) == MAX_FETCH_SIZE
        assert tune_fetch_size(model, 10**9) == MIN_FETCH_SIZE
        assert tune_fetch_size(model, 0) == MAX_FETCH_SIZE

    def test_auto_open_resolves_and_streams(self, db):
        manager = SessionManager(db, default_fetch_size="auto")
        with repro.connect(manager) as conn:
            cursor = conn.cursor("SELECT ALL FROM item")
            assert MIN_FETCH_SIZE <= cursor.fetch_size <= MAX_FETCH_SIZE
            assert sorted(m.atom["n"] for m in cursor) == \
                list(range(N_ITEMS))
        assert db.io_report()["serve_fetch_sizes_tuned"] == 1

    def test_auto_over_the_wire(self, db):
        manager = SessionManager(db)
        with PrimaDaemon(manager) as daemon:
            with daemon.connect() as conn:
                cursor = conn.cursor("SELECT ALL FROM item",
                                     fetch_size="auto")
                assert MIN_FETCH_SIZE <= cursor.fetch_size <= MAX_FETCH_SIZE
                assert len(list(cursor)) == N_ITEMS


# ---------------------------------------------------------------------------
# ServeLoop failure aggregation
# ---------------------------------------------------------------------------

class TestServeLoopFailures:
    def test_concurrent_failures_aggregate(self, db):
        manager = SessionManager(db, max_sessions=4)
        loop = ServeLoop(manager)

        def ok(session):
            return len(list(session.query("SELECT ALL FROM item")))

        def bad_value(session):
            raise ValueError("job one broke")

        def bad_key(session):
            raise KeyError("job three broke")

        with pytest.raises(ServeError) as info:
            loop.run([ok, bad_value, ok, bad_key])
        failures = info.value.failures
        assert [index for index, _exc in failures] == [1, 3]
        assert isinstance(failures[0][1], ValueError)
        assert isinstance(failures[1][1], KeyError)
        assert "job 1" in str(info.value) and "job 3" in str(info.value)
        assert manager.active_sessions == 0

    def test_single_failure_keeps_its_type(self, db):
        manager = SessionManager(db, max_sessions=4)
        loop = ServeLoop(manager)
        with pytest.raises(ValueError, match="alone"):
            loop.run([lambda s: (_ for _ in ()).throw(ValueError("alone"))])


# ---------------------------------------------------------------------------
# Protocol codec
# ---------------------------------------------------------------------------

class TestProtocolCodec:
    def test_encode_decode_round_trip(self):
        message = protocol.Open("SELECT ALL FROM item", 8, (1, 2),
                                {"name": "x"})
        decoded = protocol.decode(protocol.encode(message))
        assert decoded == message

    def test_malformed_frame_rejected(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            protocol.decode(b"not a pickle")

    def test_non_message_payload_rejected(self):
        import pickle
        with pytest.raises(ProtocolError, match="not a protocol"):
            protocol.decode(pickle.dumps({"just": "a dict"}))

    def test_runaway_frame_length_rejected(self):
        header = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.frame_length(header)

    def test_wire_error_keeps_class(self):
        error = protocol.wire_error(CursorStateError("truncated set"))
        with pytest.raises(CursorStateError, match="truncated set"):
            protocol.raise_wire_error(error)

    def test_unknown_wire_error_degrades_to_session_error(self):
        error = protocol.WireError(kind="NoSuchError", message="???")
        with pytest.raises(SessionError, match="NoSuchError"):
            protocol.raise_wire_error(error)

    def test_wire_size_matches_legacy_constants(self):
        assert protocol.wire_size(protocol.Fetch(1, 8)) == \
            protocol.FETCH_REQUEST_BYTES
        assert protocol.wire_size(protocol.CloseCursor(1)) == \
            protocol.CONTROL_REQUEST_BYTES
        assert protocol.wire_size(protocol.Ack()) == protocol.ACK_BYTES
        assert protocol.wire_size(protocol.PrepareReply(1)) == \
            protocol.STATEMENT_HANDLE_BYTES
        assert protocol.wire_size(protocol.Batch([], True)) == \
            protocol.BATCH_HEADER_BYTES
