"""Unit tests: the MQL/LDL lexer."""

import pytest

from repro.errors import LexerError
from repro.mql.lexer import tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("select Select SELECT") == [("KEYWORD", "SELECT")] * 3

    def test_identifiers(self):
        assert kinds("brep_no face2 _x") == [
            ("IDENT", "brep_no"), ("IDENT", "face2"), ("IDENT", "_x")]

    def test_integers_and_floats(self):
        assert kinds("42 1.5 1.9E4 2E3 1.0e-2") == [
            ("INT", "42"), ("FLOAT", "1.5"), ("FLOAT", "1.9E4"),
            ("FLOAT", "2E3"), ("FLOAT", "1.0e-2")]

    def test_int_followed_by_dot_not_float(self):
        # "piece_list (0).solid_no" needs INT ')' '.' IDENT
        got = kinds("(0).solid_no")
        assert got == [("OP", "("), ("INT", "0"), ("OP", ")"),
                       ("OP", "."), ("IDENT", "solid_no")]

    def test_strings_both_quotes(self):
        assert kinds("'abc' \"def\"") == [("STRING", "abc"), ("STRING", "def")]

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_operators(self):
        assert kinds(":= <= >= != <> = < >") == [
            ("OP", ":="), ("OP", "<="), ("OP", ">="), ("OP", "!="),
            ("OP", "!="), ("OP", "="), ("OP", "<"), ("OP", ">")]

    def test_comments_skipped(self):
        assert kinds("a (* qualification *) b") == [
            ("IDENT", "a"), ("IDENT", "b")]

    def test_unterminated_comment(self):
        with pytest.raises(LexerError):
            tokenize("a (* oops")

    def test_unknown_character(self):
        with pytest.raises(LexerError):
            tokenize("a § b")

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "EOF"

    def test_structure_expression(self):
        got = kinds("brep-face-edge-point")
        assert got == [("IDENT", "brep"), ("OP", "-"), ("IDENT", "face"),
                       ("OP", "-"), ("IDENT", "edge"), ("OP", "-"),
                       ("IDENT", "point")]
