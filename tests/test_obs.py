"""Tests: the observability layer (repro.obs) and its surfaces.

Covers the PR-9 acceptance properties:

* ``Counters`` / ``MetricsRegistry`` pickle round-trips (the engine
  checkpoints itself with ``pickle.dumps(db)``, locks excluded);
* histogram bucket edges are upper-edge inclusive, Prometheus-style;
* ``merge()`` is associative, so per-session/per-shard registries fold
  into one cluster view in any grouping;
* tracer sampling is deterministic and the disabled path returns None;
* the slow log stays bounded and ranks slowest-first;
* a 4-shard scatter trace carries one child span per shard whose summed
  operator self-times never exceed the root span's duration, and
  ``explain(analyze=True)`` renders those shard lines;
* ``server_stats()`` returns the identical histogram schema over the
  in-process transport and the socket daemon;
* ``Prima.metrics_report()`` exports the counters/gauges/histograms
  shape every bench embeds.
"""

from __future__ import annotations

import pickle

import pytest

import repro
from repro import Prima, ShardedCluster
from repro.obs import (
    LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
    SlowLog,
    Tracer,
)
from repro.serve import PrimaDaemon, SessionManager
from repro.util.stats import Counters


# ---------------------------------------------------------------------------
# Counters / MetricsRegistry pickling
# ---------------------------------------------------------------------------

class TestPickling:

    def test_counters_round_trip(self):
        counters = Counters()
        counters.bump("atoms_read", 7)
        counters.bump("pages_fixed")
        clone = pickle.loads(pickle.dumps(counters))
        assert clone.snapshot() == counters.snapshot()
        clone.bump("atoms_read")          # the lock came back usable
        assert clone.get("atoms_read") == 8

    def test_registry_round_trip(self):
        registry = MetricsRegistry()
        registry.bump("queries", 3)
        registry.gauge("buffer_hit_ratio", 0.75)
        registry.observe("query_latency_ms", 12.0)
        registry.observe("fetch_batch_rows", 16.0)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.report() == registry.report()
        clone.observe("query_latency_ms", 1.0)   # still observable
        assert clone.histogram("query_latency_ms").count == 2

    def test_engine_with_observability_round_trips(self):
        db = Prima()
        db.execute("CREATE ATOM_TYPE t (t_id: IDENTIFIER, n: INTEGER) "
                   "KEYS_ARE (n)")
        db.insert_atom("t", {"n": 1})
        db.obs.enable_tracing(1.0)
        db.query("SELECT ALL FROM t").materialize()
        clone = pickle.loads(pickle.dumps(db))
        assert clone.obs.tracer.enabled
        assert len(clone.query("SELECT ALL FROM t")) == 1


# ---------------------------------------------------------------------------
# Histogram semantics
# ---------------------------------------------------------------------------

class TestHistogram:

    def test_bucket_edges_are_upper_inclusive(self):
        hist = Histogram((1.0, 5.0, 10.0))
        hist.observe(1.0)       # == first bound: first bucket
        hist.observe(1.0001)    # just past it: second bucket
        hist.observe(5.0)       # == second bound: second bucket
        hist.observe(10.0)      # == last bound: third bucket
        hist.observe(10.0001)   # overflow bucket
        assert hist.counts == [1, 2, 1, 1]
        assert hist.count == 5

    def test_underflow_lands_in_first_bucket(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(0.0)
        hist.observe(-3.0)
        assert hist.counts == [2, 0, 0]

    def test_merge_requires_identical_bounds(self):
        hist = Histogram((1.0, 2.0))
        with pytest.raises(ValueError, match="different bounds"):
            hist.merge(Histogram((1.0, 3.0)))

    def test_bounds_must_ascend(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram((2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram(())

    def test_snapshot_schema(self):
        hist = Histogram((1.0,))
        hist.observe(0.5)
        snap = hist.snapshot()
        assert set(snap) == {"bounds", "counts", "count", "sum"}
        assert snap["bounds"] == [1.0]
        assert snap["counts"] == [1, 0]
        assert snap["sum"] == 0.5

    def test_quantile_returns_bucket_edge(self):
        hist = Histogram((1.0, 10.0, 100.0))
        for value in (0.5, 0.6, 5.0, 50.0):
            hist.observe(value)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(1.0) == 100.0


# ---------------------------------------------------------------------------
# Registry merge
# ---------------------------------------------------------------------------

class TestMerge:

    @staticmethod
    def _registry(latency: float, queries: int,
                  ratio: float) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.bump("queries", queries)
        registry.gauge("buffer_hit_ratio", ratio)
        registry.observe("query_latency_ms", latency)
        return registry

    def test_merge_is_associative(self):
        a = self._registry(1.0, 1, 0.1)
        b = self._registry(30.0, 2, 0.5)
        c = self._registry(700.0, 4, 0.9)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.report() == right.report()
        assert left.get("queries") == 7
        assert left.histogram("query_latency_ms").count == 3

    def test_merge_does_not_mutate_sources(self):
        a = self._registry(1.0, 1, 0.1)
        b = self._registry(2.0, 2, 0.2)
        a.merge(b)
        assert a.get("queries") == 1
        assert b.histogram("query_latency_ms").count == 1

    def test_gauges_take_last_writer(self):
        a = self._registry(1.0, 1, 0.1)
        b = self._registry(1.0, 1, 0.9)
        assert a.merge(b).gauge_value("buffer_hit_ratio") == 0.9
        assert b.merge(a).gauge_value("buffer_hit_ratio") == 0.1

    def test_default_buckets_make_schemas_mergeable(self):
        # Two registries that never saw each other still agree on the
        # bounds of a well-known name — merge cannot raise.
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("query_latency_ms", 3.0)
        b.observe("query_latency_ms", 4000.0)
        merged = a.merge(b)
        assert merged.histogram("query_latency_ms").bounds == \
            tuple(LATENCY_BUCKETS_MS)


# ---------------------------------------------------------------------------
# Tracer sampling
# ---------------------------------------------------------------------------

class TestTracer:

    def test_disabled_returns_none(self):
        tracer = Tracer()
        assert not tracer.enabled
        assert tracer.start("query") is None

    def test_full_sampling_traces_everything(self):
        tracer = Tracer(1.0)
        spans = [tracer.start("query") for _ in range(5)]
        assert all(span is not None for span in spans)

    def test_fractional_sampling_is_deterministic(self):
        tracer = Tracer()
        tracer.enable(0.25)
        hits = [tracer.start("query") is not None for _ in range(8)]
        assert hits == [False, False, False, True] * 2

    def test_enable_validates_sample(self):
        tracer = Tracer()
        for bad in (0.0, -1.0, 1.5):
            with pytest.raises(ValueError, match="sample"):
                tracer.enable(bad)

    def test_span_tree_shape(self):
        tracer = Tracer(1.0)
        root = tracer.start("query", mql="SELECT")
        child = root.child("shard:0", rows=3)
        child.finish()
        root.finish()
        assert [span.name for span in root.walk()] == ["query", "shard:0"]
        tree = root.to_dict()
        assert tree["attrs"] == {"mql": "SELECT"}
        assert tree["children"][0]["attrs"]["rows"] == 3
        assert root.self_time <= root.duration


# ---------------------------------------------------------------------------
# Slow log
# ---------------------------------------------------------------------------

class TestSlowLog:

    def test_bounded_and_ranked(self):
        log = SlowLog(capacity=3)
        for i in range(10):
            log.record(f"q{i}", duration=float(i))
        assert len(log) == 3
        entries = log.entries()
        assert [e["mql"] for e in entries] == ["q9", "q8", "q7"]
        assert entries[0]["duration_ms"] == 9000.0

    def test_fast_query_rejected_when_saturated(self):
        log = SlowLog(capacity=2)
        assert log.record("slow", 2.0)
        assert log.record("slower", 3.0)
        assert not log.record("fast", 0.1)
        assert len(log) == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            SlowLog(capacity=0)


# ---------------------------------------------------------------------------
# Sharded scatter trace (the acceptance query)
# ---------------------------------------------------------------------------

class TestShardedTrace:

    @pytest.fixture()
    def cluster(self):
        with ShardedCluster(shards=4) as cluster:
            cluster.execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, "
                            "name: CHAR_VAR, grade: INTEGER) "
                            "KEYS_ARE (name)")
            for i in range(64):
                cluster.execute(f"INSERT part (name = 'p{i}', "
                                f"grade = {(i * 37) % 100})")
            yield cluster

    MQL = "SELECT ALL FROM part ORDER BY grade DESC LIMIT 5"

    def test_scatter_trace_one_child_span_per_shard(self, cluster):
        span = cluster.trace(self.MQL)
        shard_spans = [c for c in span.children
                       if c.name.startswith("shard:")]
        assert sorted(c.name for c in shard_spans) == \
            [f"shard:{i}" for i in range(4)]
        assert span.attrs["mode"] == "scatter"
        assert span.attrs["rows"] == 5

    def test_shard_self_times_bounded_by_root_duration(self, cluster):
        span = cluster.trace(self.MQL)
        for shard_span in span.children:
            operator_self = sum(s.self_time for s in shard_span.walk())
            assert operator_self <= span.duration + 1e-9

    def test_explain_analyze_renders_shard_lines(self, cluster):
        text = cluster.explain(self.MQL, analyze=True)
        assert "analyzed:" in text
        for i in range(4):
            assert f"shard:{i}" in text

    def test_routed_trace_touches_one_shard(self, cluster):
        span = cluster.trace("SELECT ALL FROM part WHERE name = 'p7'")
        assert span.attrs["mode"] == "routed"
        assert len([c for c in span.children
                    if c.name.startswith("shard:")]) == 1

    def test_trace_rejects_non_select(self, cluster):
        with pytest.raises(repro.PrimaError, match="SELECT"):
            cluster.trace("INSERT part (name = 'x', grade = 1)")


# ---------------------------------------------------------------------------
# server_stats over both transports
# ---------------------------------------------------------------------------

def _build_db() -> Prima:
    db = Prima()
    db.execute("CREATE ATOM_TYPE t (t_id: IDENTIFIER, n: INTEGER) "
               "KEYS_ARE (n)")
    for i in range(32):
        db.insert_atom("t", {"n": i})
    return db


class TestServerStats:

    @staticmethod
    def _exercise(conn) -> dict:
        for mql in ("SELECT ALL FROM t",
                    "SELECT ALL FROM t ORDER BY n LIMIT 3"):
            result = conn.query(mql)
            result.materialize()
            result.close()     # lazy cursors bill on close, not drain
        return conn.server_stats()

    def test_schema_identical_in_process_and_socket(self):
        in_process = self._exercise(repro.connect(_build_db(), name="ip"))
        manager = SessionManager(_build_db(), max_sessions=2)
        with PrimaDaemon(manager) as daemon:
            host, port = daemon.address
            with repro.connect(f"prima://{host}:{port}",
                               name="sock") as conn:
                remote = self._exercise(conn)

        assert set(in_process) == set(remote) == {"metrics", "slowlog"}
        local_hists = in_process["metrics"]["histograms"]
        remote_hists = remote["metrics"]["histograms"]
        # The query-path histograms exist on both transports; the
        # daemon adds transport-only ones (send_queue_depth, …) on top.
        core = {"query_latency_ms", "request_latency_ms",
                "fetch_batch_rows", "buffer_hit_ratio"}
        assert core <= set(local_hists)
        assert core <= set(remote_hists)
        for name in set(local_hists) & set(remote_hists):
            local, remote_hist = local_hists[name], remote_hists[name]
            assert set(local) == set(remote_hist) == \
                {"bounds", "counts", "count", "sum"}
            assert local["bounds"] == remote_hist["bounds"]

    def test_traced_queries_reach_the_remote_slowlog(self):
        db = _build_db()
        db.obs.enable_tracing(1.0)
        manager = SessionManager(db, max_sessions=2)
        with PrimaDaemon(manager) as daemon:
            host, port = daemon.address
            with repro.connect(f"prima://{host}:{port}",
                               name="ops") as conn:
                result = conn.query("SELECT ALL FROM t ORDER BY n LIMIT 3")
                result.materialize()
                result.close()
                stats = conn.server_stats()
        # Sampled entries carry span trees: the engine's per-query spans
        # and the session's per-message spans both land in the log.
        trees = [e["trace"] for e in stats["slowlog"] if "trace" in e]
        assert trees, "sampled queries left no span in the slow log"
        query_trees = [t for t in trees if t["name"] == "query"]
        assert query_trees, "no engine query span reached the slow log"
        assert query_trees[0]["children"], \
            "span tree lost its operator spans"
        assert any(t["name"].startswith("msg:") for t in trees)

    def test_reset_clears_server_side_state(self):
        with repro.connect(_build_db(), name="r") as conn:
            result = conn.query("SELECT ALL FROM t")
            result.materialize()
            result.close()
            before = conn.server_stats()
            assert any(e["mql"] == "SELECT ALL FROM t"
                       for e in before["slowlog"])
            conn.server_stats(reset=True)
            stats = conn.server_stats()
            assert all(e["mql"] != "SELECT ALL FROM t"
                       for e in stats["slowlog"])

    def test_remote_trace_round_trips(self):
        manager = SessionManager(_build_db(), max_sessions=2)
        with PrimaDaemon(manager) as daemon:
            host, port = daemon.address
            with repro.connect(f"prima://{host}:{port}",
                               name="t") as conn:
                traced = conn.trace("SELECT ALL FROM t ORDER BY n LIMIT 2")
        assert traced["tree"]["name"] == "query"
        assert "RootScan" in traced["text"]


# ---------------------------------------------------------------------------
# Prima.metrics_report()
# ---------------------------------------------------------------------------

class TestMetricsReport:

    def test_report_structure(self):
        db = _build_db()
        result = db.query("SELECT ALL FROM t")
        result.materialize()
        result.close()     # lazy cursors bill on close, not drain
        report = db.metrics_report()
        assert set(report) == {"counters", "gauges", "histograms"}
        assert report["counters"]["statements_parsed"] >= 1
        assert 0.0 <= report["gauges"]["buffer_hit_ratio"] <= 1.0
        latency = report["histograms"]["query_latency_ms"]
        assert latency["count"] >= 1
        assert latency["bounds"] == list(LATENCY_BUCKETS_MS)

    def test_cluster_report_merges_shards(self):
        with ShardedCluster(shards=2) as cluster:
            cluster.execute("CREATE ATOM_TYPE t (t_id: IDENTIFIER, "
                            "n: INTEGER) KEYS_ARE (n)")
            for i in range(8):
                cluster.execute(f"INSERT t (n = {i})")
            result = cluster.execute("SELECT ALL FROM t ORDER BY n")
            result.materialize()
            result.close()
            report = cluster.metrics_report()
        assert set(report) == {"counters", "gauges", "histograms"}
        assert report["histograms"]["query_latency_ms"]["count"] >= 1
