"""Tests: TopK pushdown, per-operator timing, and pipeline re-opening.

Covers the bounded-heap TopK operator against the full-sort oracle
(ties, OFFSET, k larger than the result, descending keys), the
acceptance bound that an ORDER BY + LIMIT k query over >= 10k molecules
retains at most k + offset molecules in the heap, the sargable early
exit over a prefix-matching sort order, the ``operator_time:*``
counters and ``explain(analyze=True)``, and the Sort/TopK cached-run
regression (re-opening a result set must not re-sort).
"""

import pytest

from repro import Prima
from repro.data.operators import Sort, TopK, top_k_stable
from repro.mql.parser import parse

N_PARTS = 60


@pytest.fixture()
def db():
    database = Prima()
    database.execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, "
                     "n: INTEGER, grp: INTEGER) KEYS_ARE (n)")
    for value in range(N_PARTS):
        # grp repeats (ties), rev reverses the insertion order.
        database.insert_atom("part", {"n": value, "grp": value % 4})
    return database


def _find(operator, kind):
    if isinstance(operator, kind):
        return operator
    for child in operator.children:
        found = _find(child, kind)
        if found is not None:
            return found
    return None


def _oracle(db, order_key, limit, offset=0):
    """Stable full sort + window over all parts, as (grp, n) tuples."""
    molecules = db.query("SELECT ALL FROM part").materialize()
    decorated = sorted(
        ((order_key(m), i, m) for i, m in enumerate(molecules)),
        key=lambda t: (t[0], t[1]),
    )
    return [m.atom["n"] for _k, _i, m in decorated[offset:offset + limit]]


class TestTopKCorrectness:
    def test_matches_full_sort_with_ties(self, db):
        got = [m.atom["n"] for m in
               db.query("SELECT ALL FROM part ORDER BY grp LIMIT 9")]
        # grp has 4 values over 60 parts: heavy ties; stability means the
        # earliest-inserted parts of grp 0 win.
        assert got == _oracle(db, lambda m: (m.atom["grp"],), 9)
        assert got == [0, 4, 8, 12, 16, 20, 24, 28, 32]

    def test_offset_window(self, db):
        got = [m.atom["n"] for m in
               db.query("SELECT ALL FROM part ORDER BY grp, n "
                        "LIMIT 5 OFFSET 7")]
        assert got == _oracle(db, lambda m: (m.atom["grp"], m.atom["n"]),
                              5, offset=7)

    def test_k_larger_than_result(self, db):
        got = [m.atom["n"] for m in
               db.query("SELECT ALL FROM part ORDER BY n DESC LIMIT 500")]
        assert got == list(reversed(range(N_PARTS)))

    def test_offset_beyond_result_is_empty(self, db):
        result = db.query("SELECT ALL FROM part ORDER BY n "
                          "LIMIT 5 OFFSET 500")
        assert len(result) == 0

    def test_descending_keys(self, db):
        got = [(m.atom["grp"], m.atom["n"]) for m in
               db.query("SELECT ALL FROM part ORDER BY grp DESC, n DESC "
                        "LIMIT 6")]
        everything = sorted(
            ((m.atom["grp"], m.atom["n"]) for m in
             db.query("SELECT ALL FROM part")),
            reverse=True,
        )
        assert got == everything[:6]

    def test_mixed_directions(self, db):
        got = [(m.atom["grp"], m.atom["n"]) for m in
               db.query("SELECT ALL FROM part ORDER BY grp, n DESC "
                        "LIMIT 4")]
        assert got == [(0, 56), (0, 52), (0, 48), (0, 44)]

    def test_limit_zero_pulls_nothing(self, db):
        db.reset_accounting()
        result = db.query("SELECT ALL FROM part ORDER BY grp LIMIT 0")
        assert len(result) == 0
        assert db.io_report().get("operator_rows:MoleculeConstruct", 0) == 0

    def test_equals_sort_pipeline_output(self, db):
        statement = parse("SELECT ALL FROM part ORDER BY grp, n DESC "
                          "LIMIT 8 OFFSET 3")
        plan = db.data.plan_select(statement)
        with_topk = [m.atom["n"]
                     for m in plan.compile(db.data)]
        plan = db.data.plan_select(statement)
        with_sort = [m.atom["n"]
                     for m in plan.compile(db.data, use_topk=False)]
        assert with_topk == with_sort

    def test_top_k_stable_helper_matches_sort(self):
        items = [(i % 3, i) for i in range(20)]
        got = top_k_stable(items, [("a", False)],
                           lambda item, _attr: item[0], 5, offset=2)
        want = sorted(items, key=lambda t: t[0])[2:7]
        assert got == want


class TestHeapBound:
    def test_10k_molecules_retain_at_most_k_plus_offset(self):
        """The acceptance criterion: ORDER BY + LIMIT k over >= 10k
        molecules keeps at most k + offset molecules in the heap."""
        db = Prima()
        db.execute("CREATE ATOM_TYPE item (item_id: IDENTIFIER, "
                   "n: INTEGER, grp: INTEGER) KEYS_ARE (n)")
        total, k, offset = 10_000, 7, 3
        for i in range(total):
            db.insert_atom("item", {"n": i, "grp": i % 11})
        statement = parse(f"SELECT ALL FROM item ORDER BY grp, n "
                          f"LIMIT {k} OFFSET {offset}")
        plan = db.data.plan_select(statement)
        db.reset_accounting()
        pipeline = plan.compile(db.data)
        delivered = [m.atom["n"] for m in pipeline]
        report = db.io_report()
        topk = _find(pipeline, TopK)
        assert topk is not None
        assert topk.max_heap_size <= k + offset
        assert report.get("operator_rows:TopK") == k
        assert report.get("operator_rows:MoleculeConstruct") == total
        assert delivered == [33, 44, 55, 66, 77, 88, 99]

    def test_heap_never_exceeds_bound_small(self, db):
        statement = parse("SELECT ALL FROM part ORDER BY grp "
                          "LIMIT 3 OFFSET 2")
        plan = db.data.plan_select(statement)
        pipeline = plan.compile(db.data)
        list(pipeline)
        assert _find(pipeline, TopK).max_heap_size == 5


class TestEarlyExit:
    def test_prefix_sort_order_cuts_construction_short(self, db):
        db.execute_ldl("CREATE SORT ORDER by_grp ON part (grp)")
        statement = parse("SELECT ALL FROM part ORDER BY grp, n LIMIT 4")
        plan = db.data.plan_select(statement)
        assert plan.order_prefix_served == 1
        assert not plan.order_served_by_access
        db.reset_accounting()
        pipeline = plan.compile(db.data)
        got = [m.atom["n"] for m in pipeline]
        assert got == [0, 4, 8, 12]          # the first four of grp 0
        topk = _find(pipeline, TopK)
        # The dynamic bound pushdown stops the sort-order walk *before*
        # the first grp-1 root is constructed, so the delivery-time early
        # exit never has to fire.
        assert topk.bounds_pushed > 0
        assert not topk.cut_short
        constructed = db.io_report().get("operator_rows:MoleculeConstruct")
        # grp 0 holds 15 parts; the walk stops at the first grp 1 entry,
        # which is never constructed (the pre-pushdown pipeline built 16).
        assert constructed < N_PARTS
        assert constructed == 15

    def test_delivery_time_exit_without_bound_pushdown(self, db):
        """``push_bound=False`` keeps the old delivery-time early exit:
        one beyond-bound molecule is constructed before TopK stops."""
        db.execute_ldl("CREATE SORT ORDER by_grp ON part (grp)")
        statement = parse("SELECT ALL FROM part ORDER BY grp, n LIMIT 4")
        plan = db.data.plan_select(statement)
        db.reset_accounting()
        pipeline = plan.compile(db.data, push_bound=False)
        got = [m.atom["n"] for m in pipeline]
        assert got == [0, 4, 8, 12]
        topk = _find(pipeline, TopK)
        assert topk.cut_short
        assert topk.bounds_pushed == 0
        assert db.io_report().get("operator_rows:MoleculeConstruct") == 16

    def test_early_exit_result_equals_full_sort(self, db):
        mql = "SELECT ALL FROM part ORDER BY grp, n LIMIT 6 OFFSET 2"
        without = [m.atom["n"] for m in db.query(mql)]
        db.execute_ldl("CREATE SORT ORDER by_grp ON part (grp)")
        with_order = [m.atom["n"] for m in db.query(mql)]
        assert with_order == without

    def test_longer_sort_order_serves_shorter_order_by(self, db):
        db.execute_ldl("CREATE SORT ORDER by_grp_n ON part (grp, n)")
        plan = db.data.plan_select(parse("SELECT ALL FROM part "
                                         "ORDER BY grp LIMIT 5"))
        assert plan.order_served_by_access
        got = [m.atom["grp"] for m in
               db.query("SELECT ALL FROM part ORDER BY grp LIMIT 5")]
        assert got == [0] * 5


class TestOperatorTiming:
    def test_operator_time_counters(self, db):
        db.reset_accounting()
        db.query("SELECT ALL FROM part ORDER BY grp LIMIT 5").materialize()
        report = db.io_report()
        for name in ("operator_time:RootScan",
                     "operator_time:MoleculeConstruct",
                     "operator_time:TopK", "operator_time:Project"):
            assert report.get(name, 0) > 0, name

    def test_self_time_excludes_children(self, db):
        statement = parse("SELECT ALL FROM part")
        plan = db.data.plan_select(statement)
        pipeline = plan.compile(db.data)
        list(pipeline)
        total = pipeline.time_total
        child_total = pipeline.children[0].time_total
        assert pipeline.self_time == pytest.approx(total - child_total)
        assert 0 <= pipeline.self_time <= total

    def test_explain_analyze_renders_rows_and_time(self, db):
        text = db.explain("SELECT ALL FROM part ORDER BY grp LIMIT 3",
                          analyze=True)
        assert "analyzed:" in text
        assert "TopK" in text
        assert f"[rows={N_PARTS}," in text      # construction saw all
        assert "[rows=3," in text               # the window delivered 3
        assert "ms]" in text

    def test_plain_explain_does_not_execute(self, db):
        db.reset_accounting()
        db.explain("SELECT ALL FROM part ORDER BY grp LIMIT 3")
        assert db.io_report().get("operator_rows:RootScan", 0) == 0


class TestSortRunCaching:
    def test_reopen_does_not_resort_or_reconstruct(self, db):
        db.reset_accounting()
        result = db.query("SELECT ALL FROM part ORDER BY grp")
        first = [m.atom["n"] for m in result]
        report = db.io_report()
        assert report.get("operator_sort_runs") == 1
        constructed = report.get("operator_rows:MoleculeConstruct")
        result.reopen()
        second = [m.atom["n"] for m in result]
        assert second == first
        report = db.io_report()
        assert report.get("operator_sort_runs") == 1          # no re-sort
        assert report.get("operator_rows:MoleculeConstruct") == constructed

    def test_topk_reopen_replays_cached_run(self, db):
        db.reset_accounting()
        result = db.query("SELECT ALL FROM part ORDER BY grp LIMIT 4")
        first = [m.atom["n"] for m in result]
        constructed = db.io_report().get("operator_rows:MoleculeConstruct")
        result.reopen()
        assert [m.atom["n"] for m in result] == first
        report = db.io_report()
        assert report.get("operator_topk_runs") == 1
        assert report.get("operator_rows:MoleculeConstruct") == constructed

    def test_reopen_without_breaker_reexecutes(self, db):
        db.reset_accounting()
        result = db.query("SELECT ALL FROM part LIMIT 3")
        assert len(result.materialize()) == 3
        result.reopen()
        assert len(result.materialize()) == 3
        # no pipeline breaker: the molecules really are re-constructed
        assert db.io_report().get("operator_rows:MoleculeConstruct") == 6

    def test_reopen_after_partial_close_raises(self, db):
        from repro.errors import CursorStateError
        result = db.query("SELECT ALL FROM part ORDER BY n LIMIT 5")
        result.fetch_next()
        result.close()                         # 4 molecules abandoned
        assert result.truncated
        with pytest.raises(CursorStateError):
            result.reopen()                    # the cache is a prefix

    def test_reopen_after_exhausted_close_is_legal(self, db):
        result = db.query("SELECT ALL FROM part ORDER BY n LIMIT 5")
        assert len(result.materialize()) == 5
        result.close()                         # nothing was pending
        assert not result.truncated
        result.reopen()                        # cursor reset over the cache
        assert result.fetch_next() is not None
        assert len(result) == 5

    def test_rewound_sort_operator_emits_same_run(self, db):
        statement = parse("SELECT ALL FROM part ORDER BY grp")
        plan = db.data.plan_select(statement)
        pipeline = plan.compile(db.data, use_topk=False)
        first = [m.atom["n"] for m in pipeline]
        sort = _find(pipeline, Sort)
        construct_rows = sort.children[0].rows_out
        pipeline.rewind()
        assert [m.atom["n"] for m in pipeline] == first
        assert sort.children[0].rows_out == construct_rows
