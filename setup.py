"""Setuptools shim for offline editable installs (``pip install -e .``).

The execution environment has no network and no ``wheel`` package, which
breaks PEP 660 editable builds; the classic ``setup.py develop`` path used
by pip for projects with a ``setup.py`` works without it.  All metadata
lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "PRIMA reproduction: a DBMS kernel implementing the "
        "Molecule-Atom Data model (VLDB 1987)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
