#!/usr/bin/env python3
"""Daemon serving: many clients, one event-loop thread, one client API.

Starts a :class:`~repro.serve.PrimaDaemon` — the asyncio transport that
multiplexes every socket client onto a single event-loop thread — and
talks to it three ways:

* a blocking client via ``repro.connect("prima://host:port")``, the
  same :class:`~repro.serve.Connection` API the quickstart uses
  in-process (the transport is invisible to the application);
* a fleet of *async* clients speaking the wire protocol directly from
  one ``asyncio`` loop (no thread per client on either side);
* the server's own accounting: every exchange is billed against the
  network cost model by the protocol codec, identically on every
  transport, and idle sessions are reaped without client cooperation.

Run:  python examples/daemon_serving.py
"""

import asyncio

import repro
from repro.serve import PrimaDaemon, SessionManager, protocol
from repro.serve.aio import open_client

N_PARTS = 120
GROUPS = 4
FLEET = 8


def build_instance() -> repro.Prima:
    db = repro.Prima()
    db.execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, "
               "n: INTEGER, grp: INTEGER) KEYS_ARE (n)")
    for i in range(N_PARTS):
        db.insert_atom("part", {"n": i, "grp": i % GROUPS})
    return db


async def async_worker(host: str, port: int, index: int) -> int:
    """One protocol-speaking coroutine: HELLO, OPEN, FETCH*, GOODBYE."""
    async with await open_client(host, port, f"worker{index}") as client:
        reply = await client.request(protocol.Open(
            f"SELECT ALL FROM part WHERE grp = {index % GROUPS}",
            16, (), None))
        rows, exhausted = len(reply.batch), reply.exhausted
        while not exhausted:
            batch = await client.request(
                protocol.Fetch(reply.cursor_id, 16))
            rows += len(batch.batch)
            exhausted = batch.exhausted
        return rows


def main() -> None:
    db = build_instance()
    manager = SessionManager(db, max_sessions=FLEET,
                             default_fetch_size="auto",
                             session_lease=30.0)

    with PrimaDaemon(manager) as daemon:
        host, port = daemon.address
        print(f"daemon   : serving on prima://{host}:{port} "
              f"(one event-loop thread)")

        # A blocking client — the exact Connection API of the
        # quickstart, now over a socket.
        with repro.connect(f"prima://{host}:{port}", name="app") as conn:
            cursor = conn.cursor("SELECT ALL FROM part WHERE grp = 0")
            rows = len(list(cursor))
            print(f"sync     : {rows} molecules streamed, fetch size "
                  f"auto-tuned to {cursor.fetch_size} from the network "
                  f"model")
            stmt = conn.prepare("SELECT ALL FROM part WHERE grp = ?")
            print(f"prepared : {len(list(stmt.execute(1)))} molecules "
                  f"via a server-side statement handle")

        # An async fleet — every client a coroutine, both sides O(1)
        # threads.
        async def fleet():
            return await asyncio.gather(*[
                async_worker(host, port, i) for i in range(FLEET)])

        counts = asyncio.run(fleet())
        print(f"fleet    : {FLEET} async clients streamed {counts} "
              f"molecules concurrently")

        report = manager.io_report()
        print(f"accounting: {int(report['net_messages'])} messages, "
              f"{int(report['net_bytes'])} bytes, "
              f"{report['net_comm_time_ms']:.1f} modelled ms on the "
              f"wire; {int(report['serve_sessions_opened'])} sessions "
              f"served")

    print("daemon   : stopped (sessions aborted, slots reclaimed)")


if __name__ == "__main__":
    main()
