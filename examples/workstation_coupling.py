#!/usr/bin/env python3
"""Workstation-host coupling: checkout, local work, checkin.

Couples an engineering workstation to a PRIMA server (paper, section 4):
molecules are checked out into the workstation's object buffer in one
set-oriented transfer, edited locally with zero communication, and checked
in at commit time.  The record-at-a-time baseline shows why the
set-oriented MAD interface is "a major prerequisite to reduce
communication overhead".

Run:  python examples/workstation_coupling.py
"""

from repro import Prima
from repro.coupling import PrimaServer, Workstation
from repro.workloads import brep

CHECKOUT = "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713"


def main() -> None:
    db = Prima()
    handles = brep.generate(db, n_solids=6)
    print("server database:", handles.counts())

    # --- set-oriented checkout (the MAD interface) ------------------------
    server = PrimaServer(db)
    station = Workstation(server, name="cad-1")
    result = station.checkout(CHECKOUT)
    print(f"\ncheckout: {result.atom_count()} atoms in "
          f"{server.stats.messages} messages "
          f"({server.stats.bytes_sent} bytes, "
          f"{server.stats.comm_time_ms:.1f} ms)")

    # --- local engineering work: no communication at all ------------------
    before_msgs = server.stats.messages
    molecule = result[0]
    for edge in molecule.component_list("edge"):
        values = station.read(edge.surrogate)
        station.modify(edge.surrogate, {"length": values["length"] * 2.0})
    print(f"local work: {station.buffer.local_reads} reads, "
          f"{station.buffer.local_writes} writes, "
          f"{server.stats.messages - before_msgs} messages")

    # --- checkin at commit -------------------------------------------------
    applied = station.commit()
    print(f"checkin: {applied} modified atoms in "
          f"{server.stats.messages - before_msgs} messages")
    sample = db.access.get(handles.edges[0])
    print(f"server sees new length {sample['length']:.2f}")

    # --- the record-at-a-time baseline -------------------------------------
    baseline_server = PrimaServer(db)
    baseline = Workstation(baseline_server, name="cad-legacy")
    baseline.checkout(CHECKOUT, set_oriented=False)
    a, b = server.stats, baseline_server.stats
    print(f"\nset-oriented : {a.messages:5d} messages "
          f"{a.comm_time_ms:9.1f} ms")
    print(f"record-based : {b.messages:5d} messages "
          f"{b.comm_time_ms:9.1f} ms")
    print(f"reduction    : {b.messages / a.messages:.0f}x fewer messages, "
          f"{b.comm_time_ms / a.comm_time_ms:.0f}x less time")

    assert db.verify_integrity() == []
    print("\nintegrity: OK")


if __name__ == "__main__":
    main()
