#!/usr/bin/env python3
"""Live queries: a CAD checkin pushes a refresh to every workstation.

The workstation coupling (``examples/workstation_coupling.py``) pulls:
checkout a design subset, edit locally, check the object buffer back
in.  Live queries close the loop in the other direction — the server
*pushes*.  A workstation SUBSCRIBEs the query describing its working
set; the engine extracts the query's dependency set (root + referenced
atom types + catalog version) from the plan, and from then on every
commit boundary publishes a typed epoch delta that is intersected with
the registered dependency sets:

* a commit touching none of a subscription's types costs one set
  lookup (``invalidations_skipped``) — never a re-evaluation;
* a matching commit pushes an unsolicited NOTIFY frame, correlation-id
  framed so it never splices into a concurrent request/reply exchange;
* ``deliver="requery"`` re-runs the statement against a fresh snapshot
  and ships the new molecules with the frame.

Run:  python examples/live_queries.py
"""

import repro
from repro.serve import PrimaDaemon, SessionManager

N_PARTS = 12


def build_instance() -> repro.Prima:
    db = repro.Prima()
    db.execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, "
               "name: CHAR_VAR, weight: INTEGER, released: INTEGER) "
               "KEYS_ARE (name)")
    db.execute("CREATE ATOM_TYPE note (note_id: IDENTIFIER, "
               "text: CHAR_VAR)")
    for i in range(N_PARTS):
        db.insert_atom("part", {"name": f"gear-{i}", "weight": 100 + i,
                                "released": 0})
    return db


def main() -> None:
    db = build_instance()
    manager = SessionManager(db)
    with PrimaDaemon(manager) as daemon:
        # Two workstations and one designer, all over the socket.
        viewer = daemon.connect(name="viewer")
        board = daemon.connect(name="dashboard")
        designer = daemon.connect(name="designer")

        # The viewer wants the fresh result with every push; the
        # dashboard only wants to know *that* something changed.
        live = viewer.subscribe(
            "SELECT ALL FROM part WHERE released = 1",
            deliver="requery")
        board.subscribe("SELECT ALL FROM part")
        print(f"subscribed: dependency types {live.types}, "
              f"catalog v{live.catalog_version}")

        # Unrelated commits are invisible to both subscriptions — the
        # invalidation index skips them with one set lookup.
        designer.execute("INSERT note (text = 'lunch at noon')")
        assert viewer.notifications(timeout=0.2) == []
        skipped = db.io_report().get("invalidations_skipped", 0)
        print(f"unrelated commit: no NOTIFY, {skipped} skip(s) counted")

        # The designer checks out a part, edits it locally, checks the
        # object buffer back in — the classic coupling round-trip.
        cursor = designer.checkout(
            "SELECT ALL FROM part WHERE name = 'gear-3'")
        gear = cursor.next()
        cursor.close()
        designer.checkin({gear.surrogate: {"weight": 93, "released": 1}})
        print("designer checked in gear-3 (released, 93g)")

        # Both workstations hear about it without asking.
        refresh = viewer.notifications(timeout=5.0)
        while not refresh:
            refresh = viewer.notifications(timeout=0.5)
        frame = refresh[-1]
        released = sorted(m.atom["name"] for m in frame.molecules)
        print(f"viewer refresh: epoch {frame.epoch}, types "
              f"{frame.types}, released parts now {released}")
        ping = board.notifications(timeout=5.0)
        while not ping:
            ping = board.notifications(timeout=0.5)
        print(f"dashboard ping: {len(ping)} NOTIFY frame(s), "
              f"no payload (deliver='notify')")

        report = db.io_report()
        print("accounting:",
              report.get("invalidations_fired", 0), "fired /",
              report.get("invalidations_skipped", 0), "skipped /",
              report.get("subscription_requeries", 0), "requeries")
        for conn in (viewer, board, designer):
            conn.close()


if __name__ == "__main__":
    main()
