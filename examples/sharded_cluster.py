#!/usr/bin/env python3
"""Sharded scale-out: a partitioned engine cluster behind one API.

A :class:`repro.ShardedCluster` owns N independent PRIMA engines — each
with its own buffer, locks, catalog, plan cache, and snapshot store —
and a coordinator that executes MQL across them:

* a single-key lookup **routes** to exactly the shard owning the key
  (the same router that placed the atom at insert time);
* everything else **scatter-gathers**: every shard runs its own bounded
  pipeline against its own pinned snapshot, and the coordinator merges
  the ordered per-shard streams, pushing the tightening global TopK
  bound back down into shards still in flight;
* DDL fans out, so the per-shard catalogs (and plan caches) move in
  lockstep.

The cluster duck-types the ``Prima`` surface, so ``repro.connect``, the
serving layer, and the daemon all work over it unchanged.

Run:  python examples/sharded_cluster.py
"""

import repro

SHARDS = 4
N_PARTS = 40


def main() -> None:
    # A fresh 4-engine cluster, served through the ordinary client API.
    with repro.connect(shards=SHARDS, name="cad") as conn:
        print(f"cluster  : serving {conn.shards} shards")

        conn.execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, "
                     "name: CHAR_VAR, grade: INTEGER) KEYS_ARE (name)")
        # INSERTs route by root key: each part lands on the shard its
        # name hashes to, so the data is partitioned from the start.
        for i in range(N_PARTS):
            conn.execute(f"INSERT part (name = 'p{i}', "
                         f"grade = {(i * 37) % 100})")

        # 1. A key lookup touches exactly one shard; EXPLAIN shows the
        #    routing decision as part of the plan.
        plan = conn.explain("SELECT ALL FROM part WHERE name = 'p7'")
        print("routing  :", plan.splitlines()[1].strip())
        cursor = conn.cursor("SELECT ALL FROM part WHERE name = 'p7'")
        molecule = cursor.next()
        print("routed   :", molecule.atom["name"], "grade",
              molecule.atom["grade"], f"(from shard {cursor.shard})")
        cursor.close()

        # 2. An ordered TopK scatter-gathers: every shard contributes
        #    at most k molecules and the coordinator merges the window.
        best = conn.query(
            "SELECT ALL FROM part ORDER BY grade DESC LIMIT 5")
        print("top 5    :", [(m.atom["name"], m.atom["grade"])
                             for m in best])

        # 3. Prepared statements replan cluster-wide after DDL: the
        #    access path is created on every shard (catalog lockstep),
        #    and the next execution rides it on each of them.
        stmt = conn.prepare(
            "SELECT ALL FROM part WHERE grade > ? ORDER BY grade")
        print("prepared :", len(list(stmt.execute(80))), "parts above 80")

    # Direct (sessionless) cluster access, and the accounting surface.
    with repro.ShardedCluster(shards=SHARDS) as cluster:
        cluster.execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, "
                        "name: CHAR_VAR, grade: INTEGER) KEYS_ARE (name)")
        for i in range(N_PARTS):
            cluster.execute(f"INSERT part (name = 'p{i}', "
                            f"grade = {(i * 37) % 100})")
        result = cluster.execute(
            "SELECT ALL FROM part ORDER BY grade DESC LIMIT 5")
        result.materialize()
        result.close()   # closing bills each shard's service channel
        report = cluster.io_report()
        counts = [engine.access.atoms.count("part")
                  for engine in cluster.engines]
        print("shards   :", counts, "parts per shard")
        print("gather   :", report.get("scatter_queries", 0), "scatter,",
              report.get("routed_queries", 0), "routed;",
              f"makespan {report['shard_makespan_ms']} modelled ms")


if __name__ == "__main__":
    main()
