#!/usr/bin/env python3
"""VLSI circuit design: netlists, cell explosion, semantic parallelism.

One of the three application areas that motivated PRIMA (paper, section
1).  Shows netlist molecules, the recursive cell explosion, and a single
user operation decomposed into units of work scheduled on a simulated
multi-processor PRIMA (section 4).

Run:  python examples/vlsi_design.py
"""

from repro.parallel import parallel_select
from repro.workloads import vlsi


def main() -> None:
    handles = vlsi.generate(n_cells=32, pins_per_cell=4, n_nets=24)
    db = handles.db
    print("generated:", handles.counts())

    # Netlist molecules: net -> pins -> owning cells (vertical access).
    result = db.query("SELECT ALL FROM netlist WHERE net_no = 1")
    net = result[0]
    pins = net.component_list("pin")
    print(f"\nnet 1 connects {len(pins)} pins on cells "
          f"{sorted({p.component_list('cell')[0].atom['cell_no'] for p in pins})}")

    # Horizontal access with a quantifier: nets with fan-out >= 4.
    result = db.query(
        "SELECT ALL FROM netlist WHERE EXISTS_AT_LEAST (4) pin: "
        "pin.name != ''"
    )
    print(f"high fan-out nets: {[m.atom['net_no'] for m in result]}")

    # Recursive cell explosion (the VLSI piece_list).
    top = vlsi.top_cell_no(handles)
    result = db.query(
        f"SELECT ALL FROM cell_explosion "
        f"WHERE cell_explosion (0).cell_no = {top}"
    )
    print(f"\ncell explosion of top cell {top}: depth {result[0].depth()}, "
          f"{result[0].atom_count()} cells")

    # Semantic parallelism: construct all netlist molecules concurrently.
    for processors in (1, 2, 4, 8):
        outcome = parallel_select(db, "SELECT ALL FROM netlist",
                                  processors=processors)
        report = outcome.report
        print(f"P={processors}: speedup {report.speedup:.2f}x "
              f"(makespan {report.makespan:.0f} of "
              f"{report.serial_time:.0f} cost units, "
              f"{report.conflict_edges} conflicts)")

    assert db.verify_integrity() == []
    print("\nintegrity: OK")


if __name__ == "__main__":
    main()
