#!/usr/bin/env python3
"""Quickstart: the MAD model in five minutes.

Creates a tiny schema with a symmetric n:m association, inserts atoms,
builds molecules dynamically in queries, and shows that the system
maintains back-references automatically.

Everything client-facing goes through :func:`repro.connect` — the one
entry point whose :class:`~repro.serve.Connection` API is identical
whether it speaks to an in-process instance (as here), to an asyncio
daemon over a socket (see ``examples/daemon_serving.py``), or to a
sharded multi-engine cluster (``repro.connect(shards=4)``; see
``examples/sharded_cluster.py``).

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    # An embedded engine, and a session-scoped connection onto it.  The
    # ``with`` blocks scope both: the connection commits its session on
    # the way out, the instance flushes on close().
    with repro.Prima() as db:
        with repro.connect(db, name="quickstart") as conn:
            run_demo(db, conn)


def run_demo(db: repro.Prima, conn: repro.Connection) -> None:
    # 1. Atom types.  Every relationship is a pair of reference attributes
    #    pointing at each other (the association concept, Fig. 2.2):
    #    author.books <-> book.authors is a symmetric n:m association.
    conn.execute("""
    CREATE ATOM_TYPE author
    ( author_id : IDENTIFIER,
      name      : CHAR_VAR,
      books     : SET_OF (REF_TO (book.authors)) )
    KEYS_ARE (name)
    """)
    conn.execute("""
    CREATE ATOM_TYPE book
    ( book_id   : IDENTIFIER,
      title     : CHAR_VAR,
      year      : INTEGER,
      authors   : SET_OF (REF_TO (author.books)) )
    KEYS_ARE (title)
    """)

    # 2. Atoms.  REF <type>(<key>) resolves through the KEYS_ARE index.
    conn.execute("INSERT author (name = 'Haerder')")
    conn.execute("INSERT author (name = 'Mitschang')")
    conn.execute("INSERT book (title = 'PRIMA', year = 1987, "
                 "authors = [REF author('Haerder'), "
                 "REF author('Mitschang')])")
    conn.execute("INSERT book (title = 'MAD Model', year = 1987, "
                 "authors = [REF author('Mitschang')])")

    # 3. The system maintained the back-references: the authors already
    #    know their books although we never wrote author.books.
    result = conn.query(
        "SELECT ALL FROM author-book WHERE name = 'Mitschang'")
    molecule = result[0]
    print("molecule:", molecule.atom["name"], "wrote",
          [b.atom["title"] for b in molecule.component_list("book")])

    # 4. Molecules are defined in the query, dynamically — the inverse
    #    nesting needs no schema change (symmetry!).
    result = conn.query("SELECT ALL FROM book-author WHERE title = 'PRIMA'")
    print("inverse  :", result[0].atom["title"], "by",
          [a.atom["name"] for a in result[0].component_list("author")])

    # 5. Tuning is transparent: an access path changes the plan, never the
    #    result.  The LDL (section 2.3) is engine administration, so it
    #    lives on the embedded instance, not the client connection.
    before = conn.query("SELECT ALL FROM book WHERE year = 1987")
    db.execute_ldl("CREATE ACCESS PATH book_year ON book (year)")
    after = conn.query("SELECT ALL FROM book WHERE year = 1987")
    assert len(before) == len(after) == 2
    print("plan     :",
          conn.explain("SELECT ALL FROM book WHERE year = 1987")
          .splitlines()[1].strip())

    # 6. Repetitive queries are the engineering workload: prepare once,
    #    re-execute with fresh bindings — zero parse/plan work per call,
    #    and the ? placeholder keeps the KEYS_ARE access path.
    stmt = conn.prepare("SELECT ALL FROM book-author WHERE title = ?")
    for title in ("PRIMA", "MAD Model"):
        molecule = list(stmt.execute(title))[0]
        print("prepared :", molecule.atom["title"], "by",
              [a.atom["name"] for a in molecule.component_list("author")])
    print("frontend :", int(db.io_report()["statements_parsed"]),
          "statements parsed in total (re-executions bind, never parse)")

    # 7. Structural integrity is verifiable at any time.
    assert db.verify_integrity() == []
    print("integrity: OK")

    # 8. Observability rides along on every entry point.  The metric
    #    names follow one convention (see examples/observability.py):
    #      counters   — <noun>_<verb-ed>: statements_parsed, atoms_read,
    #                   plan_cache_hits, routed_queries;
    #      gauges     — point-in-time ratios/levels: buffer_hit_ratio,
    #                   parallel_speedup;
    #      histograms — <what>_<unit>: query_latency_ms,
    #                   fetch_batch_rows, admission_wait_ms,
    #                   send_queue_depth, event_loop_lag_ms.
    #    ``metrics_report()`` merges all of them across sessions (and
    #    shards) into one JSON-able view; remote clients get the same
    #    via ``conn.server_stats()``.
    report = db.metrics_report()
    latency = report["histograms"]["query_latency_ms"]
    print("metrics  :", latency["count"], "queries observed,",
          f"buffer hit ratio {report['gauges']['buffer_hit_ratio']}")

    # 9. Live queries: SUBSCRIBE a SELECT and the server pushes a
    #    NOTIFY whenever a commit touches its dependency set — commits
    #    to unrelated types cost one set lookup, never a re-evaluation.
    #    Poll ``conn.notifications()`` here; over the daemon socket the
    #    frames arrive unsolicited (and the async client exposes them
    #    as an async iterator).  See examples/live_queries.py.
    sub = conn.subscribe("SELECT ALL FROM book WHERE year > 1980")
    conn.execute("INSERT book (title = 'XNF2', year = 1986)")
    frames = conn.notifications(timeout=2.0)
    print("live     :", len(frames), "push(es) after the insert,",
          f"dependency types {sub.types}")
    sub.close()

    # 10. When one engine is not enough: ``repro.connect(shards=N)``
    #     serves a partitioned cluster through this exact API — routed
    #     key lookups, scatter-gather ORDER BY, DDL fan-out and all.
    #     See examples/sharded_cluster.py.


if __name__ == "__main__":
    main()
