#!/usr/bin/env python3
"""3D solid modeling: boundary representations and recursive assemblies.

Reproduces the paper's central example end to end: the Fig. 2.3 schema,
the four Table 2.1 queries (verbatim), molecule DML with automatic
disconnection, and LDL-driven atom clusters for fast vertical access.

Run:  python examples/solid_modeling.py
"""

from repro import Prima
from repro.workloads import brep


def main() -> None:
    db = Prima()
    handles = brep.generate(db, n_solids=8)
    print("generated:", handles.counts())

    # --- Table 2.1a: vertical access to network molecules ----------------
    result = db.query(
        "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713"
    )
    molecule = result[0]
    print(f"\n(a) brep 1713 molecule: {molecule.atom_count()} atoms "
          f"({len(molecule.component_list('face'))} faces)")
    print(result.plan_text)

    # --- Table 2.1b: vertical access to recursive molecules --------------
    result = db.query(
        "SELECT ALL FROM piece_list WHERE piece_list (0).solid_no = 4711"
    )
    print(f"\n(b) piece_list of solid 4711: depth {result[0].depth()}, "
          f"{result[0].atom_count()} solids in the assembly")

    # --- Table 2.1c: horizontal access with projection -------------------
    result = db.query(
        "SELECT solid_no, description FROM solid WHERE sub = EMPTY"
    )
    print(f"\n(c) primitive solids: "
          f"{[m.atom['solid_no'] for m in result]}")

    # --- Table 2.1d: branching, quantifier, qualified projection ---------
    result = db.query("""
        SELECT edge, (point,
         face := SELECT face_id, square_dim
                 FROM face
                 WHERE square_dim > 1.9E1)
        FROM brep-edge (face, point)
        WHERE brep_no = 1713
        AND EXISTS_AT_LEAST (2) edge: edge.length > 1.0E0
    """)
    molecule = result[0]
    big_faces = sum(len(e.component_list("face"))
                    for e in molecule.component_list("edge"))
    print(f"\n(d) {len(molecule.component_list('edge'))} edges; "
          f"{big_faces} face references survive the qualified projection")

    # --- molecule DML: deletion automatically disconnects ----------------
    count_before = db.access.atoms.count("edge")
    db.execute("MODIFY face SET square_dim = 500.0 "
               "FROM face WHERE face.square_dim < 10.0")
    small = db.query("SELECT ALL FROM face WHERE square_dim < 10.0")
    assert len(small) == 0
    print(f"\nDML: bumped every small face; edge count untouched "
          f"({count_before} edges)")

    # --- LDL: an atom cluster makes the (a)-query one-transfer -----------
    db.execute_ldl("CREATE ATOM_CLUSTER brep_cluster FROM "
                   "brep-face-edge-point")
    db.reset_accounting()
    db.query("SELECT ALL FROM brep-face-edge-point "
             "WHERE brep_no = 1713").materialize()
    report = db.io_report()
    print(f"\nwith cluster: {report.get('molecules_from_cluster', 0)} "
          f"molecule(s) served from the materialised cluster, "
          f"{report.get('chained_reads', 0)} chained read(s)")

    assert db.verify_integrity() == []
    print("\nintegrity: OK")


if __name__ == "__main__":
    main()
