#!/usr/bin/env python3
"""Map handling: meshed n:m structures and symmetric traversal.

GIS maps are the paper's showcase for *non-disjoint* molecules: interior
border lines belong to two regions, nodes join up to four lines, and map
sheets overlap in their border regions.  The same database answers both
nesting directions — map→region→line→node and node→line→region — without
any schema change, which is exactly the symmetry argument of section 2.1.

Run:  python examples/gis_maps.py
"""

from repro.workloads import gis


def main() -> None:
    handles = gis.generate(rows=4, cols=6, sheets=2)
    db = handles.db
    print("generated:", handles.counts())

    # Vertical access: a whole map sheet as one molecule.
    sheet = db.query("SELECT ALL FROM map_sheet WHERE map_no = 1")[0]
    print(f"\nsheet 1: {len(sheet.component_list('region'))} regions, "
          f"{sheet.atom_count()} atoms in the molecule")

    # Non-disjointness: count lines shared by two regions.
    shared = db.query(
        "SELECT ALL FROM line-region WHERE EXISTS_AT_LEAST (2) region: "
        "region.area > 0.0"
    )
    print(f"shared border lines (2 regions each): {len(shared)} "
          f"of {handles.counts()['line']}")

    # Symmetric traversal: the inverse nesting, dynamically.
    around = db.query(
        "SELECT ALL FROM node-line-region "
        "WHERE node.x = 2.0 AND node.y = 2.0"
    )[0]
    regions = {
        r.atom["region_no"]
        for line in around.component_list("line")
        for r in line.component_list("region")
    }
    print(f"regions around node (2,2): {sorted(regions)}")

    # Qualified projection: only the forests of sheet 2.
    result = db.query("""
        SELECT region := SELECT region_no, land_use
                         FROM region
                         WHERE land_use = 'forest'
        FROM map-region WHERE map_no = 2
    """)
    forests = [r.atom["region_no"]
               for r in result[0].component_list("region")]
    print(f"forest regions on sheet 2: {sorted(forests)}")

    # LDL transparency: tuning structures never change results.
    before = db.query("SELECT ALL FROM region-line WHERE area >= 1.0")
    db.execute_ldl("""
        CREATE ACCESS PATH region_area ON region (area);
        CREATE PARTITION region_use ON region (region_no, land_use);
        CREATE SORT ORDER region_by_no ON region (region_no)
    """)
    after = db.query("SELECT ALL FROM region-line WHERE area >= 1.0")
    assert len(before) == len(after)
    print(f"\nLDL transparency: {len(before)} molecules before and after "
          f"installing 3 tuning structures")

    assert db.verify_integrity() == []
    print("integrity: OK")


if __name__ == "__main__":
    main()
