#!/usr/bin/env python3
"""Observability: trace a sharded query, read the slow log remotely.

PR 9's :mod:`repro.obs` layer answers "where did my query spend its
time" at every level of the stack:

* **span trees** — ``explain(analyze=True)`` actually runs the query
  and renders one span per operator; on a sharded cluster the root
  span fans out into one child span per shard, so a scatter-gather
  TopK shows exactly which shard was the straggler;
* **metrics** — ``metrics_report()`` merges counters, gauges, and
  fixed-bucket histograms (query latency, fetch batch sizes, admission
  wait, …) across sessions and shards into one JSON-able view;
* **the slow log** — a bounded ring of the N slowest queries with
  their span trees, readable over any transport via
  ``Connection.server_stats()`` — no server-side shell needed.

Tracing is off by default and its disabled cost is one float test per
query (gated by ``benchmarks/bench_b9_obs.py``); turn it on per engine
with ``db.obs.enable_tracing(sample)``.

Run:  python examples/observability.py
"""

import json

import repro
from repro.serve import PrimaDaemon, SessionManager

SHARDS = 4
N_PARTS = 200


def build_cluster() -> repro.ShardedCluster:
    cluster = repro.ShardedCluster(shards=SHARDS)
    cluster.execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, "
                    "name: CHAR_VAR, grade: INTEGER) KEYS_ARE (name)")
    for i in range(N_PARTS):
        cluster.execute(f"INSERT part (name = 'p{i}', "
                        f"grade = {(i * 37) % 100})")
    return cluster


def main() -> None:
    with build_cluster() as cluster:
        # 1. EXPLAIN ANALYZE on a scatter-gather TopK: the plan text,
        #    then the measured span tree — one child span per shard,
        #    each carrying its own operator breakdown.
        print("explain analyze (4-shard scatter TopK)")
        print(cluster.explain(
            "SELECT ALL FROM part ORDER BY grade DESC LIMIT 5",
            analyze=True))

        # 2. The same tree as an object: ``trace`` returns the root
        #    :class:`~repro.obs.Span`, so tooling can walk it.
        span = cluster.trace(
            "SELECT ALL FROM part ORDER BY grade DESC LIMIT 5")
        shard_spans = [child for child in span.children
                       if child.name.startswith("shard:")]
        print(f"\ntrace    : {len(shard_spans)} shard spans under the "
              f"root ({span.duration * 1000.0:.3f} ms total)")
        slowest = max(shard_spans, key=lambda child: child.duration)
        print(f"straggler: {slowest.name} at "
              f"{slowest.duration * 1000.0:.3f} ms, "
              f"{slowest.attrs.get('rows')} rows gathered")

        # 3. The merged metrics view: per-shard registries, coordinator
        #    gauges, and latency histograms in one report.
        report = cluster.metrics_report()
        latency = report["histograms"]["query_latency_ms"]
        print(f"\nmetrics  : {latency['count']} queries, "
              f"{latency['sum']:.3f} ms total; buffer hit ratio "
              f"{report['gauges'].get('buffer_hit_ratio')}")

    # 4. Remotely: the daemon serves STATS and TRACE like any other
    #    request, so the slow log and a span tree travel the wire.
    db = repro.Prima()
    db.execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, "
               "name: CHAR_VAR, grade: INTEGER) KEYS_ARE (name)")
    for i in range(N_PARTS):
        db.execute(f"INSERT part (name = 'p{i}', "
                   f"grade = {(i * 37) % 100})")
    db.obs.enable_tracing(1.0)     # sample every query into the log

    manager = SessionManager(db, max_sessions=4)
    with PrimaDaemon(manager) as daemon:
        host, port = daemon.address
        with repro.connect(f"prima://{host}:{port}", name="ops") as conn:
            conn.query("SELECT ALL FROM part WHERE grade > 90")
            conn.query("SELECT ALL FROM part ORDER BY grade LIMIT 3")

            # The on-demand remote trace: runs the statement, ships
            # the rendered tree and its dict form back.
            traced = conn.trace(
                "SELECT ALL FROM part ORDER BY grade DESC LIMIT 3")
            print("\nremote trace")
            print(traced["text"])

            stats = conn.server_stats()
            worst = stats["slowlog"][0]
            print(f"\nslow log : {len(stats['slowlog'])} entries; "
                  f"slowest {worst['duration_ms']} ms "
                  f"for {worst['mql']!r}")
            print("histogram:", json.dumps(
                stats["metrics"]["histograms"]["query_latency_ms"]))


if __name__ == "__main__":
    main()
