#!/usr/bin/env python3
"""The application layer: a 3D-CAD workbench on top of PRIMA.

Section 4 of the paper proposes extracting class-specific mapping
functions out of applications into 'application layers' under DBMS
control.  This example drives the CAD instance of that idea: boxes,
assemblies, bills of materials, where-used queries, bounding hulls, and
geometric transformations — all implemented against the MAD interface.

Run:  python examples/cad_application_layer.py
"""

from repro import Prima
from repro.al import CadWorkbench


def main() -> None:
    bench = CadWorkbench(Prima())

    # Build a small gearbox: housing, two shafts with gears.
    housing = bench.create_box((0, 0, 0), 10.0, description="housing")
    shaft_a = bench.create_box((2, 2, -4), 1.0, description="input shaft")
    gear_a = bench.create_box((1.5, 1.5, 2), 2.0, description="gear A")
    shaft_b = bench.create_box((6, 6, -4), 1.0, description="output shaft")
    gear_b = bench.create_box((5.5, 5.5, 2), 3.0, description="gear B")

    input_group = bench.assemble([shaft_a, gear_a],
                                 description="input group")
    output_group = bench.assemble([shaft_b, gear_b],
                                  description="output group")
    gearbox = bench.assemble([housing, input_group, output_group],
                             description="gearbox")

    print("database:", bench.statistics())

    print("\nbill of materials (piece_list molecule):")
    for solid_no, description, depth in bench.bill_of_materials(gearbox):
        print(f"  {'  ' * depth}{solid_no:<4} {description}")

    print("\nwhere-used of gear A (one back-reference):",
          bench.where_used(gear_a))

    hull = bench.bounding_hull(gearbox)
    print(f"bounding hull: ({hull[0]:.1f}, {hull[1]:.1f}, {hull[2]:.1f}) "
          f"to ({hull[3]:.1f}, {hull[4]:.1f}, {hull[5]:.1f})")

    moved = bench.translate(gearbox, (100.0, 0.0, 0.0))
    hull = bench.bounding_hull(gearbox)
    print(f"\ntranslated {moved} points by +100 in x; new hull starts at "
          f"x = {hull[0]:.1f}")

    released = bench.disassemble(input_group)
    print(f"disassembled the input group: {released} parts released; "
          f"gear A now used by: {bench.where_used(gear_a) or 'nobody'}")

    assert bench.db.verify_integrity() == []
    print("\nintegrity: OK")


if __name__ == "__main__":
    main()
