"""Instrumentation counters used across all PRIMA layers.

The original prototype argued mostly in terms of *counts* — block
transfers, page fixes, atoms touched, messages sent.  Every layer of the
reproduction therefore carries a :class:`Counters` object so benchmarks can
report the same quantities the paper reasons about.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator


class Counters:
    """A named bag of monotonically increasing integer counters."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: Counter[str] = Counter()

    def bump(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount`` (default 1)."""
        self._values[name] += amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never bumped)."""
        return self._values.get(name, 0)

    def reset(self) -> None:
        """Zero every counter."""
        self._values.clear()

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of all counters, sorted by name."""
        return {name: self._values[name] for name in sorted(self._values)}

    def diff(self, earlier: dict[str, int]) -> dict[str, int]:
        """Counters gained since ``earlier`` (a prior :meth:`snapshot`)."""
        result: dict[str, int] = {}
        for name, value in self._values.items():
            delta = value - earlier.get(name, 0)
            if delta:
                result[name] = delta
        return dict(sorted(result.items()))

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self._values.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"Counters({inner})"


class Instrumented:
    """Mixin giving a component a :attr:`counters` bag.

    Components may share one bag (pass it in) or own a private one.
    """

    def __init__(self, counters: Counters | None = None) -> None:
        self.counters = counters if counters is not None else Counters()
