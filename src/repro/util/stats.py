"""Instrumentation counters used across all PRIMA layers.

The original prototype argued mostly in terms of *counts* — block
transfers, page fixes, atoms touched, messages sent.  Every layer of the
reproduction therefore carries a :class:`Counters` object so benchmarks can
report the same quantities the paper reasons about.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Iterator


class Counters:
    """A named bag of monotonically increasing counters.

    Most counters are integer event counts; the per-operator timing
    counters (``operator_time:*``) accumulate fractional seconds.  A lock
    makes ``bump()`` safe under the parallel subsystem's construction
    threads (a bare ``+=`` on a shared Counter is a read-modify-write that
    can lose updates between bytecodes).
    """

    __slots__ = ("_values", "_lock")

    def __init__(self) -> None:
        self._values: Counter[str] = Counter()
        self._lock = threading.Lock()

    def __getstate__(self) -> dict[str, Counter]:
        # Locks are not picklable; persistence checkpoints recreate one.
        return {"_values": self._values}

    def __setstate__(self, state) -> None:
        if isinstance(state, tuple):
            # Legacy __slots__ pickle (pre-lock checkpoints): the payload
            # arrives as (None, {'_values': ...}).
            state = state[1]
        self._values = state["_values"]
        self._lock = threading.Lock()

    def bump(self, name: str, amount: float = 1) -> None:
        """Increase counter ``name`` by ``amount`` (default 1)."""
        with self._lock:
            self._values[name] += amount

    def get(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never bumped)."""
        with self._lock:
            return self._values.get(name, 0)

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            self._values.clear()

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy of all counters, sorted by name."""
        with self._lock:
            return {name: self._values[name]
                    for name in sorted(self._values)}

    def diff(self, earlier: dict[str, float]) -> dict[str, float]:
        """Counters gained since ``earlier`` (a prior :meth:`snapshot`)."""
        with self._lock:
            current = dict(self._values)
        result: dict[str, float] = {}
        for name, value in current.items():
            delta = value - earlier.get(name, 0)
            if delta:
                result[name] = delta
        return dict(sorted(result.items()))

    def __iter__(self) -> Iterator[tuple[str, float]]:
        # Reads take the lock too: a concurrent bump() mutates the dict
        # mid-iteration otherwise (construction threads, daemon sessions).
        with self._lock:
            items = sorted(self._values.items())
        return iter(items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"Counters({inner})"


class Instrumented:
    """Mixin giving a component a :attr:`counters` bag.

    Components may share one bag (pass it in) or own a private one.
    """

    def __init__(self, counters: Counters | None = None) -> None:
        self.counters = counters if counters is not None else Counters()
