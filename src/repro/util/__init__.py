"""Shared utilities: instrumentation counters and small helpers."""

from repro.util.stats import Counters, Instrumented

__all__ = ["Counters", "Instrumented"]
