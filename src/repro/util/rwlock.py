"""A readers–writer lock: the narrow mutex that replaced the engine lock.

PR 4's serving layer serialised *every* engine-touching message part
behind one session-wide ``engine_lock`` — reads included — so
multi-session read throughput flatlined at single-session speed.  With
snapshot reads (:mod:`repro.access.snapshots`) handling logical
visibility, the only thing the lock still has to provide is *physical*
consistency: a writer must not mutate pages, address tables, or index
structures while a reader walks them.  That is exactly a
readers–writer lock:

* any number of readers share the lock (concurrent FETCH batches of
  different sessions interleave freely — the GIL permitting),
* one writer holds it exclusively for the span of a whole commit
  (checkin, DML subtransaction, DDL), so readers never observe a
  half-applied write batch.

Writer preference: once a writer is waiting, new readers queue behind
it, so a steady read stream cannot starve commits.  The writer side is
reentrant (a writer may re-enter ``write()`` or ``read()``), because a
checkin's undo path can re-enter the engine under the same thread.

``max_concurrent_readers`` records the high-water mark of readers
inside the lock at once — the structural proof that the engine no
longer serialises readers (under the old ``engine_lock`` this could
never exceed 1).
"""

from __future__ import annotations

import threading


class ReadWriteLock:
    """Shared/exclusive lock with writer preference and counters."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None   # owning thread id
        self._writer_depth = 0
        self._writers_waiting = 0
        #: High-water mark of concurrently active readers.
        self.max_concurrent_readers = 0
        #: Total shared / exclusive acquisitions (for benchmarks).
        self.read_acquisitions = 0
        self.write_acquisitions = 0
        self._reader = _Side(self, shared=True)
        self._writer_side = _Side(self, shared=False)

    # -- the two sides, as reusable context managers -------------------------

    def reader(self) -> "_Side":
        """The shared side: ``with lock.reader(): ...``"""
        return self._reader

    def writer(self) -> "_Side":
        """The exclusive side: ``with lock.writer(): ...``"""
        return self._writer_side

    # -- shared --------------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # A writer re-entering as a reader keeps exclusivity.
                self._writer_depth += 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            self.read_acquisitions += 1
            if self._readers > self.max_concurrent_readers:
                self.max_concurrent_readers = self._readers

    def release_read(self) -> None:
        with self._cond:
            if self._writer == threading.get_ident():
                self._writer_depth -= 1
                return
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- exclusive -----------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1
            self.write_acquisitions += 1

    def release_write(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError("release_write by non-owning thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    def __repr__(self) -> str:
        return (f"ReadWriteLock(readers={self._readers}, "
                f"writer={'held' if self._writer else 'free'}, "
                f"peak_readers={self.max_concurrent_readers})")


class _Side:
    """One side of the lock as a reusable, lock-like context manager.

    Duck-types ``threading.Lock`` far enough (``acquire``/``release``/
    ``with``) that code written against a plain mutex — the parallel
    subsystem's construction workers — takes the shared side unchanged.
    """

    def __init__(self, lock: ReadWriteLock, shared: bool) -> None:
        self._lock = lock
        self._shared = shared

    def acquire(self) -> bool:
        if self._shared:
            self._lock.acquire_read()
        else:
            self._lock.acquire_write()
        return True

    def release(self) -> None:
        if self._shared:
            self._lock.release_read()
        else:
            self._lock.release_write()

    def __enter__(self) -> "_Side":
        self.acquire()
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> None:
        self.release()
