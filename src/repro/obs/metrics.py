"""Metrics: counters + gauges + fixed-bucket histograms, mergeable.

The paper argues in *counts* (block transfers, page fixes, messages);
:class:`~repro.util.stats.Counters` carries those.  What counts cannot
express is a distribution — the query-latency spread under 64 daemon
clients, the fetch-batch sizes the auto-tuner actually chose, how long
admission queued sessions.  :class:`MetricsRegistry` extends the
counter bag with

* **gauges** — last-written point-in-time values (buffer hit ratio,
  parallel speedup of the last run), and
* **histograms** — fixed-bucket distributions with Prometheus-style
  upper-edge buckets (``value <= bound`` lands in the bucket; one
  implicit overflow bucket past the last bound).

Registries :meth:`merge` associatively, so per-session and per-shard
registries aggregate into one cluster view, and they pickle without
their locks (fork workers, checkpoint restore) exactly like
``Counters``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable

from repro.util.stats import Counters

#: Wall-time buckets in milliseconds (sub-ms queries up to multi-second).
LATENCY_BUCKETS_MS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
                      100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0)

#: Row/batch-size buckets (powers of two up to 4096-row batches).
SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                512.0, 1024.0, 2048.0, 4096.0)

#: Small-cardinality depth buckets (queue depths, worker counts).
DEPTH_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Ratio buckets in tenths (hit ratios, efficiency fractions).
RATIO_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: Default bucket edges of the well-known histogram names, so every
#: producer of e.g. ``query_latency_ms`` agrees on the schema and a
#: cluster merge never faces mismatched bounds.
DEFAULT_BUCKETS: dict[str, tuple[float, ...]] = {
    "query_latency_ms": LATENCY_BUCKETS_MS,
    "request_latency_ms": LATENCY_BUCKETS_MS,
    "admission_wait_ms": LATENCY_BUCKETS_MS,
    "event_loop_lag_ms": LATENCY_BUCKETS_MS,
    "notify_latency_ms": LATENCY_BUCKETS_MS,
    "fetch_batch_rows": SIZE_BUCKETS,
    "send_queue_depth": DEPTH_BUCKETS,
    "parallel_units": DEPTH_BUCKETS,
    "buffer_hit_ratio": RATIO_BUCKETS,
}


class Histogram:
    """One fixed-bucket histogram (upper-edge inclusive buckets).

    ``bounds`` are the ascending bucket upper edges; an observation
    lands in the first bucket whose bound is ``>= value``, or in the
    implicit overflow bucket past the last bound.  Not internally
    locked — the owning :class:`MetricsRegistry` serialises access.
    """

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Iterable[float]) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"bucket bounds must be strictly ascending, got "
                f"{self.bounds}"
            )
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total

    def copy(self) -> "Histogram":
        clone = Histogram(self.bounds)
        clone.counts = list(self.counts)
        clone.count = self.count
        clone.total = self.total
        return clone

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile: the upper edge of the bucket the
        rank falls in (the last finite bound for the overflow bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]

    def snapshot(self) -> dict[str, Any]:
        """JSON-able schema: bounds, per-bucket counts, count/sum."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": round(self.total, 6),
        }

    def __repr__(self) -> str:
        return (f"Histogram({len(self.bounds)} buckets, n={self.count}, "
                f"mean={self.mean:.3f})")


class MetricsRegistry(Counters):
    """A counter bag plus gauges and fixed-bucket histograms.

    The counter surface (``bump``/``get``/``snapshot``/``diff``) is
    inherited unchanged, so a ``MetricsRegistry`` drops in anywhere a
    ``Counters`` is expected (the serving sessions do exactly that).
    """

    __slots__ = ("_gauges", "_histograms")

    def __init__(self) -> None:
        super().__init__()
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- pickling (locks excluded, like Counters) ----------------------------

    def __getstate__(self) -> dict[str, Any]:
        state = super().__getstate__()
        with self._lock:
            state["_gauges"] = dict(self._gauges)
            state["_histograms"] = {name: hist.copy()
                                    for name, hist in
                                    self._histograms.items()}
        return state

    def __setstate__(self, state) -> None:
        if isinstance(state, tuple):
            state = state[1]
        super().__setstate__({"_values": state["_values"]})
        self._gauges = state.get("_gauges", {})
        self._histograms = state.get("_histograms", {})

    # -- gauges ---------------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    def gauges(self) -> dict[str, float]:
        with self._lock:
            return dict(sorted(self._gauges.items()))

    # -- histograms -----------------------------------------------------------

    def observe(self, name: str, value: float,
                bounds: Iterable[float] | None = None) -> None:
        """Record ``value`` into histogram ``name``.

        The histogram is created on first observation — with ``bounds``
        if given, else the well-known :data:`DEFAULT_BUCKETS` schema for
        the name, else :data:`LATENCY_BUCKETS_MS`.
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = Histogram(bounds if bounds is not None
                                 else DEFAULT_BUCKETS.get(
                                     name, LATENCY_BUCKETS_MS))
                self._histograms[name] = hist
            hist.observe(value)

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def histograms(self) -> dict[str, dict[str, Any]]:
        """JSON-able snapshots of every histogram, sorted by name."""
        with self._lock:
            return {name: self._histograms[name].snapshot()
                    for name in sorted(self._histograms)}

    # -- aggregation ----------------------------------------------------------

    def merge(self, *others: "MetricsRegistry") -> "MetricsRegistry":
        """A **new** registry combining this one with ``others``.

        Counters and histogram buckets sum; gauges take the last writer
        in argument order.  Building a fresh registry (rather than
        mutating) is what makes the operation associative —
        ``a.merge(b).merge(c)`` equals ``a.merge(b.merge(c))`` — so
        per-shard and per-session registries fold into one cluster view
        in any grouping.
        """
        merged = MetricsRegistry()
        for source in (self, *others):
            with source._lock:
                values = dict(source._values)
                gauges = dict(getattr(source, "_gauges", {}))
                hists = {name: hist.copy() for name, hist in
                         getattr(source, "_histograms", {}).items()}
            for name, value in values.items():
                merged._values[name] += value
            merged._gauges.update(gauges)
            for name, hist in hists.items():
                mine = merged._histograms.get(name)
                if mine is None:
                    merged._histograms[name] = hist
                else:
                    mine.merge(hist)
        return merged

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        """Zero counters and histograms and drop every gauge."""
        with self._lock:
            self._values.clear()
            self._gauges.clear()
            self._histograms.clear()

    def report(self) -> dict[str, Any]:
        """The full JSON-able export: counters, gauges, histograms."""
        return {
            "counters": self.snapshot(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }

    def __repr__(self) -> str:
        with self._lock:
            return (f"MetricsRegistry({len(self._values)} counter(s), "
                    f"{len(self._gauges)} gauge(s), "
                    f"{len(self._histograms)} histogram(s))")
