"""Observability: tracing, metrics, and the slow-query log.

One query now crosses planner → snapshot → operators → shard
coordinator → session → wire; this package is the cross-cutting layer
that can still say where its time went:

* :mod:`repro.obs.trace` — a :class:`Tracer` producing a span tree per
  query (off-by-default sampling; the disabled path is near-free);
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` extending the
  counter bag with gauges and fixed-bucket histograms, mergeable across
  sessions and shards;
* :mod:`repro.obs.slowlog` — a bounded ring of the N slowest queries
  with their span trees.

Every engine-shaped object (``Prima.data``, the shard ``Coordinator``)
owns one :class:`Observability` bundle; the serving layer adds
per-session registries on top and ``metrics_report()`` /
``Connection.server_stats()`` merge them into one view.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DEPTH_BUCKETS,
    LATENCY_BUCKETS_MS,
    RATIO_BUCKETS,
    SIZE_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.slowlog import SlowLog
from repro.obs.trace import Span, Tracer, span_from_operator

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = [
    "DEFAULT_BUCKETS",
    "DEPTH_BUCKETS",
    "LATENCY_BUCKETS_MS",
    "SIZE_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "RATIO_BUCKETS",
    "SlowLog",
    "Span",
    "Tracer",
    "span_from_operator",
]


class Observability:
    """One engine's observability bundle: tracer + metrics + slow log."""

    def __init__(self, sample: float = 0.0,
                 slowlog_capacity: int = 16) -> None:
        self.tracer = Tracer(sample)
        self.metrics = MetricsRegistry()
        self.slowlog = SlowLog(slowlog_capacity)

    def enable_tracing(self, sample: float = 1.0) -> None:
        """Turn span collection on (``sample=1.0``: every query)."""
        self.tracer.enable(sample)

    def disable_tracing(self) -> None:
        self.tracer.disable()

    def observe_query(self, text: str, duration: float,
                      span: "Span | None" = None) -> None:
        """Account one finished query: latency histogram + slow log."""
        self.metrics.observe("query_latency_ms", duration * 1000.0)
        self.slowlog.record(text, duration, span)

    def reset(self) -> None:
        """Zero metrics and drop the slow log (tracing state is kept)."""
        self.metrics.reset()
        self.slowlog.clear()

    def __repr__(self) -> str:
        state = (f"sample={self.tracer.sample}" if self.tracer.enabled
                 else "tracing off")
        return f"Observability({state}, {self.metrics!r})"
