"""Query tracing: a span tree per query.

The flat ``Counters`` bag says *how much* work a query did; after the
serving, parallel, and sharding layers it can no longer say *where* the
time went — one SELECT now crosses planner → snapshot → operators →
shard coordinator → session → wire.  A :class:`Span` records one timed
step of that path (name, parent, attrs, duration); a query's spans form
a tree whose leaf layer is the operator pipeline itself, so the span
tree subsumes the per-operator ``operator_time:*`` accounting (the same
``time_total`` / ``self_time`` measurements the operators already take,
re-rooted under the query instead of summed into a global bag).

Tracing is **off by default** and sampled: :meth:`Tracer.start` returns
``None`` unless the query is sampled, and the disabled path is one
attribute test — near-free, which ``bench_b9_obs`` gates.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterator


class Span:
    """One timed step of a query: name, parent, attrs, duration.

    A span is *open* from construction until :meth:`finish` stamps its
    duration; operator spans built after the fact
    (:func:`span_from_operator`) carry the operator's measured
    ``time_total`` directly.  Durations are seconds (rendered as ms).
    """

    __slots__ = ("name", "attrs", "parent", "children", "started",
                 "duration")

    def __init__(self, name: str, parent: "Span | None" = None,
                 attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.parent = parent
        self.attrs: dict[str, Any] = attrs or {}
        self.children: list[Span] = []
        self.started = time.perf_counter()
        self.duration: float | None = None
        if parent is not None:
            parent.children.append(self)

    # -- building -------------------------------------------------------------

    def child(self, name: str, **attrs: Any) -> "Span":
        """Open a child span under this one."""
        return Span(name, parent=self, attrs=attrs)

    def finish(self) -> float:
        """Stamp the duration (idempotent); returns it in seconds."""
        if self.duration is None:
            self.duration = time.perf_counter() - self.started
        return self.duration

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> None:
        self.finish()

    # -- reading --------------------------------------------------------------

    @property
    def self_time(self) -> float:
        """This span's duration minus its children's (floored at 0)."""
        total = self.duration if self.duration is not None else 0.0
        nested = sum(c.duration or 0.0 for c in self.children)
        return max(total - nested, 0.0)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able nesting of the whole subtree (durations in ms)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "duration_ms": round((self.duration or 0.0) * 1000.0, 3),
            "self_ms": round(self.self_time * 1000.0, 3),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, indent: int = 0) -> list[str]:
        """The subtree as indented text lines (the EXPLAIN ANALYZE
        rendering: rows first, then self/total wall-time in ms)."""
        parts = []
        rows = self.attrs.get("rows")
        if rows is not None:
            parts.append(f"rows={rows}")
        parts.append(f"self {self.self_time * 1000.0:.3f} ms")
        parts.append(f"total {(self.duration or 0.0) * 1000.0:.3f} ms")
        detail = self.attrs.get("detail")
        label = f"{self.name}({detail})" if detail else self.name
        lines = [" " * indent + f"{label} [{', '.join(parts)}]"]
        for child in self.children:
            lines.extend(child.render(indent + 2))
        return lines

    def __repr__(self) -> str:
        ms = (self.duration or 0.0) * 1000.0
        return (f"Span({self.name!r}, {ms:.3f} ms, "
                f"{len(self.children)} child(ren))")


def span_from_operator(operator: Any, parent: Span | None = None) -> Span:
    """The span tree of a (drained) operator pipeline.

    Operators already time themselves (``time_total`` per ``next()``
    call, children's share subtracted for ``self_time``); this re-roots
    those measurements as spans under ``parent`` instead of summing them
    into the ``operator_time:*`` counter bag — the zero-overhead way to
    get per-operator spans, because nothing extra runs on the row path.
    """
    span = Span(getattr(operator, "name", type(operator).__name__),
                parent=parent)
    span.started = 0.0
    span.duration = max(getattr(operator, "time_total", 0.0), 0.0)
    span.attrs["rows"] = getattr(operator, "rows_out", 0)
    detail = None
    describe = getattr(operator, "detail", None)
    if callable(describe):
        detail = describe()
    if detail:
        span.attrs["detail"] = detail
    for child in getattr(operator, "children", ()):
        span_from_operator(child, parent=span)
    return span


class Tracer:
    """Span-tree producer with off-by-default, deterministic sampling.

    ``sample=0.0`` (the default) disables tracing — :meth:`start` is a
    single attribute test returning ``None``.  ``sample=1.0`` traces
    every query; a fractional rate traces every ``round(1/sample)``-th
    start (counter-based, not random: deterministic under test and
    evenly spread under load).
    """

    __slots__ = ("sample", "_seq", "_lock")

    def __init__(self, sample: float = 0.0) -> None:
        self.sample = float(sample)
        self._seq = 0
        self._lock = threading.Lock()

    # A checkpointed engine carries its tracer; the lock is excluded
    # (recreated on load), like every other lock-holding accounting
    # object in the repo.
    def __getstate__(self) -> dict[str, Any]:
        return {"sample": self.sample, "_seq": self._seq}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.sample = state["sample"]
        self._seq = state["_seq"]
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.sample > 0.0

    def enable(self, sample: float = 1.0) -> None:
        """Turn tracing on at ``sample`` (default: every query)."""
        if not 0.0 < sample <= 1.0:
            raise ValueError(f"sample must be in (0, 1], got {sample!r}")
        self.sample = float(sample)

    def disable(self) -> None:
        self.sample = 0.0

    def start(self, name: str, **attrs: Any) -> Span | None:
        """A new root span, or ``None`` when this start is not sampled.

        The disabled path must stay near-free: one float test, no
        allocation, no lock.
        """
        if not self.sample:
            return None
        if self.sample >= 1.0:
            return Span(name, attrs=attrs)
        period = max(int(round(1.0 / self.sample)), 1)
        with self._lock:
            self._seq += 1
            hit = self._seq % period == 0
        return Span(name, attrs=attrs) if hit else None
