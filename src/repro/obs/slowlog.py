"""The slow-query log: a bounded ring of the N slowest queries.

Latency histograms say the p99 moved; the slow log says *which* queries
moved it.  Each entry keeps the statement text, the duration, and —
when the query was sampled by the tracer — its span tree, so a remote
``Connection.server_stats()`` can show exactly where a pathological
query spent its time without re-running it.

The log is a min-heap of the N slowest entries seen since the last
:meth:`clear`: a new query displaces the current fastest entry only if
it was slower, so memory stays bounded at ``capacity`` regardless of
query volume.
"""

from __future__ import annotations

import heapq
import threading
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.trace import Span


class SlowLog:
    """Bounded ring of the slowest queries (with their span trees)."""

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._heap: list[tuple[float, int, dict[str, Any]]] = []
        self._seq = 0
        self._lock = threading.Lock()

    def record(self, text: str, duration: float,
               span: "Span | None" = None, **attrs: Any) -> bool:
        """Offer one finished query; returns True when it was kept.

        ``duration`` is seconds; the entry stores milliseconds.  The
        fast path of a saturated log is one lock + one comparison.
        """
        with self._lock:
            if len(self._heap) >= self.capacity and \
                    duration <= self._heap[0][0]:
                return False
            entry = {
                "mql": text,
                "duration_ms": round(duration * 1000.0, 3),
            }
            if attrs:
                entry.update(attrs)
            if span is not None:
                entry["trace"] = span.to_dict()
            self._seq += 1
            item = (duration, self._seq, entry)
            if len(self._heap) >= self.capacity:
                heapq.heapreplace(self._heap, item)
            else:
                heapq.heappush(self._heap, item)
            return True

    # -- pickling (the lock is excluded, like Counters) -----------------------

    def __getstate__(self) -> dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "_heap": [(d, s, dict(e)) for d, s, e in self._heap],
                "_seq": self._seq,
            }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.capacity = state["capacity"]
        self._heap = list(state["_heap"])
        self._seq = state["_seq"]
        self._lock = threading.Lock()

    def entries(self) -> list[dict[str, Any]]:
        """The kept entries, slowest first (JSON-able dicts)."""
        with self._lock:
            ranked = sorted(self._heap,
                            key=lambda item: (-item[0], item[1]))
            return [dict(entry) for _duration, _seq, entry in ranked]

    #: ``snapshot()`` mirrors the Counters/registry export verb.
    snapshot = entries

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def __repr__(self) -> str:
        with self._lock:
            slowest = max((d for d, _s, _e in self._heap), default=0.0)
        return (f"SlowLog({len(self)}/{self.capacity} entries, "
                f"slowest {slowest * 1000.0:.3f} ms)")
