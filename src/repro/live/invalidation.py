"""The inverted dependency index: typed epoch delta → fired subscriptions.

Every commit boundary publishes ``(epoch, touched_types)`` (see
:meth:`repro.access.snapshots.AtomVersionStore.publish`).  The index
keeps ``type → {subscription}`` so deciding which subscriptions fire is
one set lookup per touched type — a commit to a type outside every
dependency set costs exactly that lookup and bumps
``invalidations_skipped``; it never re-evaluates anything.

DDL rides the same hook: the data system publishes after every
statement, and the index compares the catalog version against its last
stamp — a moved catalog fires *all* subscriptions (any plan may now be
stale) with ``catalog_changed`` set.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.live.registry import Subscription


class InvalidationIndex:
    """``type → subscriptions`` with catalog-version change detection."""

    def __init__(self, counters: Any = None) -> None:
        self._mutex = threading.Lock()
        self._by_type: dict[str, set[Subscription]] = {}
        self._catalog_stamp: int | None = None
        #: Counter sink (``bump(name)``) — the engine's access counters,
        #: so hits/skips surface in ``io_report()`` next to everything
        #: else.  ``None``: count nothing (detached index).
        self.counters = counters

    def stamp(self, catalog_version: int) -> None:
        """Record the current catalog version as the baseline — called
        at hub construction so the very first commit already notices a
        DDL that ran between subscribe and publish."""
        with self._mutex:
            self._catalog_stamp = catalog_version

    # -- membership -----------------------------------------------------------

    def add(self, sub: Subscription) -> None:
        with self._mutex:
            for type_name in sub.types:
                self._by_type.setdefault(type_name, set()).add(sub)

    def remove(self, sub: Subscription) -> None:
        with self._mutex:
            for type_name in sub.types:
                members = self._by_type.get(type_name)
                if members is not None:
                    members.discard(sub)
                    if not members:
                        del self._by_type[type_name]

    def __len__(self) -> int:
        with self._mutex:
            return sum(len(m) for m in self._by_type.values())

    @property
    def empty(self) -> bool:
        with self._mutex:
            return not self._by_type

    # -- the hot path ---------------------------------------------------------

    def invalidate(self, epoch: int, touched: frozenset[str],
                   catalog_version: int,
                   ) -> tuple[list[Subscription], bool]:
        """Resolve one typed epoch delta.

        Returns ``(fired, catalog_changed)``.  Runs on the committing
        thread (typically still inside the engine write lock): set
        lookups and counter bumps only, nothing that could block.
        """
        with self._mutex:
            if self._catalog_stamp is None:
                self._catalog_stamp = catalog_version
                catalog_changed = False
            else:
                catalog_changed = catalog_version != self._catalog_stamp
                self._catalog_stamp = catalog_version
            if catalog_changed:
                fired: set[Subscription] = set()
                for members in self._by_type.values():
                    fired.update(members)
            else:
                fired = set()
                for type_name in touched:
                    members = self._by_type.get(type_name)
                    if members:
                        fired.update(members)
        counters = self.counters
        if counters is not None:
            if fired:
                counters.bump("invalidations_fired")
            else:
                counters.bump("invalidations_skipped")
        return sorted(fired, key=lambda s: s.subscription_id), \
            catalog_changed
