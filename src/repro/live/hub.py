"""The live-query hub: one per :class:`~repro.serve.session.SessionManager`.

Wires the three halves of the subsystem together and owns their
lifecycle:

* :class:`~repro.live.registry.SubscriptionRegistry` — handles and
  per-session ownership, dependency sets from plans;
* :class:`~repro.live.invalidation.InvalidationIndex` — one listener
  per engine version store (a sharded cluster registers on *every*
  shard: any shard's commit can fire a cluster subscription), catalog
  bump detection via ``data.catalog_version``;
* :class:`~repro.live.notifier.Notifier` — budgets, coalescing,
  requery, sink delivery.

Listeners attach lazily on the first subscription, so a manager that
never subscribes pays nothing at commit time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import SessionStateError, SubscriptionLimitError
from repro.live.invalidation import InvalidationIndex
from repro.live.notifier import Notifier
from repro.live.registry import Subscription, SubscriptionRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.session import Session, SessionManager


def _version_stores(db: Any) -> list[Any]:
    """Every epoch clock feeding this hub — one per shard engine for a
    cluster, the single engine's otherwise."""
    engines = getattr(db, "engines", None)
    if engines:
        return [engine.access.atoms.version_store() for engine in engines]
    return [db.access.atoms.version_store()]


class LiveQueryHub:
    """Registration, invalidation fan-in, and delivery for one manager."""

    def __init__(self, manager: "SessionManager") -> None:
        self._manager = manager
        self._db = manager.db
        self.registry = SubscriptionRegistry()
        self.index = InvalidationIndex(counters=self._db.access.counters)
        self.index.stamp(self._db.data.catalog_version)
        self.notifier = Notifier(
            clock=manager._now,
            notify_interval=manager.notify_interval,
            requery=self._requery,
            counters=self._db.access.counters,
            obs=self._db.data.obs,
        )
        self._attached = False
        self._closed = False

    # -- registration ---------------------------------------------------------

    def subscribe(self, session: "Session", prepared: Any, args: tuple,
                  params: dict[str, Any], deliver: str) -> Subscription:
        if deliver not in ("notify", "requery"):
            raise SessionStateError(
                f"unknown delivery mode {deliver!r} "
                f"(expected 'notify' or 'requery')")
        budget = self._manager.max_subscriptions
        if self.registry.session_count(session) >= budget:
            raise SubscriptionLimitError(
                f"session {session.name!r} is at its subscription "
                f"budget ({budget})")
        sub = self.registry.register(
            session, prepared, args, params, deliver,
            catalog_version=self._db.data.catalog_version)
        self.index.add(sub)
        self._attach()
        self._gauge()
        return sub

    def unsubscribe(self, subscription_id: int,
                    session: "Session | None" = None) -> bool:
        """Drop one subscription; idempotent.  With ``session`` given,
        only that session's own subscriptions match (a client cannot
        cancel another session's)."""
        sub = self.registry.get(subscription_id)
        if sub is None or (session is not None
                           and sub.session is not session):
            return False
        self.registry.unregister(subscription_id)
        self.index.remove(sub)
        self.notifier.forget(sub)
        self._gauge()
        return True

    def release_session(self, session: "Session") -> int:
        """Drop every subscription a session holds (close / abort /
        lease reap / abrupt EOF); returns how many died."""
        dropped = self.registry.unregister_session(session)
        for sub in dropped:
            self.index.remove(sub)
            self.notifier.forget(sub)
        if dropped:
            self._gauge()
        return len(dropped)

    @property
    def active(self) -> int:
        return len(self.registry)

    # -- the commit-side listener --------------------------------------------

    def _on_publish(self, epoch: int, touched: frozenset[str]) -> None:
        # Runs on the committing thread, usually inside the engine
        # write lock: set lookups + queue handoffs only.
        if self._closed or self.index.empty:
            return
        fired, catalog_changed = self.index.invalidate(
            epoch, touched, self._db.data.catalog_version)
        for sub in fired:
            self.notifier.fire(sub, epoch, touched, catalog_changed)

    def _attach(self) -> None:
        if self._attached:
            return
        for store in _version_stores(self._db):
            store.add_listener(self._on_publish)
        self._attached = True

    # -- delivery helpers -----------------------------------------------------

    def _requery(self, sub: Subscription) -> list:
        """Re-run the subscription's statement against a fresh snapshot
        (flush-thread context only — takes the engine read lock)."""
        with self._manager.engine.reader():
            result = self._db.data.open_result(sub.prepared, sub.args,
                                               sub.params)
            try:
                return list(result)
            finally:
                result.close()

    def pump(self) -> int:
        """Deliver every due coalesced/throttled delta now (tests and
        in-process polling)."""
        if self._closed:
            return 0
        return self.notifier.pump()

    def _gauge(self) -> None:
        self._manager.metrics.gauge("subscriptions_active",
                                    float(len(self.registry)))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._attached:
            for store in _version_stores(self._db):
                store.remove_listener(self._on_publish)
            self._attached = False
        self.notifier.close()
