"""Live queries: server-pushed subscriptions over epoch-delta invalidation.

Everything below the serving layer is pull — a workstation only learns
that a checkin changed its working set by re-running its query.  This
package inverts that: a client registers a prepared SELECT
(``SUBSCRIBE``), the server extracts the query's **dependency set**
from its plan, and every commit boundary publishes a **typed epoch
delta** (the epoch plus the atom types it touched).  Only
subscriptions whose dependency set intersects the delta fire — an
unrelated commit costs one inverted-index lookup, never a
re-evaluation — and fires are pushed as unsolicited ``NOTIFY`` frames
through the daemon's existing bounded send queues, throttled and
coalesced per subscription so one hot type cannot monopolise the event
loop.

Layout::

    registry.py      SubscriptionRegistry — ids, per-session ownership,
                     dependency-set extraction from plans
    invalidation.py  InvalidationIndex — type -> subscriptions inverted
                     index + catalog-version bump detection
    notifier.py      Notifier — budgets, min re-notify interval,
                     coalescing, deliver="requery", sink push
    hub.py           LiveQueryHub — one per SessionManager; wires the
                     three to every engine's version store
"""

from repro.live.hub import LiveQueryHub
from repro.live.invalidation import InvalidationIndex
from repro.live.notifier import Notifier
from repro.live.registry import (
    Subscription,
    SubscriptionRegistry,
    dependency_types,
)

__all__ = [
    "InvalidationIndex",
    "LiveQueryHub",
    "Notifier",
    "Subscription",
    "SubscriptionRegistry",
    "dependency_types",
]
