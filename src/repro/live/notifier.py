"""Delivery: budgets, coalescing, optional re-evaluation, push.

The :class:`Notifier` sits between the invalidation hot path (which
runs on the **committing** thread, usually still inside the engine
write lock) and the client-facing sinks (the daemon's bounded asyncio
send queues, or a session's in-process notification deque).  Its
contract:

* A bare ``deliver="notify"`` fire that is *due* (outside the
  min-re-notify interval) ships synchronously from the commit — one
  frame build plus one queue handoff, no locks beyond the notifier's
  own, so commit-to-frame latency is a few microseconds.
* Everything else — throttled fires (coalesced into one pending delta
  per subscription) and every ``deliver="requery"`` fire (needs the
  engine read lock, which the committer still holds) — is parked and
  flushed by a background thread, or synchronously via :meth:`pump`.
* Delivery observes ``notify_latency_ms`` (commit publish → sink
  handoff) on the owning session's registry, opens a ``notify`` span
  when tracing is on, and bills the frame through the session so the
  modelled network accounting stays transport-invariant.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.live.registry import Subscription
from repro.serve import protocol

#: Background flush poll (seconds of *real* time).  Due-ness itself is
#: computed on the manager clock, so injected fake clocks drive the
#: throttle windows deterministically; this is just how often the
#: thread re-checks.
_FLUSH_POLL = 0.01


class Notifier:
    """Budget-aware push delivery for live subscriptions."""

    def __init__(self, clock: Callable[[], float],
                 notify_interval: float = 0.0,
                 requery: Callable[[Subscription], list] | None = None,
                 counters: Any = None, obs: Any = None) -> None:
        self._clock = clock
        #: Minimum seconds between NOTIFY frames per subscription
        #: (manager-clock units).  ``0``: every fire ships at once.
        self.notify_interval = notify_interval
        #: ``requery(sub) -> molecules`` — runs the statement against a
        #: fresh snapshot; supplied by the hub (needs the engine lock
        #: and the data system).  Invoked only from flush contexts,
        #: never from the committing thread.
        self._requery = requery
        self.counters = counters
        self.obs = obs
        self._cond = threading.Condition()
        self._pending: set[Subscription] = set()
        self._thread: threading.Thread | None = None
        self._closed = False

    # -- the commit-side entry point ------------------------------------------

    def fire(self, sub: Subscription, epoch: int,
             touched: frozenset[str], catalog_changed: bool) -> None:
        """Queue one invalidation hit.  Committing-thread safe: takes
        only the notifier lock; a due bare notify is delivered inline
        (no engine locks needed), everything else is parked for the
        flush thread."""
        deliver_now = None
        with self._cond:
            if self._closed:
                return
            now = self._clock()
            stamp = time.perf_counter()
            if sub.pending_epoch is not None:
                # Coalesce onto the already-pending delta.
                sub.pending_epoch = max(sub.pending_epoch, epoch)
                sub.pending_types.update(touched)
                sub.pending_catalog = sub.pending_catalog or catalog_changed
                sub.pending_coalesced += 1
                if self.counters is not None:
                    self.counters.bump("notifications_coalesced")
                return
            due = (sub.last_sent is None
                   or now - sub.last_sent >= self.notify_interval)
            if due and sub.deliver == "notify":
                sub.last_sent = now
                deliver_now = (epoch, frozenset(touched), catalog_changed,
                               0, stamp)
            else:
                sub.pending_epoch = epoch
                sub.pending_types = set(touched)
                sub.pending_catalog = catalog_changed
                sub.pending_coalesced = 0
                sub.pending_since = stamp
                self._pending.add(sub)
                if not due and self.counters is not None:
                    self.counters.bump("notifications_throttled")
                self._ensure_thread_locked()
                self._cond.notify_all()
        if deliver_now is not None:
            self._deliver(sub, *deliver_now)

    def forget(self, sub: Subscription) -> None:
        """Drop any pending delta (the subscription is going away)."""
        with self._cond:
            self._pending.discard(sub)
            sub.pending_epoch = None

    # -- flushing -------------------------------------------------------------

    def pump(self) -> int:
        """Synchronously deliver every *due* pending delta; returns the
        number delivered.  For deterministic tests and in-process
        polling — must not be called while holding engine locks."""
        return self._flush_due()

    def _flush_due(self) -> int:
        taken: list[tuple[Subscription, tuple]] = []
        with self._cond:
            now = self._clock()
            for sub in list(self._pending):
                due = (sub.last_sent is None
                       or now - sub.last_sent >= self.notify_interval)
                if not due:
                    continue
                self._pending.discard(sub)
                delta = (sub.pending_epoch, frozenset(sub.pending_types),
                         sub.pending_catalog, sub.pending_coalesced,
                         sub.pending_since)
                sub.pending_epoch = None
                sub.pending_types = set()
                sub.pending_catalog = False
                sub.pending_coalesced = 0
                sub.pending_since = None
                sub.last_sent = now
                taken.append((sub, delta))
        for sub, delta in taken:
            self._deliver(sub, *delta)
        return len(taken)

    def _ensure_thread_locked(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._flush_loop, name="prima-notifier", daemon=True)
            self._thread.start()

    def _flush_loop(self) -> None:
        while True:
            with self._cond:
                if self._closed:
                    return
                if not self._pending:
                    self._cond.wait(timeout=1.0)
                    continue
            self._flush_due()
            with self._cond:
                if self._closed:
                    return
                if self._pending:
                    self._cond.wait(timeout=_FLUSH_POLL)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._pending.clear()
            self._cond.notify_all()
        thread = self._thread
        if thread is not None and thread.is_alive() and \
                thread is not threading.current_thread():
            thread.join(timeout=1.0)

    # -- delivery -------------------------------------------------------------

    def _deliver(self, sub: Subscription, epoch: int | None,
                 touched: frozenset[str], catalog_changed: bool,
                 coalesced: int, stamp: float | None) -> None:
        session = sub.session
        if session.closed:
            return
        span = None
        if self.obs is not None:
            span = self.obs.tracer.start(
                "notify", subscription=sub.subscription_id,
                session=session.name, deliver=sub.deliver)
        molecules = None
        if sub.deliver == "requery" and self._requery is not None:
            try:
                molecules = self._requery(sub)
            except Exception:
                # The statement raced a DDL drop or the session died —
                # deliver the bare invalidation rather than nothing.
                molecules = None
            if self.counters is not None:
                self.counters.bump("subscription_requeries")
        message = protocol.Notify(
            subscription_id=sub.subscription_id,
            epoch=epoch or 0,
            types=tuple(sorted(touched)),
            catalog_changed=catalog_changed,
            coalesced=coalesced,
            molecules=molecules,
        )
        delivered = session.deliver_notification(message)
        if span is not None:
            span.attrs["delivered"] = delivered
            span.finish()
        if delivered:
            sub.notifies_sent += 1
            if stamp is not None:
                session.counters.observe(
                    "notify_latency_ms",
                    (time.perf_counter() - stamp) * 1000.0)
