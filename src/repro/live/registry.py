"""Subscription bookkeeping: dependency sets extracted from plans.

A live query is a prepared SELECT plus a **dependency set** — the atom
types whose commits can change its result: the root molecule type and
every type referenced anywhere in the plan's structure tree, stamped
with the catalog version in force at registration.  The registry owns
the ``subscription_id`` namespace, the per-session index (subscriptions
die with their session), and the extraction itself; the inverted
type → subscriptions index lives in
:class:`~repro.live.invalidation.InvalidationIndex`.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.session import Session


def dependency_types(prepared: Any) -> frozenset[str]:
    """The atom types a prepared SELECT depends on.

    Prefers the statement's own ``dependency_types()`` (cluster
    statements union their per-shard plans); falls back to walking the
    plan's structure tree directly.
    """
    extractor = getattr(prepared, "dependency_types", None)
    if extractor is not None:
        return frozenset(extractor())
    plan = prepared.plan()
    types = set(plan.structure.atom_types())
    types.add(plan.root_access.atom_type)
    return frozenset(types)


class Subscription:
    """One registered live query.

    Mutable delivery state (``pending_*``, ``last_sent``) belongs to the
    :class:`~repro.live.notifier.Notifier` and is only touched under its
    lock; everything else is immutable after registration.
    """

    __slots__ = (
        "subscription_id", "session", "prepared", "args", "params",
        "deliver", "types", "catalog_version",
        "last_sent", "pending_epoch", "pending_types",
        "pending_catalog", "pending_coalesced", "pending_since",
        "notifies_sent",
    )

    def __init__(self, subscription_id: int, session: "Session",
                 prepared: Any, args: tuple, params: dict[str, Any],
                 deliver: str, types: frozenset[str],
                 catalog_version: int) -> None:
        self.subscription_id = subscription_id
        self.session = session
        self.prepared = prepared
        self.args = args
        self.params = params
        self.deliver = deliver
        self.types = types
        self.catalog_version = catalog_version
        #: Manager-clock timestamp of the last delivered NOTIFY
        #: (``None``: nothing sent yet, the next fire goes out at once).
        self.last_sent: float | None = None
        #: The coalesced not-yet-delivered delta (``None`` epoch: no
        #: pending fire).
        self.pending_epoch: int | None = None
        self.pending_types: set[str] = set()
        self.pending_catalog = False
        self.pending_coalesced = 0
        self.pending_since: float | None = None
        self.notifies_sent = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Subscription #{self.subscription_id} "
                f"types={sorted(self.types)} deliver={self.deliver!r}>")


class SubscriptionRegistry:
    """Id allocation + per-session ownership of live subscriptions."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._next_id = 1
        self._subscriptions: dict[int, Subscription] = {}
        self._by_session: dict[int, set[int]] = {}

    def register(self, session: "Session", prepared: Any, args: tuple,
                 params: dict[str, Any], deliver: str,
                 catalog_version: int) -> Subscription:
        types = dependency_types(prepared)
        with self._mutex:
            sub = Subscription(self._next_id, session, prepared, args,
                               params, deliver, types, catalog_version)
            self._next_id += 1
            self._subscriptions[sub.subscription_id] = sub
            self._by_session.setdefault(id(session), set()) \
                .add(sub.subscription_id)
        return sub

    def unregister(self, subscription_id: int) -> Subscription | None:
        """Drop one subscription; returns it, or ``None`` if unknown
        (unsubscribe is idempotent)."""
        with self._mutex:
            sub = self._subscriptions.pop(subscription_id, None)
            if sub is not None:
                owned = self._by_session.get(id(sub.session))
                if owned is not None:
                    owned.discard(subscription_id)
                    if not owned:
                        del self._by_session[id(sub.session)]
            return sub

    def unregister_session(self, session: "Session") -> list[Subscription]:
        """Drop every subscription a session holds (close / abort /
        lease reap / abrupt EOF all funnel here)."""
        with self._mutex:
            ids = self._by_session.pop(id(session), set())
            return [self._subscriptions.pop(sid)
                    for sid in ids if sid in self._subscriptions]

    def get(self, subscription_id: int) -> Subscription | None:
        with self._mutex:
            return self._subscriptions.get(subscription_id)

    def session_count(self, session: "Session") -> int:
        with self._mutex:
            return len(self._by_session.get(id(session), ()))

    def __len__(self) -> int:
        with self._mutex:
            return len(self._subscriptions)

    def snapshot(self) -> list[Subscription]:
        with self._mutex:
            return list(self._subscriptions.values())
