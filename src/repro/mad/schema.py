"""Atom types, associations, and the schema catalog.

A MAD schema consists of *atom types* only — molecules are defined
dynamically in queries.  Each atom type is put together from constituent
attribute types; relationships between atom types are expressed as
*association types*: a pair of reference-bearing attributes that point at
each other (Fig. 2.2).  The catalog validates this pairing, derives the
relationship kind (1:1, 1:n, n:m), and records KEYS_ARE constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import SchemaError, TypeMismatchError, UnknownTypeError
from repro.mad.types import (
    AttrType,
    IdentifierType,
    ReferenceType,
    SetType,
    is_reference,
    reference_of,
)


@dataclass(frozen=True)
class Association:
    """One *direction* of an association type between two atom types.

    ``source_type.source_attr`` holds references to
    ``target_type.target_attr`` — and the schema guarantees the inverse
    direction exists and points back (symmetry).
    """

    source_type: str
    source_attr: str
    target_type: str
    target_attr: str
    #: True when the source side may hold many references (SET_OF/LIST_OF).
    source_many: bool
    #: True when the target side may hold many back-references.
    target_many: bool

    @property
    def kind(self) -> str:
        """Relationship kind seen from the source: '1:1', '1:n' or 'n:m'."""
        if self.source_many and self.target_many:
            return "n:m"
        if self.source_many or self.target_many:
            return "1:n"
        return "1:1"

    def reverse(self) -> "Association":
        """The same association traversed from the target side."""
        return Association(
            source_type=self.target_type,
            source_attr=self.target_attr,
            target_type=self.source_type,
            target_attr=self.source_attr,
            source_many=self.target_many,
            target_many=self.source_many,
        )

    def __repr__(self) -> str:
        return (f"{self.source_type}.{self.source_attr} -> "
                f"{self.target_type}.{self.target_attr} ({self.kind})")


class AtomType:
    """One atom type: named, typed attributes plus key constraints.

    Exactly one attribute must be of type IDENTIFIER; it holds the atom's
    surrogate.  KEYS_ARE lists attributes whose combination must be unique
    across all atoms of the type.
    """

    def __init__(self, name: str,
                 attributes: list[tuple[str, AttrType]],
                 keys: tuple[str, ...] = ()) -> None:
        if not name or not name[0].isalpha():
            raise SchemaError(f"invalid atom type name {name!r}")
        self.name = name
        self.attributes: dict[str, AttrType] = {}
        for attr_name, attr_type in attributes:
            if attr_name in self.attributes:
                raise SchemaError(
                    f"duplicate attribute {attr_name!r} in atom type {name!r}"
                )
            self.attributes[attr_name] = attr_type
        identifiers = [n for n, t in self.attributes.items()
                       if isinstance(t, IdentifierType)]
        if len(identifiers) != 1:
            raise SchemaError(
                f"atom type {name!r} must have exactly one IDENTIFIER "
                f"attribute, found {len(identifiers)}"
            )
        self.identifier_attr = identifiers[0]
        for key_attr in keys:
            if key_attr not in self.attributes:
                raise SchemaError(
                    f"KEYS_ARE names unknown attribute {key_attr!r} "
                    f"in atom type {name!r}"
                )
        self.keys = tuple(keys)

    # -- attribute access -------------------------------------------------------

    def attr(self, name: str) -> AttrType:
        try:
            return self.attributes[name]
        except KeyError:
            raise UnknownTypeError(
                f"atom type {self.name!r} has no attribute {name!r}"
            ) from None

    def attr_names(self) -> list[str]:
        return list(self.attributes)

    def reference_attrs(self) -> list[str]:
        """Names of all reference-bearing attributes."""
        return [n for n, t in self.attributes.items() if is_reference(t)]

    def data_attrs(self) -> list[str]:
        """Attributes that are neither IDENTIFIER nor reference-bearing."""
        return [
            n for n, t in self.attributes.items()
            if not isinstance(t, IdentifierType) and not is_reference(t)
        ]

    # -- value validation ----------------------------------------------------------

    def validate_values(self, values: dict[str, Any],
                        partial: bool = False) -> dict[str, Any]:
        """Validate an attribute-value dict against this type.

        With ``partial=False`` (inserts) missing attributes receive their
        type's default; with ``partial=True`` (modifies) only supplied
        attributes are checked and returned.
        """
        unknown = set(values) - set(self.attributes)
        if unknown:
            raise UnknownTypeError(
                f"atom type {self.name!r} has no attributes {sorted(unknown)}"
            )
        if self.identifier_attr in values and values[self.identifier_attr] is not None:
            raise TypeMismatchError(
                f"the IDENTIFIER attribute {self.identifier_attr!r} is "
                f"assigned by the system and cannot be written"
            )
        out: dict[str, Any] = {}
        for attr_name, attr_type in self.attributes.items():
            if isinstance(attr_type, IdentifierType):
                continue
            if attr_name in values:
                out[attr_name] = attr_type.validate(
                    values[attr_name], f"{self.name}.{attr_name}"
                )
            elif not partial:
                out[attr_name] = attr_type.default()
        return out

    def __repr__(self) -> str:
        return f"AtomType({self.name!r}, {len(self.attributes)} attrs)"


class Schema:
    """The schema catalog: all atom types plus derived association info."""

    #: Monotonic DDL stamp (class-level default keeps old checkpoints
    #: loadable): bumped on every CREATE/DROP ATOM_TYPE, it feeds the
    #: catalog version that invalidates cached query plans.
    version = 0

    def __init__(self) -> None:
        self._atom_types: dict[str, AtomType] = {}
        self.version = 0

    # -- atom type management -------------------------------------------------------

    def create_atom_type(self, atom_type: AtomType) -> AtomType:
        if atom_type.name in self._atom_types:
            raise SchemaError(f"atom type {atom_type.name!r} already exists")
        self._atom_types[atom_type.name] = atom_type
        self.version = self.version + 1
        return atom_type

    def drop_atom_type(self, name: str) -> None:
        if name not in self._atom_types:
            raise UnknownTypeError(f"atom type {name!r} does not exist")
        # Dropping a type whose attributes are referenced elsewhere would
        # leave dangling association halves.
        for other in self._atom_types.values():
            if other.name == name:
                continue
            for attr_name, attr_type in other.attributes.items():
                ref = reference_of(attr_type)
                if ref is not None and ref.target_type == name:
                    raise SchemaError(
                        f"cannot drop atom type {name!r}: referenced by "
                        f"{other.name}.{attr_name}"
                    )
        del self._atom_types[name]
        self.version = self.version + 1

    def atom_type(self, name: str) -> AtomType:
        try:
            return self._atom_types[name]
        except KeyError:
            raise UnknownTypeError(f"atom type {name!r} does not exist") from None

    def has_atom_type(self, name: str) -> bool:
        return name in self._atom_types

    def atom_type_names(self) -> list[str]:
        return sorted(self._atom_types)

    # -- association derivation --------------------------------------------------------

    def check_symmetry(self) -> None:
        """Verify every reference attribute has a consistent back-reference.

        An association is symmetric in that the referenced atom type must
        contain a back-reference attribute usable in exactly the same way
        (paper, 2.1).  Called after DDL processing; raises SchemaError on
        any dangling or mismatched half.
        """
        for atom_type in self._atom_types.values():
            for attr_name, attr_type in atom_type.attributes.items():
                ref = reference_of(attr_type)
                if ref is None:
                    continue
                if ref.target_type not in self._atom_types:
                    raise SchemaError(
                        f"{atom_type.name}.{attr_name} references unknown "
                        f"atom type {ref.target_type!r}"
                    )
                target = self._atom_types[ref.target_type]
                if ref.target_attr not in target.attributes:
                    raise SchemaError(
                        f"{atom_type.name}.{attr_name} references unknown "
                        f"back-attribute {ref.target_type}.{ref.target_attr}"
                    )
                back = reference_of(target.attributes[ref.target_attr])
                if back is None:
                    raise SchemaError(
                        f"{ref.target_type}.{ref.target_attr} is not a "
                        f"reference attribute (needed as back-reference of "
                        f"{atom_type.name}.{attr_name})"
                    )
                if back.target_type != atom_type.name or \
                        back.target_attr != attr_name:
                    raise SchemaError(
                        f"asymmetric association: {atom_type.name}."
                        f"{attr_name} -> {ref.target_type}.{ref.target_attr}"
                        f" but the back side points to "
                        f"{back.target_type}.{back.target_attr}"
                    )

    def association(self, source_type: str, source_attr: str) -> Association:
        """The association starting at ``source_type.source_attr``."""
        atom_type = self.atom_type(source_type)
        attr_type = atom_type.attr(source_attr)
        ref = reference_of(attr_type)
        if ref is None:
            raise SchemaError(
                f"{source_type}.{source_attr} is not a reference attribute"
            )
        target = self.atom_type(ref.target_type)
        target_attr_type = target.attr(ref.target_attr)
        return Association(
            source_type=source_type,
            source_attr=source_attr,
            target_type=ref.target_type,
            target_attr=ref.target_attr,
            source_many=not isinstance(attr_type, ReferenceType),
            target_many=not isinstance(target_attr_type, ReferenceType),
        )

    def associations(self) -> Iterator[Association]:
        """Every association direction declared in the schema."""
        for atom_type in self._atom_types.values():
            for attr_name in atom_type.reference_attrs():
                yield self.association(atom_type.name, attr_name)

    def associations_between(self, type_a: str,
                             type_b: str) -> list[Association]:
        """All associations leading from ``type_a`` to ``type_b``."""
        return [
            assoc for assoc in self.associations()
            if assoc.source_type == type_a and assoc.target_type == type_b
        ]
