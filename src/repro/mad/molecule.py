"""Molecule types and molecule occurrences (paper, 2.2).

A *molecule type* determines both the molecule structure — a hierarchy of
atom types connected by associations — and the corresponding molecule set.
Molecule types are defined dynamically in queries (the FROM clause) or
pre-defined and named with DEFINE MOLECULE TYPE; either way the data system
resolves the structure to the tree form represented here ("resolution of a
meshed molecule type into an equivalent hierarchical one", paper 3.1).

A *molecule occurrence* (shortly: molecule) is a root atom plus, for every
structure edge, the list of component molecules reached over the edge's
association.  Because n:m associations are allowed, the same atom may occur
in many molecules — molecules may overlap (non-disjoint complex objects).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import SchemaError
from repro.mad.schema import Association
from repro.mad.types import Surrogate


@dataclass
class StructureNode:
    """One node of a molecule structure tree.

    ``label`` names the node in results and projections; it equals the atom
    type name unless the same type occurs more than once in the structure
    (then the validator disambiguates).  ``via`` is the association used to
    reach this node from its parent (None at the root).  A ``recursive``
    node re-applies its ``via`` association transitively, computing the
    least fixpoint from the seed atoms (e.g. piece_list, Fig. 2.3c).
    """

    atom_type: str
    label: str
    via: Association | None = None
    children: list["StructureNode"] = field(default_factory=list)
    recursive: bool = False

    def add_child(self, child: "StructureNode") -> "StructureNode":
        if child.via is None:
            raise SchemaError(
                f"child node {child.label!r} needs an association"
            )
        self.children.append(child)
        return child

    def walk(self) -> Iterator["StructureNode"]:
        """This node and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def labels(self) -> list[str]:
        return [node.label for node in self.walk()]

    def atom_types(self) -> list[str]:
        """All atom types in the structure (with duplicates removed)."""
        seen: list[str] = []
        for node in self.walk():
            if node.atom_type not in seen:
                seen.append(node.atom_type)
        return seen

    def find(self, label: str) -> "StructureNode | None":
        for node in self.walk():
            if node.label == label:
                return node
        return None

    def __repr__(self) -> str:
        inner = ""
        if self.children:
            inner = "(" + ", ".join(repr(c) for c in self.children) + ")"
        rec = " (RECURSIVE)" if self.recursive else ""
        return f"{self.label}{inner}{rec}"


@dataclass
class MoleculeType:
    """A (possibly named) molecule type: the structure plus its name."""

    name: str
    root: StructureNode

    @property
    def recursive(self) -> bool:
        return any(node.recursive for node in self.root.walk())

    def __repr__(self) -> str:
        return f"MOLECULE TYPE {self.name} FROM {self.root!r}"


class Molecule:
    """One molecule occurrence: a root atom plus component molecules.

    ``atom`` is the attribute-value dict of the root atom (always including
    its IDENTIFIER).  ``components`` maps a child node label to the list of
    component molecules reached over that edge.  For recursive structures
    the recursion is unrolled into nesting: each level's components sit
    under the same label.
    """

    __slots__ = ("node", "atom", "components")

    def __init__(self, node: StructureNode, atom: dict[str, Any]) -> None:
        self.node = node
        self.atom = atom
        self.components: dict[str, list[Molecule]] = {
            child.label: [] for child in node.children
        }
        if node.recursive:
            self.components.setdefault(node.label, [])

    # -- identity ------------------------------------------------------------------

    @property
    def surrogate(self) -> Surrogate:
        """The root atom's surrogate (its IDENTIFIER value)."""
        for value in self.atom.values():
            if isinstance(value, Surrogate) and \
                    value.atom_type == self.node.atom_type:
                return value
        raise SchemaError("molecule root atom carries no surrogate")

    # -- content access -----------------------------------------------------------

    def add_component(self, label: str, component: "Molecule") -> None:
        self.components.setdefault(label, []).append(component)

    def component_list(self, label: str) -> list["Molecule"]:
        return self.components.get(label, [])

    def atoms(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """All (label, atom) pairs in the molecule, pre-order, with
        duplicates when an atom is reachable over several paths."""
        yield self.node.label, self.atom
        for label, comps in self.components.items():
            for comp in comps:
                yield from comp.atoms()

    def atom_count(self) -> int:
        """Number of distinct atoms constituting the molecule."""
        seen: set[Surrogate] = set()

        def visit(molecule: "Molecule") -> None:
            seen.add(molecule.surrogate)
            for comps in molecule.components.values():
                for comp in comps:
                    visit(comp)

        visit(self)
        return len(seen)

    def depth(self) -> int:
        """Nesting depth (1 for a molecule without components)."""
        deepest = 0
        for comps in self.components.values():
            for comp in comps:
                deepest = max(deepest, comp.depth())
        return deepest + 1

    def to_dict(self) -> dict[str, Any]:
        """Plain-data rendering used by examples and tests."""
        out: dict[str, Any] = dict(self.atom)
        for label, comps in self.components.items():
            out[f"<{label}>"] = [comp.to_dict() for comp in comps]
        return out

    def map_atoms(self, fn: Callable[[dict[str, Any]], dict[str, Any]]) -> None:
        """Apply ``fn`` to every atom dict in place (projection support)."""
        self.atom = fn(self.atom)
        for comps in self.components.values():
            for comp in comps:
                comp.map_atoms(fn)

    def __repr__(self) -> str:
        sizes = {label: len(comps) for label, comps in self.components.items()}
        return f"Molecule({self.node.label}, components={sizes})"
