"""DDL round-tripping: regenerate MQL DDL from a live catalog.

Every attribute type knows its DDL rendering (:meth:`AttrType.ddl`); this
module assembles whole ``CREATE ATOM_TYPE`` and ``DEFINE MOLECULE TYPE``
statements from the catalog, such that parsing the dump reproduces an
equivalent schema — the property the round-trip tests assert.  Useful for
schema migration, documentation, and debugging.
"""

from __future__ import annotations

from repro.data.validation import MoleculeTypeCatalog
from repro.mad.molecule import StructureNode
from repro.mad.schema import AtomType, Schema


def atom_type_to_ddl(atom_type: AtomType) -> str:
    """One CREATE ATOM_TYPE statement for ``atom_type``."""
    lines = [f"CREATE ATOM_TYPE {atom_type.name}"]
    attr_lines = []
    width = max(len(name) for name in atom_type.attributes)
    for name, attr in atom_type.attributes.items():
        attr_lines.append(f"  {name.ljust(width)} : {attr.ddl()}")
    lines.append("(" + ",\n".join(attr_lines).lstrip() + " )")
    if atom_type.keys:
        lines.append(f"KEYS_ARE ({', '.join(atom_type.keys)})")
    return "\n".join(lines)


def structure_to_from_clause(node: StructureNode) -> str:
    """Render a structure tree back into FROM-clause syntax."""

    def render(current: StructureNode) -> str:
        children = current.children
        rec_suffix = ""
        label = current.atom_type
        if current.recursive and current.via is not None:
            rec_suffix = " (RECURSIVE)"
        if not children:
            return label + rec_suffix

        def child_text(child: StructureNode) -> str:
            # The edge's reference attribute is written on the parent:
            # "solid.sub-solid".  Always name it explicitly — re-parsing
            # is then never ambiguous.
            assert child.via is not None
            prefix = f".{child.via.source_attr}-"
            return prefix + render(child)

        if len(children) == 1:
            return label + child_text(children[0]) + rec_suffix
        # Inside a branch the parent attribute cannot be written with the
        # X.attr-Y chain syntax; branches therefore render the plain
        # sub-structures (valid when the associations are unambiguous,
        # which holds for structures that validated in the first place
        # unless two parallel associations exist — those cannot round-trip
        # through a branch and raise at re-parse time instead).
        inner = ", ".join(render(child) for child in children)
        return f"{label} ({inner}){rec_suffix}"

    return render(node)


def dump_schema(schema: Schema,
                catalog: MoleculeTypeCatalog | None = None) -> str:
    """All DDL statements of a catalog, ';'-separated, dependency-safe.

    Atom types may reference each other cyclically; MQL's CREATE does not
    check targets until first use, so plain name order works.
    """
    statements = [
        atom_type_to_ddl(schema.atom_type(name))
        for name in schema.atom_type_names()
    ]
    if catalog is not None:
        for name in catalog.names():
            molecule_type = catalog.get(name)
            assert molecule_type is not None
            clause = structure_to_from_clause(molecule_type.root)
            statements.append(
                f"DEFINE MOLECULE TYPE {name} FROM {clause}"
            )
    return ";\n\n".join(statements)
