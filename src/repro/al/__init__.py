"""Application layers (AL): class-specific extensions on top of PRIMA.

Since application objects require quite complex mapping functions identical
for an entire class of applications (e.g. 3D-CAD), PRIMA extracts such
mapping functions into 'application layers' — the top-most DBMS layer,
tailoring PRIMA services to application classes (paper, section 4 and
Fig. 3.1's "application layer").

:mod:`repro.al.cad` is the 3D-CAD instance, in the spirit of the KUNICAD
tool [HHLM87] the authors built to study these workloads.
"""

from repro.al.cad import CadWorkbench

__all__ = ["CadWorkbench"]
