"""A 3D-CAD application layer over the MAD interface.

The workbench offers application-oriented objects (boxes, assemblies,
bounding hulls) and hides the molecule plumbing: geometry construction,
assembly management, explosion (bill of materials), and simple geometric
transformations are all implemented *against the MAD interface* — exactly
the "class-specific extension deriving application-oriented objects under
DBMS control" the paper proposes.

    >>> from repro import Prima
    >>> from repro.al.cad import CadWorkbench
    >>> bench = CadWorkbench(Prima())
    >>> lid = bench.create_box((0, 0, 0), 4.0, description="lid")
    >>> base = bench.create_box((0, 0, 4), 4.0, description="base")
    >>> box = bench.assemble([lid, base], description="box assembly")
    >>> bench.bill_of_materials(box)[0][1]
    'box assembly'
"""

from __future__ import annotations

from typing import Iterable

from repro.db import Prima
from repro.errors import PrimaError
from repro.mad.types import Surrogate
from repro.workloads.brep import (
    FIG_2_3_DDL,
    FIG_2_3_MOLECULE_TYPES,
    BrepDatabase,
    build_box,
)


class CadWorkbench:
    """Application-oriented solid modeling on top of a Prima instance."""

    def __init__(self, db: Prima | None = None) -> None:
        self.db = db if db is not None else Prima()
        if not self.db.schema.has_atom_type("solid"):
            self.db.execute_script(FIG_2_3_DDL)
            self.db.execute_script(FIG_2_3_MOLECULE_TYPES)
        self._handles = BrepDatabase(self.db)
        self._next_solid_no = self._max_existing("solid", "solid_no") + 1
        self._next_brep_no = self._max_existing("brep", "brep_no") + 1

    def _max_existing(self, type_name: str, attr: str) -> int:
        best = 0
        for _s, values in self.db.access.atoms.atoms_of_type(type_name):
            number = values.get(attr)
            if isinstance(number, int) and number > best:
                best = number
        return best

    # -- construction -----------------------------------------------------------

    def create_box(self, origin: tuple[float, float, float], size: float,
                   description: str = "box") -> int:
        """Create a primitive box solid; returns its solid_no."""
        if size <= 0:
            raise PrimaError("box size must be positive")
        brep = build_box(self.db, self._next_brep_no, origin, size,
                         self._handles)
        self._next_brep_no += 1
        solid_no = self._next_solid_no
        self._next_solid_no += 1
        solid = self.db.access.insert("solid", {
            "solid_no": solid_no,
            "description": description,
            "brep": brep,
        })
        self._handles.solids.append(solid)
        return solid_no

    def assemble(self, part_nos: Iterable[int],
                 description: str = "assembly") -> int:
        """Compose existing solids into a new composite solid."""
        parts = [self._solid(no) for no in part_nos]
        if not parts:
            raise PrimaError("an assembly needs at least one part")
        solid_no = self._next_solid_no
        self._next_solid_no += 1
        solid = self.db.access.insert("solid", {
            "solid_no": solid_no,
            "description": description,
            "sub": parts,
        })
        self._handles.solids.append(solid)
        return solid_no

    def _solid(self, solid_no: int) -> Surrogate:
        surrogate = self.db.access.atoms.find_by_key("solid", solid_no)
        if surrogate is None:
            raise PrimaError(f"no solid with solid_no {solid_no}")
        return surrogate

    # -- application-oriented retrieval ---------------------------------------------

    def bill_of_materials(self, solid_no: int) -> list[tuple[int, str, int]]:
        """The explosion of an assembly: (solid_no, description, depth)
        rows in pre-order — the piece_list molecule, post-processed."""
        result = self.db.query(
            f"SELECT ALL FROM piece_list "
            f"WHERE piece_list (0).solid_no = {solid_no}"
        )
        if not result:
            return []
        rows: list[tuple[int, str, int]] = []

        def walk(molecule, depth: int) -> None:
            rows.append((molecule.atom["solid_no"],
                         molecule.atom["description"], depth))
            for comps in molecule.components.values():
                for comp in comps:
                    walk(comp, depth + 1)

        walk(result[0], 0)
        return rows

    def primitive_parts(self, solid_no: int) -> list[int]:
        """solid_nos of the leaf solids under an assembly."""
        return [no for no, _description, _depth
                in self.bill_of_materials(solid_no)
                if self.db.access.get(self._solid(no)).get("brep")]

    def where_used(self, solid_no: int) -> list[int]:
        """solid_nos of the assemblies directly using this part — the
        *symmetric* direction, one back-reference away."""
        values = self.db.access.get(self._solid(solid_no))
        return sorted(
            self.db.access.get(parent)["solid_no"]
            for parent in values.get("super") or []
        )

    def bounding_hull(self, solid_no: int) -> tuple[float, ...] | None:
        """The axis-aligned hull of all boxes under a solid."""
        corners: list[tuple[float, ...]] = []
        for part_no in self.primitive_parts(solid_no):
            values = self.db.access.get(self._solid(part_no))
            brep = values.get("brep")
            if brep is None:
                continue
            hull = self.db.access.get(brep)["hull"]
            corners.append(tuple(hull))
        if not corners:
            return None
        mins = [min(c[axis] for c in corners) for axis in range(3)]
        maxs = [max(c[axis + 3] for c in corners) for axis in range(3)]
        return (*mins, *maxs)

    # -- application-oriented updates ----------------------------------------------------

    def translate(self, solid_no: int,
                  delta: tuple[float, float, float]) -> int:
        """Move every point of a solid's geometry; returns points moved.

        The geometry is reached over the molecule structure and updated
        through the access system (back-references untouched: placement is
        a data attribute).
        """
        dx, dy, dz = delta
        moved = 0
        for part_no in self.primitive_parts(solid_no) or [solid_no]:
            values = self.db.access.get(self._solid(part_no))
            brep = values.get("brep")
            if brep is None:
                continue
            brep_values = self.db.access.get(brep)
            for point in brep_values["points"]:
                placement = self.db.access.get(point)["placement"]
                self.db.access.modify(point, {"placement": {
                    "x_coord": placement["x_coord"] + dx,
                    "y_coord": placement["y_coord"] + dy,
                    "z_coord": placement["z_coord"] + dz,
                }})
                moved += 1
            hull = brep_values["hull"]
            self.db.access.modify(brep, {"hull": [
                hull[0] + dx, hull[1] + dy, hull[2] + dz,
                hull[3] + dx, hull[4] + dy, hull[5] + dz,
            ]})
        return moved

    def disassemble(self, solid_no: int) -> int:
        """Remove an assembly level, releasing its parts; returns the
        number of disconnected parts."""
        surrogate = self._solid(solid_no)
        values = self.db.access.get(surrogate)
        parts = values.get("sub") or []
        if not parts:
            raise PrimaError(f"solid {solid_no} is not an assembly")
        self.db.access.modify(surrogate, {"sub": []})
        self.db.access.delete(surrogate)
        return len(parts)

    # -- reporting ----------------------------------------------------------------------------

    def statistics(self) -> dict[str, int]:
        atoms = self.db.access.atoms
        return {
            type_name: atoms.count(type_name)
            for type_name in ("solid", "brep", "face", "edge", "point")
        }
