"""A sharded PRIMA cluster: N independent engines, one database surface.

:class:`ShardedCluster` stacks the scale-out configuration of section 4:
instead of one engine owning all atoms, N :class:`~repro.db.Prima`
instances each own a *partition* of every atom type — each with its own
buffer, locks, catalog, plan cache, statistics, and snapshot store — and
a :class:`~repro.shard.coordinator.Coordinator` executes MQL across
them.  The cluster object duck-types the ``Prima`` surface (``prepare``
/ ``execute`` / ``explain`` / ``io_report`` / ``commit`` / ``close`` /
direct atom access), so examples, benchmarks, and the whole serving
layer (``db.serve()``, the daemon, ``repro.connect``) run over a
cluster unchanged.

Sharding invariants:

* surrogate spaces are disjoint by construction — shard *i* generates
  numbers in the residue class ``i+1 (mod N)``, so any surrogate's
  owner is ``(number - 1) % N`` with no lookup state;
* keyed atoms place by router decision (hash or declared ranges), and
  the *same* router answers key lookups — placement and routing cannot
  drift apart;
* catalogs move in lockstep because every DDL/LDL statement fans out to
  all shards before it is acknowledged.

Each shard also gets a modelled *service channel*
(:class:`~repro.coupling.NetworkStats` billed per gathered result): the
per-channel communication times report the work each shard performed,
and their maximum is the cluster's makespan — the quantity the scaling
benchmark gates on, independent of the GIL.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any

from repro.coupling.network import NetworkModel, NetworkStats
from repro.data.result import ResultSet
from repro.db import Prima
from repro.errors import PrimaError
from repro.mad.types import Surrogate
from repro.mql.parser import parse_script
from repro.shard.coordinator import ClusterPrepared, Coordinator
from repro.shard.router import ShardRouter
from repro.util.stats import Counters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve import SessionManager


class ClusterAtoms:
    """The cluster's atom manager: surrogate residue → owning shard."""

    def __init__(self, cluster: "ShardedCluster") -> None:
        self._cluster = cluster

    def _owner(self, surrogate: Surrogate):
        index = self._cluster.router.shard_of_surrogate(surrogate)
        return self._cluster.engines[index].access.atoms

    def exists(self, surrogate: Surrogate) -> bool:
        return self._owner(surrogate).exists(surrogate)

    def get(self, surrogate: Surrogate, attrs: list[str] | None = None,
            **kwargs: Any) -> dict[str, Any]:
        return self._owner(surrogate).get(surrogate, attrs, **kwargs)

    def modify(self, surrogate: Surrogate,
               values: dict[str, Any]) -> None:
        self._owner(surrogate).modify(surrogate, values)

    def delete(self, surrogate: Surrogate) -> None:
        self._owner(surrogate).delete(surrogate)

    def restore_atom(self, surrogate: Surrogate,
                     values: dict[str, Any]) -> None:
        self._owner(surrogate).restore_atom(surrogate, values)

    def find_by_key(self, type_name: str, key: Any) -> Surrogate | None:
        """Key lookup: ask the routed owner first, fall back to a
        cluster-wide probe (unrouted legacy placements)."""
        cluster = self._cluster
        routed = cluster.router.shard_of_key(type_name, key)
        found = cluster.engines[routed].access.atoms.find_by_key(
            type_name, key)
        if found is not None:
            return found
        for index, engine in enumerate(cluster.engines):
            if index == routed:
                continue
            found = engine.access.atoms.find_by_key(type_name, key)
            if found is not None:
                return found
        return None

    def atoms_of_type(self, type_name: str):
        for engine in self._cluster.engines:
            yield from engine.access.atoms.atoms_of_type(type_name)

    def count(self, type_name: str) -> int:
        return sum(engine.access.atoms.count(type_name)
                   for engine in self._cluster.engines)


class ClusterAccess:
    """The cluster's access-system facade: routes by key or surrogate.

    Presents the slice of :class:`~repro.access.system.AccessSystem`
    the layers above speak (direct atom access, deferred propagation,
    the shared counters); every call lands on exactly the shard owning
    the addressed atom.
    """

    def __init__(self, cluster: "ShardedCluster") -> None:
        self._cluster = cluster
        #: Cluster-level counters (routing decisions, gather work); the
        #: per-shard engines keep their own under ``engine.access``.
        self.counters = Counters()
        self.atoms = ClusterAtoms(cluster)

    @property
    def schema(self):
        return self._cluster.engines[0].schema

    def insert(self, type_name: str,
               values: dict[str, Any] | None = None) -> Surrogate:
        cluster = self._cluster
        root_type = self.schema.atom_type(type_name)
        shard = cluster.router.shard_for_insert(root_type.keys, type_name,
                                                values or {})
        if shard is None:
            shard = cluster.next_unrouted_shard()
            self.counters.bump("unrouted_inserts")
        else:
            self.counters.bump("routed_inserts")
        return cluster.engines[shard].access.insert(type_name, values)

    def get(self, surrogate: Surrogate,
            attrs: list[str] | None = None) -> dict[str, Any]:
        return self.atoms.get(surrogate, attrs)

    def modify(self, surrogate: Surrogate,
               values: dict[str, Any]) -> None:
        self.atoms.modify(surrogate, values)

    def delete(self, surrogate: Surrogate) -> None:
        self.atoms.delete(surrogate)

    def propagate_deferred(self, limit: int | None = None) -> int:
        return sum(engine.access.propagate_deferred(limit)
                   for engine in self._cluster.engines)


class ShardedCluster:
    """N partitioned PRIMA engines behind one coordinator.

    ``shard_sessions`` bounds concurrent pipeline-opens *per shard* (the
    shard half of split admission control — the serving layer's
    ``max_sessions`` still bounds the coordinator side); ``ranges``
    declares range placement per atom type (default: stable hash);
    ``model`` prices the per-shard service channels.
    """

    #: Lets layer-agnostic code (``parallel_select``, ``connect``)
    #: detect a cluster without importing this module.
    is_cluster = True

    def __init__(self, shards: int = 4, *,
                 ranges: dict[str, Any] | None = None,
                 router: ShardRouter | None = None,
                 shard_sessions: int | None = None,
                 model: NetworkModel | None = None,
                 buffer_capacity: int = 256 * 8192) -> None:
        self.router = router or ShardRouter(shards, ranges=ranges)
        if self.router.shards != shards:
            raise PrimaError(
                f"router is built for {self.router.shards} shard(s), "
                f"cluster has {shards}"
            )
        self.engines: list[Prima] = []
        for index in range(shards):
            engine = Prima(buffer_capacity=buffer_capacity)
            # Strided surrogate generation must be in place before the
            # first insert: disjoint residue classes are what make the
            # owner recoverable arithmetically.
            engine.access.atoms.surrogates.start = index + 1
            engine.access.atoms.surrogates.stride = shards
            self.engines.append(engine)
        self.access = ClusterAccess(self)
        self.data = Coordinator(self)
        self.service_model = model or NetworkModel()
        #: One modelled service channel per shard: each gathered result
        #: bills one message + its molecule payload to its shard.
        self.channels = [NetworkStats() for _ in range(shards)]
        self.shard_sessions = shard_sessions
        self._shard_slots = [threading.Semaphore(shard_sessions)
                             for _ in range(shards)] \
            if shard_sessions else None
        self._unrouted = 0
        self._lock = threading.Lock()
        self._network_stats: list[Any] = []
        self._session_managers: list["SessionManager"] = []

    # -- cluster plumbing ----------------------------------------------------

    @property
    def shard_count(self) -> int:
        return self.router.shards

    @property
    def schema(self):
        return self.engines[0].schema

    @property
    def catalog(self):
        return self.engines[0].catalog

    def next_unrouted_shard(self) -> int:
        """Round-robin placement for atoms without a routable key."""
        with self._lock:
            shard = self._unrouted % self.shard_count
            self._unrouted += 1
        return shard

    @contextmanager
    def shard_slot(self, index: int):
        """Per-shard admission: bound concurrent pipeline-opens.

        Contention is counted (``shard_admission_waits``), then waited
        out — shard admission queues rather than rejects, because the
        coordinator has already admitted the query."""
        if self._shard_slots is None:
            yield
            return
        slot = self._shard_slots[index]
        if not slot.acquire(blocking=False):
            self.access.counters.bump("shard_admission_waits")
            slot.acquire()
        try:
            yield
        finally:
            slot.release()

    def bill_shard(self, index: int, nbytes: int) -> None:
        """Account one gathered result against a shard's channel."""
        self.channels[index].account(self.service_model, nbytes)

    def service_report(self) -> dict[str, Any]:
        """Per-shard service-channel accounting plus the makespan.

        ``makespan_ms`` — the slowest channel's modelled communication
        time — is the cluster's parallel completion time: balanced
        shards divide the work, so doubling the shard count should
        roughly halve it (the scale-out quantity ``bench_b8`` gates)."""
        per_shard = [stats.snapshot() for stats in self.channels]
        makespan = max((entry["comm_time_ms"] for entry in per_shard),
                       default=0.0)
        total = sum(entry["comm_time_ms"] for entry in per_shard)
        return {
            "shards": self.shard_count,
            "per_shard": per_shard,
            "total_service_ms": round(total, 3),
            "makespan_ms": round(makespan, 3),
        }

    # -- the Prima-shaped MQL surface ----------------------------------------

    def prepare(self, mql: str) -> ClusterPrepared:
        """Plan one statement on every shard, once; see
        :meth:`repro.db.Prima.prepare` for the contract."""
        return self.data.prepare(mql)

    def execute(self, mql: str, *args: Any, use_cache: bool = True,
                **params: Any) -> ResultSet:
        """Execute one MQL statement across the cluster.

        Routed single-key SELECTs touch exactly one shard; other
        SELECTs scatter-gather; DDL fans out; INSERT routes by key."""
        return self.data.execute_text(mql, args, params,
                                      use_cache=use_cache)

    query = execute
    stream = execute

    def execute_script(self, mql: str) -> list[ResultSet]:
        """Parse and execute a ';'-separated MQL script cluster-wide."""
        results = []
        statements = parse_script(mql)
        self.access.counters.bump("statements_parsed", len(statements))
        for statement in statements:
            result = self.data.execute(statement)
            result.materialize()
            results.append(result)
        return results

    def explain(self, mql: str, *args: Any, analyze: bool = False,
                **params: Any) -> str:
        """The processing plan including its shard-routing line."""
        prepared = self.data.prepare(mql)
        if prepared.kind != "select":
            raise PrimaError("EXPLAIN supports SELECT statements only")
        return prepared.explain(analyze=analyze, args=args, params=params)

    def trace(self, mql: str, *args: Any, **params: Any):
        """Execute a SELECT cluster-wide under a forced trace; returns
        the root :class:`~repro.obs.trace.Span` with one child span per
        touched shard (see :meth:`repro.db.Prima.trace`)."""
        prepared = self.data.prepare(mql)
        if prepared.kind != "select":
            raise PrimaError("TRACE supports SELECT statements only")
        return prepared.trace(args, params)

    def execute_ldl(self, ldl: str) -> list[str]:
        """Execute an LDL script on every shard (catalog lockstep)."""
        for engine in self.engines:
            output = engine.execute_ldl(ldl)
        self.access.counters.bump("ddl_fanouts")
        return output

    # -- direct atom access ---------------------------------------------------

    def insert_atom(self, type_name: str,
                    values: dict[str, Any] | None = None) -> Surrogate:
        surrogate = self.access.insert(type_name, values)
        self.data.publish_data_version()
        return surrogate

    def get_atom(self, surrogate: Surrogate,
                 attrs: list[str] | None = None) -> dict[str, Any]:
        return self.access.get(surrogate, attrs)

    def modify_atom(self, surrogate: Surrogate,
                    values: dict[str, Any]) -> None:
        self.access.modify(surrogate, values)
        self.data.publish_data_version()

    def delete_atom(self, surrogate: Surrogate) -> None:
        self.access.delete(surrogate)
        self.data.publish_data_version()

    # -- serving -------------------------------------------------------------

    def serve(self, **kwargs):
        """A :class:`~repro.serve.SessionManager` over the cluster —
        the same serving layer, the coordinator underneath."""
        from repro.serve import SessionManager
        model = kwargs.pop("model", None)
        fetch_size = kwargs.pop("fetch_size", None)
        return SessionManager(self, model=model,
                              default_fetch_size=fetch_size, **kwargs)

    def attach_network(self, stats) -> None:
        if stats not in self._network_stats:
            self._network_stats.append(stats)

    def attach_sessions(self, manager: "SessionManager") -> None:
        if manager not in self._session_managers:
            self._session_managers.append(manager)

    # -- optimizer meta-data --------------------------------------------------

    def analyze(self, type_name: str | None = None) -> int:
        """Collect optimizer statistics on every shard (each sees only
        its partition — selectivities stay locally accurate)."""
        return sum(engine.analyze(type_name) for engine in self.engines)

    def advise_ranges(self, type_name: str | None = None
                      ) -> dict[str, tuple]:
        """Derive range split points from collected statistics.

        For every keyed atom type without declared ranges (one type when
        ``type_name`` is given), merge the per-shard min/max of the
        first key attribute and ask the router for evenly spaced split
        points over that domain; adopt whatever qualifies.  Returns the
        ``{type: points}`` mapping actually adopted.

        Adoption over *existing* data is marked mixed-placement on the
        router: new inserts follow the derived ranges, but key-lookup
        queries keep scattering for the type (old atoms sit where the
        hash put them, and the direct-access key probe falls back to
        every shard) — correctness never depends on a rebalance this
        engine does not perform.
        """
        self.analyze(type_name)
        names = ([type_name] if type_name is not None
                 else list(self.schema.atom_type_names()))
        adopted: dict[str, tuple] = {}
        for name in names:
            atom_type = self.schema.atom_type(name)
            if not atom_type.keys or \
                    self.router.range_points(name) is not None:
                continue
            key_attr = atom_type.keys[0]
            lo = hi = None
            populated = 0
            for engine in self.engines:
                stats = engine.data.statistics.type_statistics(name)
                column = (stats.attributes.get(key_attr)
                          if stats is not None else None)
                if column is None or column.minimum is None:
                    continue
                populated += stats.cardinality
                try:
                    if lo is None or column.minimum < lo:
                        lo = column.minimum
                    if hi is None or column.maximum > hi:
                        hi = column.maximum
                except TypeError:
                    lo = hi = None   # mixed-type domain: stay hashed
                    break
            points = ShardRouter.derive_split_points(
                lo, hi, self.shard_count)
            if points is None:
                continue
            self.router.adopt_ranges(name, points, mixed=populated > 0)
            adopted[name] = points
            self.access.counters.bump("router_ranges_advised")
        return adopted

    # -- accounting -----------------------------------------------------------

    def io_report(self) -> dict[str, Any]:
        """Cluster-wide accounting: per-shard reports summed, plus the
        coordinator's routing counters and the service channels."""
        report: dict[str, Any] = {}
        for engine in self.engines:
            for key, value in engine.io_report().items():
                if isinstance(value, bool) or \
                        not isinstance(value, (int, float)):
                    continue
                report[key] = report.get(key, 0) + value
        report.update(self.access.counters.snapshot())
        service = self.service_report()
        report["shards"] = service["shards"]
        report["shard_service_ms"] = [entry["comm_time_ms"]
                                      for entry in service["per_shard"]]
        report["shard_makespan_ms"] = service["makespan_ms"]
        if self._network_stats:
            messages = nbytes = 0
            comm_ms = 0.0
            for stats in self._network_stats:
                snapshot = stats.snapshot()
                messages += snapshot["messages"]
                nbytes += snapshot["bytes_sent"]
                comm_ms += snapshot["comm_time_ms"]
            report["net_messages"] = messages
            report["net_bytes"] = nbytes
            report["net_comm_time_ms"] = round(comm_ms, 3)
        return report

    @property
    def obs(self):
        """The coordinator's observability bundle (cluster-level
        tracer, metrics, and slow log)."""
        return self.data.obs

    def metrics_report(self) -> dict[str, Any]:
        """One cluster-wide metrics view: the coordinator's registry
        merged with every shard engine's and every serving session's
        (counters/buckets sum, gauges last-writer-wins), plus the
        summed counter report.  Histogram schemas agree by construction
        (:data:`repro.obs.metrics.DEFAULT_BUCKETS`)."""
        registries = [self.data.obs.metrics]
        registries.extend(engine.data.obs.metrics
                          for engine in self.engines)
        for manager in self._session_managers:
            registries.extend(manager.metric_registries())
        counters = self.io_report()
        fixes = counters.get("fixes", 0)
        if fixes:
            ratio = round(counters.get("hits", 0) / fixes, 4)
            self.data.obs.metrics.gauge("buffer_hit_ratio", ratio)
            self.data.obs.metrics.observe("buffer_hit_ratio", ratio)
        merged = registries[0].merge(*registries[1:])
        return {
            "counters": counters,
            "gauges": merged.gauges(),
            "histograms": merged.histograms(),
        }

    def reset_accounting(self) -> None:
        for engine in self.engines:
            engine.reset_accounting()
        self.access.counters.reset()
        self.data.obs.reset()
        for stats in self.channels:
            stats.reset()
        for stats in self._network_stats:
            stats.reset()
        for manager in self._session_managers:
            manager.reset_accounting()

    # -- maintenance ----------------------------------------------------------

    def commit(self) -> None:
        for engine in self.engines:
            engine.commit()

    def close(self) -> None:
        for manager in self._session_managers:
            manager.close_all()
        for engine in self.engines:
            engine.close()
        self._session_managers.clear()
        self._network_stats.clear()

    def __enter__(self) -> "ShardedCluster":
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> None:
        self.close()

    def verify_integrity(self) -> list:
        violations = []
        for engine in self.engines:
            violations.extend(engine.verify_integrity())
        return violations

    def __repr__(self) -> str:
        return f"ShardedCluster({self.shard_count} shards, {self.router!r})"
