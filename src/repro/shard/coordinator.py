"""The cluster coordinator: one MQL surface over N shard engines.

The :class:`Coordinator` presents the :class:`~repro.data.executor
.DataSystem` query surface (``prepare`` / ``execute`` / ``open_result`` /
``catalog_version`` / ``publish_data_version``) so the serving layer —
sessions, the daemon, ``repro.connect`` — runs over a cluster exactly as
over one engine.  Behind that surface it routes:

* **routed** — a SELECT whose root access is an exact KEYS_ARE lookup
  with concrete (bound) key values executes on exactly the shard that
  owns the key (the :class:`~repro.shard.router.ShardRouter` placed the
  atom there at insert time);
* **scatter** — every other SELECT fans out to all shards and gathers
  through a cross-shard ordered merge.  Each shard compiles its own
  pipeline against its own pinned snapshot with the window widened to
  ``limit + offset`` (its private TopK bounded heap — no shard ever
  constructs more than ``k + m`` molecules), and for prefix-served
  orders the coordinator pushes the tightening *global* stop bound back
  down into the shards still in flight, so later shards stop their
  scans even earlier than their local heaps would;
* **DML/DDL** — DDL and LDL fan out to every shard (the per-shard
  catalogs stay in lockstep, which is what makes one representative
  plan valid cluster-wide); INSERT routes to the key's owner; DELETE /
  MODIFY scatter and sum their effects.

Plan invalidation composes per shard with the coordinator: each shard's
prepared statement replans itself when *its* catalog version moves, and
the coordinator re-derives the routing annotation whenever the summed
cluster version moves (``cluster_plans_invalidated``).
"""

from __future__ import annotations

import pickle
import threading
import time
from collections import OrderedDict
from dataclasses import replace
from typing import TYPE_CHECKING, Any

from repro.data.operators import RootScan, order_rank
from repro.data.plan import QueryPlan
from repro.data.prepared import PlanCache
from repro.data.result import ResultSet
from repro.errors import PrimaError
from repro.mql.ast import (
    CreateAtomType,
    DefineMoleculeType,
    DeleteStatement,
    DropAtomType,
    DropMoleculeType,
    InsertStatement,
    Literal,
    ModifyStatement,
    Parameter,
    Projection,
    SelectStatement,
    Statement,
)
from repro.obs import Observability
from repro.obs.trace import Span, span_from_operator
from repro.parallel.decompose import merge_ordered

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.shard.cluster import ShardedCluster

_DDL_STATEMENTS = (CreateAtomType, DropAtomType, DefineMoleculeType,
                   DropMoleculeType)


def _molecule_bytes(molecule: Any) -> int:
    """Modelled wire size of one gathered molecule (pickled, like the
    serving protocol frames its batches)."""
    return len(pickle.dumps(molecule, protocol=pickle.HIGHEST_PROTOCOL))


def _mol_value(molecule: Any, attr: str) -> Any:
    """ORDER BY values read off the *unprojected* root atom — the same
    accessor the serial Sort/TopK operators rank with."""
    return molecule.atom.get(attr)


def _shard_span(pipe: "_ShardPipe", parent: Span) -> Span:
    """One shard's child span: the shard pipeline's measured wall-time,
    gathered rows/bytes, and the operator spans underneath."""
    span = Span(f"shard:{pipe.index}", parent=parent)
    span.started = 0.0
    span.duration = max(pipe.pipeline.time_total, 0.0)
    span.attrs["shard"] = pipe.index
    span.attrs["rows"] = pipe.delivered
    span.attrs["bytes"] = pipe.bytes_out
    span_from_operator(pipe.pipeline, parent=span)
    return span


class _ShardPipe:
    """One shard's compiled pipeline plus its pinned snapshot.

    Honours the operator pull protocol (``next``/``close``/``rewind``),
    so a routed result set streams straight off it.  Closing releases
    the shard's snapshot pin and bills the delivered bytes against the
    shard's modelled service channel (one message + payload — the
    deterministic quantity the scaling bench gates on).
    """

    def __init__(self, cluster: "ShardedCluster", index: int, data: Any,
                 plan: QueryPlan, snapshot: Any) -> None:
        self.cluster = cluster
        self.index = index
        self.data = data
        self.snapshot = snapshot
        self.pipeline = plan.compile(data, snapshot=snapshot)
        self.delivered = 0
        self.bytes_out = 0
        self.closed = False
        self._hooks: list = []

    def next(self) -> Any:
        molecule = self.pipeline.next()
        if molecule is not None:
            self.delivered += 1
            self.bytes_out += _molecule_bytes(molecule)
        return molecule

    def push_bound(self, values: tuple) -> None:
        """Install the coordinator's global stop bound on this shard's
        root scan (a no-op for unordered accesses)."""
        operator = self.pipeline
        while getattr(operator, "children", None):
            operator = operator.children[0]
        if isinstance(operator, RootScan):
            operator.bound(values)

    def rewind(self) -> None:
        self.pipeline.rewind()

    def add_close_hook(self, hook) -> None:
        self._hooks.append(hook)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self.pipeline.close()
        finally:
            self.snapshot.release()
            self.cluster.bill_shard(self.index, self.bytes_out)
            for hook in self._hooks:
                hook(self)


class _ScatterGather:
    """Cross-shard gather source: ordered k-way merge over shard pipes.

    Three gather modes, chosen from the (bound) global plan:

    * ``windowed`` — ORDER BY + LIMIT.  Shards drain in shard order
      into a bounded candidate set (each shard's own TopK already caps
      it at ``k + offset``); once the candidate set covers the window,
      the current global boundary's order-prefix key is pushed down
      into every *remaining* shard's root scan before it drains
      (``shard_bounds_pushed``) — the cross-shard twin of TopK's
      tightening heap bound.
    * ``stream`` — ORDER BY without LIMIT: a lazy k-way merge over the
      per-shard ordered streams, at most one molecule ahead per shard.
    * ``concat`` — no ORDER BY: shard streams concatenate in shard
      order under the global OFFSET/LIMIT window.

    Ties across shards resolve to the lower shard index (then arrival
    order), so gathers are deterministic for any shard count.
    """

    def __init__(self, coordinator: "Coordinator", plan: QueryPlan,
                 pipes: list[_ShardPipe]) -> None:
        self._coordinator = coordinator
        self._plan = plan
        self._pipes = pipes
        self._hooks: list = []
        self._closed = False
        self._started = False
        self._exhausted = False
        self._projected: set[int] = set()
        if plan.order_by and plan.limit is not None:
            self._mode = "windowed"
        elif plan.order_by:
            self._mode = "stream"
        else:
            self._mode = "concat"
        self._selected: list[tuple[Any, int]] | None = None
        self._position = 0
        self._merge = None
        self._concat_index = 0
        self._skipped = 0
        self._emitted = 0

    # -- gather ---------------------------------------------------------------

    def next(self) -> Any:
        self._started = True
        if self._closed:
            return None
        if self._mode == "windowed":
            molecule = self._next_windowed()
        elif self._mode == "stream":
            molecule = self._next_stream()
        else:
            molecule = self._next_concat()
        if molecule is None:
            self._exhausted = True
        return molecule

    def _next_windowed(self) -> Any:
        if self._selected is None:
            self._prime()
        if self._position >= len(self._selected):
            return None
        molecule, _shard = self._selected[self._position]
        self._position += 1
        return molecule

    def _prime(self) -> None:
        """Drain every shard's bounded result, tightening the global
        stop bound between shards; select the global window."""
        plan = self._plan
        window = plan.limit + plan.offset
        # A fully order-served access reports no explicit prefix — the
        # whole ORDER BY is the served (and boundable) prefix then.
        served = plan.order_prefix_served or (
            len(plan.order_by) if plan.order_served_by_access else 0)
        prefix_attrs = [attr for attr, _desc in plan.order_by[:served]]
        entry_key = lambda e: (e[0], e[1], e[2])  # noqa: E731
        entries: list[tuple[tuple, int, int, Any, tuple]] = []
        serial = 0
        for index, pipe in enumerate(self._pipes):
            if prefix_attrs and len(entries) >= window:
                boundary = sorted(entries, key=entry_key)[window - 1]
                pipe.push_bound(boundary[4])
                self._coordinator.counters.bump("shard_bounds_pushed")
            while True:
                molecule = pipe.next()
                if molecule is None:
                    break
                rank = order_rank(molecule, plan.order_by, _mol_value)
                prefix = tuple(molecule.atom.get(attr)
                               for attr in prefix_attrs)
                entries.append((rank, index, serial, molecule, prefix))
                serial += 1
        entries.sort(key=entry_key)
        chosen = entries[plan.offset:plan.offset + plan.limit]
        selected: list[tuple[Any, int]] = []
        for _rank, index, _serial, molecule, _prefix in chosen:
            self._project(molecule, index)
            selected.append((molecule, index))
        self._selected = selected

    def _next_stream(self) -> Any:
        if self._merge is None:
            self._merge = merge_ordered(self._pipes, self._plan.order_by,
                                        _mol_value)
        for molecule, index in self._merge:
            if self._skipped < self._plan.offset:
                self._skipped += 1
                continue
            self._project(molecule, index)
            return molecule
        return None

    def _next_concat(self) -> Any:
        plan = self._plan
        if plan.limit is not None and self._emitted >= plan.limit:
            return None
        while self._concat_index < len(self._pipes):
            molecule = self._pipes[self._concat_index].next()
            if molecule is None:
                self._concat_index += 1
                continue
            if self._skipped < plan.offset:
                self._skipped += 1
                continue
            self._emitted += 1
            return molecule
        return None

    def _project(self, molecule: Any, index: int) -> None:
        """Apply the query's projection at delivery (shard pipelines ran
        projection-free so ORDER BY values survived to the merge)."""
        plan = self._plan
        if plan.projection.select_all or id(molecule) in self._projected:
            return
        self._projected.add(id(molecule))
        self._pipes[index].data.apply_projection(molecule, plan.projection,
                                                 plan.structure)

    # -- cursor contract ------------------------------------------------------

    def has_pending(self) -> bool:
        return self._started and not self._exhausted

    def rewind(self) -> None:
        if self._closed:
            return
        self._exhausted = False
        if self._mode == "windowed" and self._selected is not None:
            self._position = 0
            return
        for pipe in self._pipes:
            pipe.rewind()
        self._merge = None
        self._concat_index = 0
        self._skipped = 0
        self._emitted = 0

    def add_close_hook(self, hook) -> None:
        self._hooks.append(hook)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for pipe in self._pipes:
            pipe.close()
        for hook in self._hooks:
            hook(self)


class ClusterPrepared:
    """One prepared statement, planned on every shard.

    Wraps N per-shard prepared statements (each riding its shard's plan
    cache and auto-parameterization, each replanning itself when *its*
    catalog version moves) behind the single-statement surface the
    serving layer speaks.  The coordinator-level concern on top is the
    routing annotation: re-derived whenever the summed cluster catalog
    version moves (a DDL fan-out bumps every shard).
    """

    def __init__(self, coordinator: "Coordinator", text: str) -> None:
        self._coordinator = coordinator
        self._stmts = [engine.data.prepare(text)
                       for engine in coordinator.cluster.engines]
        base = self._stmts[0]
        self.text = base.text
        self.kind = base.kind
        self.param_count = base.param_count
        self.param_names = tuple(base.param_names)
        self._version = coordinator.catalog_version

    @property
    def root_atom_type(self) -> str:
        return self._stmts[0].root_atom_type

    def dependency_types(self) -> frozenset[str]:
        """The union of every shard plan's dependency set.  Shard
        catalogs move in lockstep (DDL fans out), so the per-shard sets
        normally agree — the union is the safe cluster-wide answer, and
        it is what lets *any* shard's commit fire the subscription."""
        types: set[str] = set()
        for stmt in self._stmts:
            types.update(stmt.dependency_types())
        return frozenset(types)

    def _refresh(self) -> None:
        current = self._coordinator.catalog_version
        if current != self._version:
            self._version = current
            self._coordinator.counters.bump("cluster_plans_invalidated")

    def plan(self) -> QueryPlan:
        self._refresh()
        return self._coordinator.annotate(self._stmts[0].plan())

    def bind(self, args: tuple = (),
             params: dict[str, Any] | None = None) -> QueryPlan:
        self._refresh()
        bound = self._stmts[0].bind(args, params or {})
        return self._coordinator.annotate(
            bound, shard=self._coordinator.routed_target(bound))

    def execute(self, *args: Any, **params: Any) -> ResultSet:
        self._refresh()
        if self.kind == "select":
            return self._coordinator.open_result(self, args, params)
        statement = self._stmts[0].bound_statement(args, params)
        return self._coordinator.execute(statement)

    @property
    def statement(self) -> Statement:
        return self._stmts[0].statement

    def bound_statement(self, args: tuple = (),
                        params: dict[str, Any] | None = None) -> Statement:
        return self._stmts[0].bound_statement(args, params or {})

    def explain(self, analyze: bool = False, args: tuple = (),
                params: dict[str, Any] | None = None) -> str:
        """The routed/annotated plan; ``analyze=True`` executes the
        query cluster-wide and renders the real span tree — the root
        span's wall-time with one child span per touched shard, each
        carrying its shard pipeline's operator spans."""
        if self.kind != "select":
            raise PrimaError("EXPLAIN supports SELECT statements only")
        params = params or {}
        if args or params or (analyze and
                              (self.param_count or self.param_names)):
            plan = self.bind(args, params)
        else:
            plan = self.plan()
        if not analyze:
            return plan.explain()
        span = self._coordinator.trace(self, args, params)
        lines = [plan.explain(), "  analyzed:"]
        lines.extend("    " + line for line in span.render())
        return "\n".join(lines)

    def trace(self, args: tuple = (),
              params: dict[str, Any] | None = None) -> Span:
        """Execute to exhaustion under a forced trace; the root span
        gets one child span per routed/scattered shard."""
        if self.kind != "select":
            raise PrimaError("TRACE supports SELECT statements only")
        return self._coordinator.trace(self, args, params or {})

    def __repr__(self) -> str:
        shards = len(self._stmts)
        return f"ClusterPrepared({self.kind}, {shards} shard(s), " \
               f"{self.text!r})"


class Coordinator:
    """DataSystem-shaped execution surface of a :class:`ShardedCluster`."""

    def __init__(self, cluster: "ShardedCluster") -> None:
        self.cluster = cluster
        self._prepared: "OrderedDict[str, ClusterPrepared]" = OrderedDict()
        self._lock = threading.Lock()
        self.obs = Observability()

    # -- the DataSystem surface the serving layer speaks ---------------------

    @property
    def schema(self):
        return self.cluster.engines[0].schema

    @property
    def validator(self):
        return self.cluster.engines[0].data.validator

    @property
    def evaluator(self):
        return self.cluster.engines[0].data.evaluator

    @property
    def counters(self):
        return self.cluster.access.counters

    @property
    def catalog_version(self) -> int:
        """Summed per-shard versions: any shard's DDL moves the total."""
        return sum(engine.data.catalog_version
                   for engine in self.cluster.engines)

    @property
    def auto_parameterize(self) -> bool:
        return self.cluster.engines[0].data.auto_parameterize

    @auto_parameterize.setter
    def auto_parameterize(self, value: bool) -> None:
        for engine in self.cluster.engines:
            engine.data.auto_parameterize = value

    def publish_data_version(self) -> int:
        """Advance every shard's atom-version epoch (a commit boundary
        observed cluster-wide)."""
        return max(engine.data.publish_data_version()
                   for engine in self.cluster.engines)

    def prepare(self, mql: str, use_cache: bool = True) -> ClusterPrepared:
        """Plan ``mql`` on every shard; cache the cluster handle.

        The per-shard statements ride their shards' plan caches (and
        auto-parameterization); this map only deduplicates the cluster
        wrapper so repeated text returns one handle identity.
        """
        key = PlanCache.normalize(mql)
        if use_cache:
            with self._lock:
                hit = self._prepared.get(key)
                if hit is not None:
                    self._prepared.move_to_end(key)
                    self.counters.bump("cluster_prepared_hits")
                    return hit
        prepared = ClusterPrepared(self, mql)
        if use_cache:
            with self._lock:
                self._prepared[key] = prepared
                while len(self._prepared) > 128:
                    self._prepared.popitem(last=False)
        return prepared

    def execute_text(self, mql: str, args: tuple = (),
                     params: dict[str, Any] | None = None,
                     use_cache: bool = True) -> ResultSet:
        prepared = self.prepare(mql, use_cache=use_cache)
        return prepared.execute(*args, **(params or {}))

    # -- SELECT execution -----------------------------------------------------

    def annotate(self, plan: QueryPlan,
                 shard: int | None = None) -> QueryPlan:
        """Stamp the shard-routing annotation onto a (possibly bound)
        plan — the planner's shard-awareness lives here."""
        cluster = self.cluster
        if plan.root_access.kind == "key_lookup":
            root_type = self.schema.atom_type(plan.root_access.atom_type)
            routing: dict[str, Any] = {
                "mode": "routed",
                "shards": cluster.shard_count,
                "key_attr": ", ".join(root_type.keys),
            }
            if shard is not None:
                routing["shard"] = shard
        else:
            routing = {"mode": "scatter", "shards": cluster.shard_count}
        return replace(plan, routing=routing)

    def routed_target(self, plan: QueryPlan) -> int | None:
        """The single shard a bound key-lookup plan routes to (``None``:
        scatter — any other access kind, or a still-unbound key)."""
        if plan.root_access.kind != "key_lookup":
            return None
        if not self.cluster.router.routable(plan.root_access.atom_type):
            return None   # mixed placement: old atoms may sit anywhere
        key = plan.root_access.detail.get("key")
        if key is None or any(isinstance(part, Parameter) for part in key):
            return None
        return self.cluster.router.shard_of_key(plan.root_access.atom_type,
                                                key)

    def open_result(self, prepared: ClusterPrepared, args: tuple = (),
                    params: dict[str, Any] | None = None) -> ResultSet:
        """Bind and execute a prepared SELECT: routed or scatter-gather.

        The cluster twin of ``DataSystem.open_result``: the returned
        lazy :class:`ResultSet` holds one pinned snapshot *per touched
        shard*, all released when it closes.
        """
        params = params or {}
        prepared._refresh()
        plans = [stmt.bind(args, params) for stmt in prepared._stmts]
        return self._open(plans, self.routed_target(plans[0]),
                          text=prepared.text)

    def _select_statement(self, statement: SelectStatement) -> ResultSet:
        """Execute an already-parsed SELECT AST (the script path)."""
        plans = []
        for engine in self.cluster.engines:
            engine.data._ensure_symmetry()
            plans.append(engine.data.plan_select(statement))
        return self._open(plans, self.routed_target(plans[0]))

    def _open(self, plans: list[QueryPlan], target: int | None,
              text: str = "") -> ResultSet:
        if target is not None:
            plan = plans[target]
            annotated = self.annotate(plan, shard=target)
            pipe = self._open_pipe(target, replace(plan, routing=None))
            self.counters.bump("routed_queries")
            self._watch(text, pipe, [pipe])
            result = ResultSet(source=pipe, plan_text=annotated.explain())
            result.shard = target
            return result
        annotated = self.annotate(plans[0])
        pipes: list[_ShardPipe] = []
        try:
            for index, plan in enumerate(plans):
                pipes.append(self._open_pipe(index, self._shard_plan(plan)))
        except BaseException:
            for pipe in pipes:
                pipe.close()
            raise
        self.counters.bump("scatter_queries")
        source = _ScatterGather(self, plans[0], pipes)
        self._watch(text, source, pipes)
        result = ResultSet(source=source, plan_text=annotated.explain())
        result.shard = None
        return result

    def _watch(self, text: str, source: Any,
               pipes: list[_ShardPipe]) -> None:
        """Arm per-query accounting on a gather source: when the result
        set closes, the coordinator's latency histogram and slow log see
        the query — with a span tree (root + one child per shard) when
        the tracer sampled it."""
        obs = self.obs
        span = obs.tracer.start("query", mql=text,
                                shards=len(pipes))
        started = time.perf_counter()

        def _finish(_source: Any) -> None:
            duration = time.perf_counter() - started
            if span is not None:
                span.duration = duration
                for pipe in pipes:
                    _shard_span(pipe, span)
            obs.observe_query(text, duration, span)

        source.add_close_hook(_finish)

    def trace(self, prepared: ClusterPrepared, args: tuple = (),
              params: dict[str, Any] | None = None) -> Span:
        """Run a prepared SELECT to exhaustion under a forced trace.

        Unlike the sampled close-hook path this always builds the span
        tree: the root span is live wall-time, each touched shard
        contributes one child span carrying its pipeline's operator
        spans (their summed self-times bound by the root duration).
        """
        params = params or {}
        prepared._refresh()
        plans = [stmt.bind(args, params) for stmt in prepared._stmts]
        target = self.routed_target(plans[0])
        span = Span("query", attrs={"mql": prepared.text})
        if target is not None:
            pipes = [self._open_pipe(
                target, replace(plans[target], routing=None))]
            self.counters.bump("routed_queries")
            source: Any = pipes[0]
            span.attrs["mode"] = "routed"
        else:
            pipes = []
            try:
                for index, plan in enumerate(plans):
                    pipes.append(
                        self._open_pipe(index, self._shard_plan(plan)))
            except BaseException:
                for pipe in pipes:
                    pipe.close()
                raise
            self.counters.bump("scatter_queries")
            source = _ScatterGather(self, plans[0], pipes)
            span.attrs["mode"] = "scatter"
        span.attrs["shards"] = len(pipes)
        rows = 0
        try:
            while source.next() is not None:
                rows += 1
        finally:
            source.close()
        span.finish()
        span.attrs["rows"] = rows
        for pipe in pipes:
            _shard_span(pipe, span)
        self.obs.observe_query(prepared.text, span.duration, span)
        return span

    def _shard_plan(self, plan: QueryPlan) -> QueryPlan:
        """One shard's slice of a scatter plan.

        The window widens to ``limit + offset`` with the offset zeroed —
        any shard may hold the entire global window, and the skip is a
        global decision.  Under ORDER BY the shard pipelines also run
        projection-free (the gather ranks on root-attribute values the
        projection may prune; the coordinator projects at delivery).
        """
        changes: dict[str, Any] = {"routing": None, "offset": 0}
        changes["limit"] = plan.limit + plan.offset \
            if plan.limit is not None else None
        if plan.order_by and not plan.projection.select_all:
            changes["projection"] = Projection(select_all=True)
        return replace(plan, **changes)

    def _open_pipe(self, index: int, plan: QueryPlan) -> _ShardPipe:
        cluster = self.cluster
        engine = cluster.engines[index]
        with cluster.shard_slot(index):
            snapshot = engine.data.open_snapshot()
            try:
                pipe = _ShardPipe(cluster, index, engine.data, plan,
                                  snapshot)
            except BaseException:
                snapshot.release()
                raise
        engine.access.counters.bump("cluster_queries")
        return pipe

    # -- statement execution (DML/DDL dispatch) ------------------------------

    def execute(self, statement: Statement) -> ResultSet:
        """Execute one parsed statement across the cluster.

        DDL fans out to every shard (catalogs move in lockstep); INSERT
        routes to the key owner's shard; DELETE/MODIFY scatter and sum
        their affected counts; SELECT takes the routed/scatter path.
        """
        if isinstance(statement, SelectStatement):
            return self._select_statement(statement)
        if isinstance(statement, _DDL_STATEMENTS):
            for engine in self.cluster.engines:
                result = engine.data.execute(statement)
            self.counters.bump("ddl_fanouts")
            return result
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement)
        if isinstance(statement, (DeleteStatement, ModifyStatement)):
            affected = 0
            for engine in self.cluster.engines:
                affected += engine.data.execute(statement).affected
            self.counters.bump("dml_fanouts")
            return ResultSet(affected=affected)
        raise PrimaError(
            f"cluster coordinator cannot execute "
            f"{type(statement).__name__}"
        )

    def _execute_insert(self, statement: InsertStatement) -> ResultSet:
        root_type = self.schema.atom_type(statement.type_name)
        values = {attr: expr.value
                  for attr, expr in statement.assignments
                  if isinstance(expr, Literal)}
        shard = self.cluster.router.shard_for_insert(
            root_type.keys, statement.type_name, values)
        if shard is None:
            shard = self.cluster.next_unrouted_shard()
            self.counters.bump("unrouted_inserts")
        else:
            self.counters.bump("routed_inserts")
        return self.cluster.engines[shard].data.execute(statement)
