"""Shard routing: molecule types → engine instances.

The router owns the one decision every cluster operation starts with:
*which shard holds (or will hold) this atom*.  Two placement schemes are
supported per atom type:

* **hash** (the default): the root-key value hashes into ``0..N-1`` with
  a *stable* hash (CRC32 over the rendered value — never Python's
  randomised ``hash()``, which would scatter differently per process
  and break fork workers and persisted clusters alike);
* **range**: explicit split points partition an ordered key domain,
  shard ``i`` holding keys below the ``i``-th split point (the classic
  Wisconsin-style range declustering).

Atoms addressed by surrogate need no placement metadata at all: shard
``i`` of an N-engine cluster generates surrogate numbers in the residue
class ``i+1 (mod N)`` (see
:class:`repro.access.address.SurrogateGenerator`), so the owner is
recoverable arithmetically as ``(number - 1) % N``.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Any, Sequence

from repro.errors import PrimaError
from repro.mad.types import Surrogate


def stable_hash(value: Any) -> int:
    """A process-stable non-negative hash of one routing-key value.

    Integers route by value (so contiguous keys spread round-robin —
    the balanced case for generated workloads); everything else routes
    by CRC32 of its ``repr``.  Deterministic across processes, runs,
    and Python versions, unlike the built-in randomised string hash.
    """
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        return value if value >= 0 else -value
    return zlib.crc32(repr(value).encode("utf-8"))


class ShardRouter:
    """Maps atom types to shards by root-key hash or declared ranges."""

    def __init__(self, shards: int,
                 ranges: "dict[str, Sequence[Any]] | None" = None) -> None:
        if shards < 1:
            raise PrimaError("a cluster needs at least one shard")
        self.shards = shards
        self._ranges: dict[str, tuple[Any, ...]] = {}
        #: Types whose ranges were adopted over pre-existing hash-placed
        #: data: inserts follow the ranges, but key-lookup queries must
        #: keep scattering (old atoms sit where the hash put them).
        self._mixed: set[str] = set()
        for atom_type, points in (ranges or {}).items():
            self.adopt_ranges(atom_type, points)

    def adopt_ranges(self, atom_type: str, points: Sequence[Any],
                     mixed: bool = False) -> None:
        """Declare (or replace) the range split points of one type.

        ``mixed=True`` records that atoms of the type already exist
        under the previous (hash) placement: new inserts follow the
        ranges, while :meth:`routable` turns False so key-lookup
        queries scatter — the direct-access probe additionally falls
        back to every shard on a routed miss, keeping both eras of
        placement findable.
        """
        points = tuple(points)
        if len(points) != self.shards - 1:
            raise PrimaError(
                f"range routing for {atom_type!r} needs exactly "
                f"{self.shards - 1} split point(s) for {self.shards} "
                f"shard(s), got {len(points)}"
            )
        if list(points) != sorted(points):
            raise PrimaError(
                f"range routing for {atom_type!r}: split points must "
                f"be ascending"
            )
        self._ranges[atom_type] = points
        if mixed:
            self._mixed.add(atom_type)
        else:
            self._mixed.discard(atom_type)

    def range_points(self, atom_type: str) -> "tuple[Any, ...] | None":
        """The declared split points of a type (None when hash-placed)."""
        return self._ranges.get(atom_type)

    def routable(self, atom_type: str) -> bool:
        """Whether a bound key lookup may execute on a single shard.

        False only for mixed-placement types (ranges adopted after
        hash-placed data existed) — their old atoms are not where the
        ranges say, so a single-shard lookup could silently miss.
        """
        return atom_type not in self._mixed

    @staticmethod
    def derive_split_points(minimum: Any, maximum: Any,
                            shards: int) -> "tuple[Any, ...] | None":
        """Even split points over an observed numeric key domain.

        ``shards - 1`` points spaced evenly between the observed minimum
        and maximum (ints round to ints); ``None`` when the domain is
        non-numeric, degenerate, or too narrow to yield strictly
        ascending points — the caller keeps hash placement then.
        """
        if shards < 2:
            return None
        if isinstance(minimum, bool) or isinstance(maximum, bool):
            return None
        if not isinstance(minimum, (int, float)) or \
                not isinstance(maximum, (int, float)):
            return None
        if not maximum > minimum:
            return None
        span = maximum - minimum
        points: list[Any] = []
        integral = isinstance(minimum, int) and isinstance(maximum, int)
        for i in range(1, shards):
            point = minimum + span * i / shards
            points.append(round(point) if integral else point)
        if any(b <= a for a, b in zip(points, points[1:])):
            return None   # domain too narrow for distinct ascending cuts
        return tuple(points)

    def scheme(self, atom_type: str) -> str:
        """``'range'`` or ``'hash'`` — how this type's keys place."""
        return "range" if atom_type in self._ranges else "hash"

    def shard_of_key(self, atom_type: str, key: Any) -> int:
        """The shard owning the atom of ``atom_type`` with this key.

        ``key`` is the KEYS_ARE value — a scalar or the tuple of key
        attribute values in declaration order (a 1-tuple is unwrapped,
        matching how key lookups render a single-attribute key).
        """
        if isinstance(key, tuple) and len(key) == 1:
            key = key[0]
        points = self._ranges.get(atom_type)
        if points is not None:
            probe = key[0] if isinstance(key, tuple) else key
            return bisect_right(points, probe)
        if isinstance(key, tuple):
            code = 0
            for part in key:
                code = (code * 1000003) ^ stable_hash(part)
            return code % self.shards
        return stable_hash(key) % self.shards

    def shard_of_surrogate(self, surrogate: Surrogate) -> int:
        """The shard that generated this surrogate (residue recovery)."""
        return (surrogate.number - 1) % self.shards

    def shard_for_insert(self, keys: Sequence[str], atom_type: str,
                         values: dict[str, Any]) -> int | None:
        """Where a new atom with these attribute values must live.

        ``None`` when the type has no key or the key attributes are not
        all present — the caller falls back to its unrouted placement
        (and key lookups for such atoms cannot be routed either, so
        placement and lookup stay consistent by construction).
        """
        if not keys:
            return None
        key = tuple(values.get(attr) for attr in keys)
        if any(part is None for part in key):
            return None
        return self.shard_of_key(atom_type, key)

    def __repr__(self) -> str:
        ranged = ", ".join(sorted(self._ranges)) or "-"
        return f"ShardRouter({self.shards} shards, ranged: {ranged})"
