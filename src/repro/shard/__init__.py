"""Sharded scale-out: a partitioned engine cluster with routed and
scatter-gather query execution.

* :class:`ShardedCluster` — N independent PRIMA engines behind one
  ``Prima``-shaped surface;
* :class:`ShardRouter` — key → shard placement (stable hash or ranges),
  surrogate → shard by residue arithmetic;
* :class:`Coordinator` / :class:`ClusterPrepared` — the DataSystem-shaped
  execution layer: routed single-shard lookups, ordered cross-shard
  k-way merge gather with global TopK bound pushdown, DDL fan-out.
"""

from repro.shard.cluster import ClusterAccess, ClusterAtoms, ShardedCluster
from repro.shard.coordinator import ClusterPrepared, Coordinator
from repro.shard.router import ShardRouter, stable_hash

__all__ = [
    "ClusterAccess",
    "ClusterAtoms",
    "ClusterPrepared",
    "Coordinator",
    "ShardRouter",
    "ShardedCluster",
    "stable_hash",
]
