"""MQL: the Molecule Query Language front end (paper, 2.2 / Table 2.1)."""

from repro.mql import ast
from repro.mql.lexer import Token, tokenize
from repro.mql.parser import Parser, parse, parse_script

__all__ = ["Parser", "Token", "ast", "parse", "parse_script", "tokenize"]
