"""Recursive-descent parser for MQL.

Grammar summary (see the module docstrings of :mod:`repro.mql.lexer` and
:mod:`repro.mql.ast` for the construct inventory)::

    statement   := select | create_at | drop_at | define_mt | drop_mt
                 | insert | delete | modify
    select      := SELECT projection FROM structure [WHERE qual]
                   [ORDER BY path [ASC|DESC] (',' path [ASC|DESC])*]
                   [LIMIT INT [OFFSET INT]]
    projection  := ALL | proj_item (',' proj_item)*
    proj_item   := IDENT ':=' select            -- qualified projection
                 | path
                 | '(' proj_item (',' proj_item)* ')'
    structure   := node (('-' node_or_branch) | branch)*
    node        := IDENT ['.' IDENT] ['(' RECURSIVE ')']
    branch      := '(' structure (',' structure)* ')'
    qual        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | primary
    primary     := quantified | '(' qual ')' | comparison
    quantified  := (EXISTS | FOR_ALL | EXISTS_AT_LEAST '(' INT ')'
                    | EXISTS_EXACTLY '(' INT ')') IDENT ':' or_expr
    comparison  := operand ('=' | '!=' | '<' | '<=' | '>' | '>=') operand
    operand     := literal | EMPTY | path | ref_lookup | parameter
    path        := IDENT ['(' INT ')'] ('.' IDENT)*
    ref_lookup  := REF IDENT '(' literal (',' literal)* ')'
    parameter   := '?' | ':' IDENT      -- prepared-statement placeholder

Parameters (``?`` positional, ``:name`` named) are legal wherever a
literal is — comparison operands, DML assignment values, REF keys, and
the LIMIT/OFFSET window; positional markers are numbered in textual
order across the whole statement (see :mod:`repro.data.prepared`).

The chain ``a-b-c`` nests c under b under a; ``a.x-b`` names the reference
attribute ``x`` of ``a`` used for the edge to ``b``; ``a-b (c, d)`` makes c
and d children of b; ``a.x-a (RECURSIVE)`` declares recursion.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ParseError
from repro.mad.types import (
    BOOLEAN,
    BYTE_VAR,
    CHAR_VAR,
    IDENTIFIER,
    INTEGER,
    REAL,
    ArrayType,
    AttrType,
    CharVarType,
    ListType,
    RecordType,
    ReferenceType,
    SetType,
)
from repro.mql.ast import (
    And,
    Comparison,
    CreateAtomType,
    DefineMoleculeType,
    DeleteStatement,
    DropAtomType,
    DropMoleculeType,
    EmptyLiteral,
    Expr,
    FromNode,
    InsertStatement,
    Literal,
    ModifyStatement,
    Not,
    Or,
    OrderItem,
    Parameter,
    Path,
    Projection,
    ProjectionItem,
    Quantified,
    RefLookup,
    SelectStatement,
    Statement,
)
from repro.mql.lexer import Token, tokenize


class Parser:
    """One-statement-at-a-time recursive-descent parser."""

    def __init__(self, text: str) -> None:
        self._tokens = tokenize(text)
        self._pos = 0
        #: Positional placeholders seen so far — ``?`` markers are
        #: numbered in textual order across the whole statement.
        self._positionals = 0

    # -- token plumbing -----------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(
            f"{message} at line {token.line}, column {token.column} "
            f"(near {token.value!r})"
        )

    def _expect_op(self, op: str) -> Token:
        token = self._peek()
        if not token.is_op(op):
            raise self._error(f"expected {op!r}")
        return self._advance()

    def _expect_keyword(self, *words: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*words):
            raise self._error(f"expected {' or '.join(words)}")
        return self._advance()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind != "IDENT":
            raise self._error("expected an identifier")
        return self._advance().value

    def _expect_int(self) -> int:
        token = self._peek()
        if token.kind != "INT":
            raise self._error("expected an integer")
        return int(self._advance().value)

    def _maybe_parameter(self) -> Parameter | None:
        """Consume a ``?`` / ``:name`` placeholder, if one is next.

        Placeholders are recognised in *value* positions only (operands,
        DML assignment values, REF keys, LIMIT/OFFSET), where a bare
        ``:`` can never start a legal construct — the ``label :
        condition`` colon of quantifiers is consumed before its
        condition's operands are parsed.
        """
        token = self._peek()
        if token.is_op("?"):
            self._advance()
            parameter = Parameter(index=self._positionals)
            self._positionals += 1
            return parameter
        if token.is_op(":") and self._peek(1).kind == "IDENT":
            self._advance()
            return Parameter(name=self._expect_ident())
        return None

    def _int_or_parameter(self) -> int | Parameter:
        parameter = self._maybe_parameter()
        if parameter is not None:
            return parameter
        return self._expect_int()

    # -- entry points ---------------------------------------------------------------

    def parse_statement(self) -> Statement:
        """Parse exactly one statement (trailing ';' optional)."""
        statement = self._statement()
        if self._peek().is_op(";"):
            self._advance()
        if self._peek().kind != "EOF":
            raise self._error("unexpected trailing input")
        return statement

    def parse_script(self) -> list[Statement]:
        """Parse a ';'-separated sequence of statements."""
        statements: list[Statement] = []
        while self._peek().kind != "EOF":
            statements.append(self._statement())
            while self._peek().is_op(";"):
                self._advance()
        return statements

    # -- statement dispatch -------------------------------------------------------------

    def _statement(self) -> Statement:
        token = self._peek()
        if token.is_keyword("SELECT"):
            return self._select()
        if token.is_keyword("CREATE"):
            return self._create()
        if token.is_keyword("DROP"):
            return self._drop()
        if token.is_keyword("DEFINE"):
            return self._define_molecule_type()
        if token.is_keyword("INSERT"):
            return self._insert()
        if token.is_keyword("DELETE"):
            return self._delete()
        if token.is_keyword("MODIFY"):
            return self._modify()
        raise self._error("expected a statement")

    # -- SELECT ----------------------------------------------------------------------------

    def _select(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        projection = self._projection()
        self._expect_keyword("FROM")
        structure = self._structure()
        where = None
        if self._peek().is_keyword("WHERE"):
            self._advance()
            where = self._qual()
        order_by: list[OrderItem] = []
        if self._peek().is_keyword("ORDER"):
            self._advance()
            self._expect_keyword("BY")
            while True:
                path = self._path()
                descending = False
                if self._peek().is_keyword("ASC"):
                    self._advance()
                elif self._peek().is_keyword("DESC"):
                    self._advance()
                    descending = True
                order_by.append(OrderItem(path, descending))
                if self._peek().is_op(","):
                    self._advance()
                    continue
                break
        limit: int | Parameter | None = None
        offset: int | Parameter = 0
        if self._peek().is_keyword("LIMIT"):
            self._advance()
            limit = self._int_or_parameter()
            if self._peek().is_keyword("OFFSET"):
                self._advance()
                offset = self._int_or_parameter()
        return SelectStatement(projection, structure, where, order_by,
                               limit=limit, offset=offset)

    def _projection(self) -> Projection:
        if self._peek().is_keyword("ALL"):
            self._advance()
            return Projection(select_all=True)
        items: list[ProjectionItem] = []
        self._projection_items(items)
        return Projection(select_all=False, items=items)

    def _projection_items(self, items: list) -> None:
        while True:
            items.append(self._projection_item(items))
            if self._peek().is_op(","):
                self._advance()
                continue
            break

    def _projection_item(self, items: list) -> ProjectionItem:
        token = self._peek()
        if token.is_op("("):
            # Grouping parentheses: flatten inner items into the list and
            # return the first of them.
            self._advance()
            inner: list[ProjectionItem] = []
            self._projection_items(inner)
            self._expect_op(")")
            first, *rest = inner
            items.extend(rest)
            return first
        if token.kind != "IDENT":
            raise self._error("expected a projection item")
        # Qualified projection: label := SELECT ...
        if self._peek(1).is_op(":="):
            label = self._expect_ident()
            self._advance()   # :=
            subquery = self._select()
            return ProjectionItem(label=label, subquery=subquery)
        path = self._path()
        return ProjectionItem(path=path)

    # -- FROM structures ----------------------------------------------------------------------

    def _structure(self) -> FromNode:
        root = self._node()
        current = root
        pending_attr = current.via_attr
        current.via_attr = None    # the root itself is reached over nothing
        while True:
            token = self._peek()
            if token.is_op("-"):
                self._advance()
                if self._peek().is_op("("):
                    self._branch(current, pending_attr)
                    pending_attr = None
                    break
                nxt = self._node()
                child_attr = pending_attr
                pending_attr = nxt.via_attr
                nxt.via_attr = child_attr
                current.children.append(nxt)
                current = nxt
            elif token.is_op("(") and not self._peek(1).is_keyword("RECURSIVE"):
                self._branch(current, pending_attr)
                pending_attr = None
                break
            else:
                break
        if pending_attr is not None:
            raise self._error(
                f"dangling reference attribute {pending_attr!r} in FROM clause"
            )
        return root

    def _branch(self, parent: FromNode, pending_attr: str | None) -> None:
        if pending_attr is not None:
            raise self._error(
                "an explicit reference attribute cannot precede a branch"
            )
        self._expect_op("(")
        while True:
            child = self._structure()
            parent.children.append(child)
            if self._peek().is_op(","):
                self._advance()
                continue
            break
        self._expect_op(")")

    def _node(self) -> FromNode:
        name = self._expect_ident()
        via_attr = None
        if self._peek().is_op(".") and self._peek(1).kind == "IDENT":
            self._advance()
            via_attr = self._expect_ident()
        recursive = False
        if self._peek().is_op("(") and self._peek(1).is_keyword("RECURSIVE"):
            self._advance()
            self._advance()
            self._expect_op(")")
            recursive = True
        # NOTE: via_attr is stored temporarily on the node itself; the
        # chain logic in _structure() moves it onto the *next* node, since
        # "solid.sub-solid" names solid's attribute for the edge to the
        # next node.
        return FromNode(name=name, via_attr=via_attr, recursive=recursive)

    # -- WHERE expressions ------------------------------------------------------------------------

    def _qual(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        parts = [self._and_expr()]
        while self._peek().is_keyword("OR"):
            self._advance()
            parts.append(self._and_expr())
        return parts[0] if len(parts) == 1 else Or(parts)

    def _and_expr(self) -> Expr:
        parts = [self._not_expr()]
        while self._peek().is_keyword("AND"):
            self._advance()
            parts.append(self._not_expr())
        return parts[0] if len(parts) == 1 else And(parts)

    def _not_expr(self) -> Expr:
        if self._peek().is_keyword("NOT"):
            self._advance()
            return Not(self._not_expr())
        return self._primary()

    def _primary(self) -> Expr:
        token = self._peek()
        if token.is_keyword("EXISTS", "EXISTS_AT_LEAST", "EXISTS_EXACTLY",
                            "FOR_ALL"):
            return self._quantified()
        if token.is_op("("):
            self._advance()
            inner = self._qual()
            self._expect_op(")")
            return inner
        return self._comparison()

    def _quantified(self) -> Quantified:
        word = self._advance().value
        count: int | None = None
        if word == "EXISTS":
            quantifier = "exists"
        elif word == "FOR_ALL":
            quantifier = "all"
        else:
            quantifier = "at_least" if word == "EXISTS_AT_LEAST" else "exactly"
            self._expect_op("(")
            count = self._expect_int()
            self._expect_op(")")
        label = self._expect_ident()
        self._expect_op(":")
        condition = self._or_expr()
        return Quantified(quantifier, count, label, condition)

    def _comparison(self) -> Expr:
        left = self._operand()
        token = self._peek()
        if not token.is_op("=", "!=", "<", "<=", ">", ">="):
            raise self._error("expected a comparison operator")
        op = self._advance().value
        right = self._operand()
        return Comparison(op, left, right)

    def _operand(self) -> Expr:
        parameter = self._maybe_parameter()
        if parameter is not None:
            return parameter
        token = self._peek()
        if token.is_keyword("EMPTY"):
            self._advance()
            return EmptyLiteral()
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None)
        if token.is_keyword("REF"):
            return self._ref_lookup()
        if token.kind == "INT":
            return Literal(int(self._advance().value))
        if token.kind == "FLOAT":
            return Literal(float(self._advance().value))
        if token.kind == "STRING":
            return Literal(self._advance().value)
        if token.kind == "IDENT":
            return self._path()
        raise self._error("expected a value or attribute path")

    def _path(self) -> Path:
        parts = [self._expect_ident()]
        level: int | None = None
        if self._peek().is_op("(") and self._peek(1).kind == "INT" and \
                self._peek(2).is_op(")"):
            self._advance()
            level = self._expect_int()
            self._advance()
        while self._peek().is_op(".") and self._peek(1).kind == "IDENT":
            self._advance()
            parts.append(self._expect_ident())
        return Path(tuple(parts), level=level)

    def _ref_lookup(self) -> RefLookup:
        self._expect_keyword("REF")
        type_name = self._expect_ident()
        self._expect_op("(")
        key: list[Any] = [self._literal_value()]
        while self._peek().is_op(","):
            self._advance()
            key.append(self._literal_value())
        self._expect_op(")")
        return RefLookup(type_name, tuple(key))

    def _literal_value(self) -> Any:
        parameter = self._maybe_parameter()
        if parameter is not None:
            # REF keys (and other literal positions) may be placeholders;
            # binding substitutes the concrete value before execution.
            return parameter
        token = self._peek()
        if token.kind == "INT":
            return int(self._advance().value)
        if token.kind == "FLOAT":
            return float(self._advance().value)
        if token.kind == "STRING":
            return self._advance().value
        if token.is_keyword("TRUE"):
            self._advance()
            return True
        if token.is_keyword("FALSE"):
            self._advance()
            return False
        if token.is_keyword("NULL"):
            self._advance()
            return None
        raise self._error("expected a literal value")

    # -- DDL -----------------------------------------------------------------------------------------

    def _create(self) -> Statement:
        self._expect_keyword("CREATE")
        self._expect_keyword("ATOM_TYPE")
        name = self._expect_ident()
        self._expect_op("(")
        attributes: list[tuple[str, AttrType]] = []
        while True:
            names = [self._expect_ident()]
            # Grouped names share one type: "x, y, z : REAL".
            while self._grouped_name_follows():
                self._advance()
                names.append(self._expect_ident())
            self._expect_op(":")
            attr_type = self._type()
            for attr_name in names:
                attributes.append((attr_name, attr_type))
            if self._peek().is_op(","):
                self._advance()
                continue
            break
        self._expect_op(")")
        keys: tuple[str, ...] = ()
        if self._peek().is_keyword("KEYS_ARE"):
            self._advance()
            self._expect_op("(")
            key_list = [self._expect_ident()]
            while self._peek().is_op(","):
                self._advance()
                key_list.append(self._expect_ident())
            self._expect_op(")")
            keys = tuple(key_list)
        return CreateAtomType(name, attributes, keys)

    def _type(self) -> AttrType:
        token = self._peek()
        if token.is_keyword("IDENTIFIER"):
            self._advance()
            return IDENTIFIER
        if token.is_keyword("INTEGER"):
            self._advance()
            return INTEGER
        if token.is_keyword("REAL"):
            self._advance()
            return REAL
        if token.is_keyword("BOOLEAN"):
            self._advance()
            return BOOLEAN
        if token.is_keyword("BYTE_VAR"):
            self._advance()
            return BYTE_VAR
        if token.is_keyword("CHAR_VAR"):
            self._advance()
            if self._peek().is_op("("):
                self._advance()
                length = self._expect_int()
                self._expect_op(")")
                return CharVarType(max_length=length)
            return CHAR_VAR
        if token.is_keyword("HULL_DIM"):
            # HULL_DIM(n): an n-dimensional bounding hull — two corner
            # points, i.e. 2n REAL values (Fig. 2.3 uses HULL_DIM(3)).
            self._advance()
            self._expect_op("(")
            dims = self._expect_int()
            self._expect_op(")")
            return ArrayType(REAL, 2 * dims)
        if token.is_keyword("REF_TO"):
            self._advance()
            self._expect_op("(")
            target_type = self._expect_ident()
            self._expect_op(".")
            target_attr = self._expect_ident()
            self._expect_op(")")
            return ReferenceType(target_type, target_attr)
        if token.is_keyword("SET_OF"):
            self._advance()
            self._expect_op("(")
            element = self._type()
            self._expect_op(")")
            min_card, max_card = 0, None
            if self._peek().is_op("(") and (
                self._peek(1).kind == "INT"
            ):
                self._advance()
                min_card = self._expect_int()
                self._expect_op(",")
                if self._peek().is_keyword("VAR"):
                    self._advance()
                    max_card = None
                else:
                    max_card = self._expect_int()
                self._expect_op(")")
            return SetType(element, min_card, max_card)
        if token.is_keyword("LIST_OF"):
            self._advance()
            self._expect_op("(")
            element = self._type()
            self._expect_op(")")
            return ListType(element)
        if token.is_keyword("ARRAY_OF"):
            self._advance()
            self._expect_op("(")
            element = self._type()
            self._expect_op(",")
            length = self._expect_int()
            self._expect_op(")")
            return ArrayType(element, length)
        if token.is_keyword("RECORD"):
            self._advance()
            fields: list[tuple[str, AttrType]] = []
            while not self._peek().is_keyword("END"):
                names = [self._expect_ident()]
                # Fig. 2.3 groups record fields: "x_coord, y_coord,
                # z_coord : REAL".
                while self._grouped_name_follows():
                    self._advance()
                    names.append(self._expect_ident())
                self._expect_op(":")
                field_type = self._type()
                for field_name in names:
                    fields.append((field_name, field_type))
                if self._peek().is_op(","):
                    self._advance()
            self._expect_keyword("END")
            return RecordType(tuple(fields))
        raise self._error("expected an attribute type")

    def _grouped_name_follows(self) -> bool:
        """True when ", ident" continues a grouped name list (the ident is
        followed by another ',' or the ':' of the shared type)."""
        return (self._peek().is_op(",") and self._peek(1).kind == "IDENT"
                and (self._peek(2).is_op(":") or self._peek(2).is_op(",")))

    def _drop(self) -> Statement:
        self._expect_keyword("DROP")
        token = self._peek()
        if token.is_keyword("ATOM_TYPE"):
            self._advance()
            return DropAtomType(self._expect_ident())
        if token.is_keyword("MOLECULE_TYPE"):
            self._advance()
            return DropMoleculeType(self._expect_ident())
        if token.is_keyword("MOLECULE"):
            self._advance()
            self._expect_keyword("TYPE")
            return DropMoleculeType(self._expect_ident())
        raise self._error("expected ATOM_TYPE or MOLECULE TYPE")

    def _define_molecule_type(self) -> DefineMoleculeType:
        self._expect_keyword("DEFINE")
        token = self._peek()
        if token.is_keyword("MOLECULE_TYPE"):
            self._advance()
        else:
            self._expect_keyword("MOLECULE")
            self._expect_keyword("TYPE")
        name = self._expect_ident()
        self._expect_keyword("FROM")
        structure = self._structure()
        return DefineMoleculeType(name, structure)

    # -- DML -----------------------------------------------------------------------------------------

    def _assignments(self) -> list[tuple[str, Expr | list[Expr]]]:
        assignments: list[tuple[str, Expr | list[Expr]]] = []
        while True:
            attr = self._expect_ident()
            self._expect_op("=")
            assignments.append((attr, self._value_expr()))
            if self._peek().is_op(","):
                self._advance()
                continue
            break
        return assignments

    def _value_expr(self) -> Expr | list[Expr]:
        token = self._peek()
        if token.is_op("["):
            self._advance()
            items: list[Expr] = []
            if not self._peek().is_op("]"):
                while True:
                    item = self._value_expr()
                    if isinstance(item, list):
                        raise self._error("nested lists are not supported")
                    items.append(item)
                    if self._peek().is_op(","):
                        self._advance()
                        continue
                    break
            self._expect_op("]")
            return items
        if token.is_op("{"):
            # record literal: {x_coord = 1.0, y_coord = 2.0}
            self._advance()
            record: dict[str, Any] = {}
            if not self._peek().is_op("}"):
                while True:
                    field_name = self._expect_ident()
                    self._expect_op("=")
                    value = self._value_expr()
                    if isinstance(value, list):
                        record[field_name] = [
                            v.value if isinstance(v, Literal) else v
                            for v in value
                        ]
                    elif isinstance(value, Literal):
                        record[field_name] = value.value
                    else:
                        raise self._error(
                            "record fields take literal values only"
                        )
                    if self._peek().is_op(","):
                        self._advance()
                        continue
                    break
            self._expect_op("}")
            return Literal(record)
        if token.is_keyword("EMPTY"):
            self._advance()
            return EmptyLiteral()
        if token.is_keyword("REF"):
            return self._ref_lookup()
        parameter = self._maybe_parameter()
        if parameter is not None:
            return parameter
        return Literal(self._literal_value())

    def _insert(self) -> InsertStatement:
        self._expect_keyword("INSERT")
        if self._peek().is_keyword("INTO"):
            self._advance()
        type_name = self._expect_ident()
        self._expect_op("(")
        assignments = self._assignments()
        self._expect_op(")")
        return InsertStatement(type_name, assignments)

    def _delete(self) -> DeleteStatement:
        self._expect_keyword("DELETE")
        labels: list[str] = []
        if self._peek().is_keyword("ALL"):
            self._advance()
        else:
            labels.append(self._expect_ident())
            while self._peek().is_op(","):
                self._advance()
                labels.append(self._expect_ident())
        self._expect_keyword("FROM")
        structure = self._structure()
        where = None
        if self._peek().is_keyword("WHERE"):
            self._advance()
            where = self._qual()
        return DeleteStatement(labels, structure, where)

    def _modify(self) -> ModifyStatement:
        self._expect_keyword("MODIFY")
        label = self._expect_ident()
        self._expect_keyword("SET")
        assignments = self._assignments()
        self._expect_keyword("FROM")
        structure = self._structure()
        where = None
        if self._peek().is_keyword("WHERE"):
            self._advance()
            where = self._qual()
        return ModifyStatement(label, assignments, structure, where)


def parse(text: str) -> Statement:
    """Parse one MQL statement."""
    return Parser(text).parse_statement()


def parse_script(text: str) -> list[Statement]:
    """Parse a ';'-separated MQL script."""
    return Parser(text).parse_script()
