"""Abstract syntax trees for MQL statements.

The node set covers the full language exemplified in the paper: DDL
(Fig. 2.3), queries with vertical/horizontal access, recursion, branching
structures, quantified qualification and qualified projection (Table 2.1),
and molecule DML (section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.mad.types import AttrType


# ---------------------------------------------------------------------------
# FROM clause: molecule structures
# ---------------------------------------------------------------------------

@dataclass
class FromNode:
    """One node of the FROM-clause structure expression.

    ``name`` is an atom type name (or, at the root, possibly a predefined
    molecule type name, resolved during validation).  ``via_attr`` is the
    explicit reference attribute when the association is ambiguous, as in
    ``solid.sub-solid``; ``recursive`` marks ``(RECURSIVE)`` nodes.
    """

    name: str
    via_attr: str | None = None
    children: list["FromNode"] = field(default_factory=list)
    recursive: bool = False

    def render(self) -> str:
        out = self.name if self.via_attr is None else \
            f"{self.name}.{self.via_attr}"
        if self.recursive:
            out += " (RECURSIVE)"
        if len(self.children) == 1:
            out += "-" + self.children[0].render()
        elif self.children:
            out += "-(" + ", ".join(c.render() for c in self.children) + ")"
        return out


# ---------------------------------------------------------------------------
# WHERE clause: qualification expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class of qualification expressions."""


@dataclass
class Literal(Expr):
    value: Any

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


@dataclass
class EmptyLiteral(Expr):
    """The EMPTY keyword: an empty reference/repeating-group value."""


@dataclass(frozen=True)
class Parameter(Expr):
    """A placeholder of a prepared statement: ``?`` or ``:name``.

    Positional placeholders carry their 0-based ``index`` (assigned in
    textual order across the whole statement, subqueries included);
    named placeholders carry ``name``.  Parameters are legal wherever a
    literal value is — comparison operands, DML assignment values, REF
    lookup keys, and the LIMIT/OFFSET window — and are substituted at
    *bind time* (:mod:`repro.data.prepared`), after planning.
    """

    index: int | None = None
    name: str | None = None

    def render(self) -> str:
        """The placeholder as it appears in source (``?n`` numbered for
        positional, ``:name`` for named)."""
        if self.name is not None:
            return f":{self.name}"
        return f"?{(self.index or 0) + 1}"

    def __repr__(self) -> str:
        return self.render()


@dataclass
class Path(Expr):
    """An attribute path: ``label.attr.field...`` or bare ``attr``.

    ``level`` carries the recursion-level subscript of seed qualifications
    such as ``piece_list (0).solid_no`` (None when absent).
    """

    parts: tuple[str, ...]
    level: int | None = None

    def __repr__(self) -> str:
        head = ".".join(self.parts)
        return f"Path({head}@{self.level})" if self.level is not None \
            else f"Path({head})"


@dataclass
class Comparison(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class And(Expr):
    parts: list[Expr]


@dataclass
class Or(Expr):
    parts: list[Expr]


@dataclass
class Not(Expr):
    inner: Expr


@dataclass
class Quantified(Expr):
    """EXISTS / EXISTS_AT_LEAST (n) / EXISTS_EXACTLY (n) / FOR_ALL over the
    component molecules with a given label: ``EXISTS_AT_LEAST (2) edge:
    edge.length > 1.0E2``."""

    quantifier: str                 # 'exists', 'at_least', 'exactly', 'all'
    count: int | None
    label: str
    condition: Expr


@dataclass
class RefLookup(Expr):
    """``REF type (key...)``: the surrogate of the atom with this key."""

    type_name: str
    key: tuple[Any, ...]


# ---------------------------------------------------------------------------
# SELECT clause: projections
# ---------------------------------------------------------------------------

@dataclass
class ProjectionItem:
    """One item of the projection list.

    * ``Path`` with one part: keep a whole component subtree (by label) or
      a root attribute — resolved during validation.
    * ``Path`` with two parts: keep one attribute of one label.
    * ``subquery``: qualified projection — ``face := SELECT ... FROM face
      WHERE ...`` filters and projects the components with that label.
    """

    path: Path | None = None
    label: str | None = None
    subquery: "SelectStatement | None" = None


@dataclass
class Projection:
    """Either ALL or a list of projection items."""

    select_all: bool = False
    items: list[ProjectionItem] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Statement:
    """Base class of all MQL statements."""


@dataclass
class OrderItem:
    """One ORDER BY item: a root-attribute path plus direction."""

    path: Path
    descending: bool = False


@dataclass
class SelectStatement(Statement):
    projection: Projection
    from_clause: FromNode
    where: Expr | None = None
    #: Result ordering over root attributes (the 'sorting' functional
    #: descriptor of query preparation, paper 3.1).
    order_by: list[OrderItem] = field(default_factory=list)
    #: LIMIT n — deliver at most n molecules (None: unbounded).  A
    #: :class:`Parameter` defers the bound to execute time.
    limit: "int | Parameter | None" = None
    #: OFFSET m — skip the first m molecules of the (ordered) stream.
    offset: "int | Parameter" = 0


@dataclass
class CreateAtomType(Statement):
    name: str
    attributes: list[tuple[str, AttrType]]
    keys: tuple[str, ...] = ()


@dataclass
class DropAtomType(Statement):
    name: str


@dataclass
class DefineMoleculeType(Statement):
    name: str
    structure: FromNode


@dataclass
class DropMoleculeType(Statement):
    name: str


@dataclass
class InsertStatement(Statement):
    """INSERT <atom type> (attr = value, ...).

    Values are literal expressions, bracketed lists, or REF lookups; the
    executor resolves them to stored attribute values.
    """

    type_name: str
    assignments: list[tuple[str, Expr | list[Expr]]]


@dataclass
class DeleteStatement(Statement):
    """DELETE <ALL | label list> FROM <structure> WHERE <qual>.

    ALL removes whole molecules; a label list removes just those component
    atoms, automatically disconnecting them from the surrounding molecules
    (paper, 2.2).
    """

    labels: list[str]              # empty list means ALL
    from_clause: FromNode
    where: Expr | None = None


@dataclass
class ModifyStatement(Statement):
    """MODIFY <label> SET attr = value, ... FROM <structure> WHERE <qual>.

    Sets attributes on the qualifying atoms with the given label; reference
    assignments connect/disconnect components with automatic back-reference
    maintenance.
    """

    label: str
    assignments: list[tuple[str, Expr | list[Expr]]]
    from_clause: FromNode
    where: Expr | None = None
