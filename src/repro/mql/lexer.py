"""Lexer for MQL (Molecule Query Language) and LDL.

MQL follows the example of SQL [X3H286] and its derivates (paper, 2.2).
The token set covers the constructs exemplified in the paper: Fig. 2.3's
DDL, Table 2.1's queries (including ``EXISTS_AT_LEAST (2) edge:``,
``piece_list (0).solid_no``, ``:=`` qualified projection, scientific float
literals such as ``1.9E4``), and the DML statements of section 2.2.

Beyond the paper, the lexer carries the ``?`` operator for positional
parameter placeholders of prepared statements; named placeholders
(``:name``) reuse the ``:`` operator followed by an identifier and are
resolved by the parser in value positions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexerError

#: Multi-character operators, longest first.
_OPERATORS = [":=", "<=", ">=", "!=", "<>", "=", "<", ">", "(", ")", ",",
              ":", ".", "-", "{", "}", "[", "]", ";", "*", "?"]

#: Reserved words (case-insensitive); everything else is an identifier.
KEYWORDS = {
    "SELECT", "FROM", "WHERE", "ALL", "AND", "OR", "NOT",
    "EXISTS", "EXISTS_AT_LEAST", "EXISTS_EXACTLY", "FOR_ALL",
    "EMPTY", "TRUE", "FALSE", "NULL",
    "CREATE", "DROP", "DEFINE", "ATOM_TYPE", "MOLECULE_TYPE",
    "MOLECULE", "TYPE", "KEYS_ARE", "RECURSIVE",
    "INSERT", "DELETE", "MODIFY", "SET", "INTO", "REF",
    "IDENTIFIER", "INTEGER", "REAL", "BOOLEAN", "CHAR_VAR", "BYTE_VAR",
    "REF_TO", "SET_OF", "LIST_OF", "ARRAY_OF", "RECORD", "END", "VAR",
    "HULL_DIM",
    # LDL keywords
    "ACCESS", "PATH", "SORT", "ORDER", "PARTITION", "ATOM_CLUSTER",
    "ON", "USING", "BTREE", "GRID",
    # result ordering (the data system's 'sorting' functional descriptor)
    "BY", "ASC", "DESC",
    # result windowing (early termination of the streaming pipeline)
    "LIMIT", "OFFSET",
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str        # 'KEYWORD', 'IDENT', 'INT', 'FLOAT', 'STRING', 'OP', 'EOF'
    value: str
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        return self.kind == "KEYWORD" and self.value in words

    def is_op(self, *ops: str) -> bool:
        return self.kind == "OP" and self.value in ops

    def __repr__(self) -> str:
        return f"{self.kind}:{self.value}"


def tokenize(text: str) -> list[Token]:
    """Split MQL/LDL source text into tokens (comments are ``(* ... *)``)."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    col = 1
    length = len(text)

    def advance(n: int) -> None:
        nonlocal pos, line, col
        for _ in range(n):
            if pos < length and text[pos] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            pos += 1

    while pos < length:
        ch = text[pos]
        # whitespace
        if ch in " \t\r\n":
            advance(1)
            continue
        # comments: (* ... *) as in the paper's examples
        if text.startswith("(*", pos):
            end = text.find("*)", pos + 2)
            if end == -1:
                raise LexerError("unterminated comment", line, col)
            advance(end + 2 - pos)
            continue
        # string literal
        if ch in ("'", '"'):
            quote = ch
            end = pos + 1
            while end < length and text[end] != quote:
                if text[end] == "\n":
                    raise LexerError("unterminated string literal", line, col)
                end += 1
            if end >= length:
                raise LexerError("unterminated string literal", line, col)
            tokens.append(Token("STRING", text[pos + 1:end], line, col))
            advance(end + 1 - pos)
            continue
        # number: INT or FLOAT with scientific notation (1.9E4, 1.0E2)
        if ch.isdigit():
            end = pos
            is_float = False
            while end < length and text[end].isdigit():
                end += 1
            if end < length and text[end] == "." and \
                    end + 1 < length and text[end + 1].isdigit():
                is_float = True
                end += 1
                while end < length and text[end].isdigit():
                    end += 1
            if end < length and text[end] in "eE":
                probe = end + 1
                if probe < length and text[probe] in "+-":
                    probe += 1
                if probe < length and text[probe].isdigit():
                    is_float = True
                    end = probe
                    while end < length and text[end].isdigit():
                        end += 1
            kind = "FLOAT" if is_float else "INT"
            tokens.append(Token(kind, text[pos:end], line, col))
            advance(end - pos)
            continue
        # identifier / keyword
        if ch.isalpha() or ch == "_":
            end = pos
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[pos:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, line, col))
            else:
                tokens.append(Token("IDENT", word, line, col))
            advance(end - pos)
            continue
        # operators
        for op in _OPERATORS:
            if text.startswith(op, pos):
                value = "!=" if op == "<>" else op
                tokens.append(Token("OP", value, line, col))
                advance(len(op))
                break
        else:
            raise LexerError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token("EOF", "", line, col))
    return tokens
