"""Copy-on-write atom versions: snapshot reads without read locks.

A read that runs against a *consistent version* of the database needs
no type-level S lock at all — there is more than one admissible
serialisation, and pinning a reader to the state as of its open is one
of them.  This module supplies the two halves of that idea:

:class:`AtomVersionStore`
    The copy-on-write side.  An **epoch counter** (the atom-version
    clock, advanced by :meth:`publish` whenever a checkin, DML
    statement, or DDL commits) stamps every pre-image: before a writer
    overwrites or deletes an atom while any snapshot is pinned, the
    atom's *old* values are preserved under the current epoch.  A
    reader pinned at epoch *R* reconstructs the state as of *R* by
    taking, per atom, the preserved pre-image with the smallest stamp
    ``>= R`` — or the live record if none exists (the atom never
    changed since).  Inserts preserve a ``None`` marker ("did not exist
    at this epoch"), deletes preserve the final values ("still existed").
    Only the *first* write per atom and epoch window records a
    pre-image (the oldest one is the one every reader at that epoch
    wants), nothing is recorded while no snapshot is pinned, and
    unpinning garbage-collects every version no remaining reader can
    select.

:class:`SnapshotView`
    The read facade.  It mirrors the :class:`~repro.access.atoms
    .AtomManager` read surface (``get`` / ``exists`` /
    ``atoms_of_type`` / ``find_by_key`` / ``count`` / structure
    inspection), overlaying the version store on the live manager:
    atoms created after the epoch are invisible, atoms deleted after it
    are resurrected from their pre-images, atoms modified after it read
    their epoch values.  Ordered scans ask :meth:`SnapshotView.overlay`
    for the set of *displaced* atoms — every atom with a pre-image at
    this epoch — skip them in the live index walk, and merge their
    epoch values back in at the correct sorted position.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import AtomNotFoundError
from repro.mad.types import Surrogate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.access.atoms import AtomManager


class AtomVersionStore:
    """Epoch clock + pinned-snapshot refcounts + pre-image versions."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        #: The published atom-version epoch (the snapshot clock).
        self.epoch = 0
        #: epoch -> number of snapshots pinned at it.
        self._pins: dict[int, int] = {}
        #: surrogate -> [(stamp, values-or-None)] with strictly
        #: increasing stamps; ``None`` values mean "did not exist".
        self._pre_images: dict[Surrogate, list[tuple[int,
                                                     dict[str, Any] | None]]] = {}
        self.versions_preserved = 0
        #: Atom types written since the last :meth:`publish` — drained
        #: into the epoch delta handed to listeners at the next commit
        #: boundary.  Runtime state only (not checkpointed).
        self._touched: set[str] = set()
        #: ``callback(epoch, frozenset(touched_types))`` hooks invoked
        #: after each publish, *outside* the store mutex.  Callbacks run
        #: on the committing thread (which typically still holds the
        #: engine write lock) and therefore must never acquire engine
        #: locks themselves — cheap bookkeeping and queue handoffs only.
        self._listeners: list[Any] = []

    # The store rides inside the (picklable) AtomManager; only the
    # clock survives a checkpoint — pins and pre-images are runtime
    # state of the serving process.
    def __getstate__(self) -> dict[str, Any]:
        return {"epoch": self.epoch}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__()
        self.epoch = state.get("epoch", 0)

    # -- the epoch clock ------------------------------------------------------

    def publish(self) -> int:
        """Advance the epoch (a commit boundary); returns the new epoch.

        The set of atom types touched since the previous publish is
        drained into a **typed epoch delta** ``(epoch, frozenset)`` and
        handed to every registered listener — the invalidation hook live
        queries ride on.  Listeners fire outside the mutex, on the
        committing thread.
        """
        with self._mutex:
            self.epoch += 1
            epoch = self.epoch
            touched = frozenset(self._touched)
            self._touched.clear()
            listeners = list(self._listeners)
        for callback in listeners:
            callback(epoch, touched)
        return epoch

    def note_touched(self, type_name: str) -> None:
        """Record that an atom of ``type_name`` was written this epoch
        window (insert / modify / delete / backref maintenance)."""
        with self._mutex:
            self._touched.add(type_name)

    def add_listener(self, callback: Any) -> None:
        """Register a ``callback(epoch, touched_types)`` publish hook."""
        with self._mutex:
            if callback not in self._listeners:
                self._listeners.append(callback)

    def remove_listener(self, callback: Any) -> None:
        with self._mutex:
            try:
                self._listeners.remove(callback)
            except ValueError:
                pass

    def pin(self) -> int:
        """Pin a snapshot at the current epoch; returns that epoch."""
        with self._mutex:
            self._pins[self.epoch] = self._pins.get(self.epoch, 0) + 1
            return self.epoch

    def unpin(self, epoch: int) -> None:
        """Release one pin; versions nobody can select anymore are GCed."""
        with self._mutex:
            count = self._pins.get(epoch, 0) - 1
            if count > 0:
                self._pins[epoch] = count
            else:
                self._pins.pop(epoch, None)
            self._gc_locked()

    @property
    def pinned(self) -> bool:
        return bool(self._pins)

    def _gc_locked(self) -> None:
        if not self._pins:
            self._pre_images.clear()
            return
        floor = min(self._pins)
        dead = []
        for surrogate, versions in self._pre_images.items():
            keep = [(s, v) for s, v in versions if s >= floor]
            if keep:
                self._pre_images[surrogate] = keep
            else:
                dead.append(surrogate)
        for surrogate in dead:
            del self._pre_images[surrogate]

    # -- copy-on-write --------------------------------------------------------

    def preserve(self, surrogate: Surrogate,
                 values: dict[str, Any] | None) -> None:
        """Record an atom's pre-image before a write (``None``: the atom
        did not exist).  A no-op while no snapshot is pinned; only the
        first write per atom and epoch window is preserved."""
        if not self._pins:   # fast path — writers are serialised anyway
            return
        with self._mutex:
            if not self._pins:
                return
            stamp = self.epoch
            versions = self._pre_images.setdefault(surrogate, [])
            if versions and versions[-1][0] >= stamp:
                return   # keep the oldest pre-image of this window
            versions.append(
                (stamp, None if values is None else dict(values)))
            self.versions_preserved += 1

    # -- reader side ----------------------------------------------------------

    def version_at(self, surrogate: Surrogate,
                   epoch: int) -> tuple[bool, dict[str, Any] | None]:
        """``(True, values-or-None)`` when the atom changed since
        ``epoch`` (its pre-image applies), ``(False, None)`` when the
        live record is current for that epoch."""
        versions = self._pre_images.get(surrogate)
        if not versions:
            return (False, None)
        with self._mutex:
            for stamp, values in self._pre_images.get(surrogate, ()):
                if stamp >= epoch:
                    return (True, values)
        return (False, None)

    def changed_since(self, epoch: int) -> dict[Surrogate,
                                                dict[str, Any] | None]:
        """All displaced atoms of a snapshot: surrogate -> epoch values
        (``None``: did not exist at the epoch)."""
        with self._mutex:
            out: dict[Surrogate, dict[str, Any] | None] = {}
            for surrogate, versions in self._pre_images.items():
                for stamp, values in versions:
                    if stamp >= epoch:
                        out[surrogate] = values
                        break
            return out

    def __repr__(self) -> str:
        return (f"AtomVersionStore(epoch={self.epoch}, "
                f"pins={sum(self._pins.values())}, "
                f"versions={sum(len(v) for v in self._pre_images.values())})")


class SnapshotView:
    """An AtomManager-shaped read facade pinned to one epoch."""

    #: Scans check this flag to switch into snapshot mode (skip record
    #: copies that may be fresher than the epoch, merge displaced atoms).
    is_snapshot = True

    def __init__(self, manager: "AtomManager", epoch: int) -> None:
        self._manager = manager
        self._store = manager.version_store()
        self.epoch = epoch
        self.schema = manager.schema
        self.counters = manager.counters
        self._released = False

    def release(self) -> None:
        """Drop this snapshot's pin (idempotent)."""
        if not self._released:
            self._released = True
            self._store.unpin(self.epoch)

    def __enter__(self) -> "SnapshotView":
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> None:
        self.release()

    # -- the AtomManager read surface -----------------------------------------

    def exists(self, surrogate: Surrogate) -> bool:
        changed, values = self._store.version_at(surrogate, self.epoch)
        if changed:
            return values is not None
        return self._manager.exists(surrogate)

    def get(self, surrogate: Surrogate,
            attrs: list[str] | None = None) -> dict[str, Any]:
        changed, values = self._store.version_at(surrogate, self.epoch)
        if not changed:
            return self._manager.get(surrogate, attrs)
        if values is None:
            raise AtomNotFoundError(
                f"no atom with logical address {surrogate} at epoch "
                f"{self.epoch}"
            )
        self.counters.bump("atoms_read")
        self.counters.bump("snapshot_version_reads")
        if attrs is None:
            return dict(values)
        atom_type = self.schema.atom_type(surrogate.atom_type)
        out: dict[str, Any] = {atom_type.identifier_attr: surrogate}
        for attr in attrs:
            out[attr] = values.get(attr)
        return out

    def atoms_of_type(self, type_name: str
                      ) -> Iterator[tuple[Surrogate, dict[str, Any]]]:
        """All atoms of a type *as of the epoch*: post-epoch creations
        are invisible, post-epoch deletions are resurrected, modified
        atoms read their epoch values."""
        seen: set[Surrogate] = set()
        for surrogate, live_values in self._manager.atoms_of_type(type_name):
            changed, values = self._store.version_at(surrogate, self.epoch)
            if changed and values is None:
                continue   # created after the epoch
            seen.add(surrogate)
            yield surrogate, (dict(values) if changed else live_values)
        # Resurrect atoms deleted after the epoch (skipping everything
        # the live walk already delivered — an atom deleted *behind*
        # the walk would otherwise appear twice).
        for surrogate, values in self._store.changed_since(self.epoch).items():
            if surrogate.atom_type != type_name or values is None:
                continue
            if surrogate in seen or self._manager.exists(surrogate):
                continue
            self.counters.bump("snapshot_version_reads")
            yield surrogate, dict(values)

    def count(self, type_name: str) -> int:
        return sum(1 for _ in self.atoms_of_type(type_name))

    def find_by_key(self, type_name: str,
                    key: tuple | Any) -> Surrogate | None:
        """Key lookup as of the epoch: a live holder whose key *moved*
        after the epoch does not count, and a displaced atom that held
        the key at the epoch does."""
        if not isinstance(key, tuple):
            key = (key,)
        atom_type = self.schema.atom_type(type_name)
        live = self._manager.find_by_key(type_name, key)
        if live is not None:
            changed, values = self._store.version_at(live, self.epoch)
            if not changed:
                return live
            if values is not None and self._key_of(atom_type, values) == key:
                return live
        # The epoch-time holder may have been displaced (key moved or
        # atom deleted after the epoch) — find it in the overlay.
        for surrogate, values in self._store.changed_since(self.epoch).items():
            if surrogate.atom_type != type_name or values is None:
                continue
            if self._key_of(atom_type, values) == key:
                return surrogate
        return None

    def _key_of(self, atom_type, values: dict[str, Any]) -> tuple | None:
        if not atom_type.keys:
            return None
        return tuple(values.get(attr) for attr in atom_type.keys)

    # -- displaced atoms (ordered-scan support) -------------------------------

    def overlay(self, type_name: str) -> dict[Surrogate,
                                              dict[str, Any] | None]:
        """Every displaced atom of a type: surrogate -> epoch values
        (``None``: invisible at this epoch).  Ordered scans skip these
        in the live index walk and merge the non-``None`` ones back in
        at the position their epoch values sort to."""
        return {
            surrogate: values
            for surrogate, values
            in self._store.changed_since(self.epoch).items()
            if surrogate.atom_type == type_name
        }

    # -- structure inspection (live: DDL under a pinned snapshot is
    # outside the snapshot contract, like most MVCC systems) ------------------

    def structure(self, name: str):
        return self._manager.structure(name)

    def structures_for(self, atom_type: str, kind: str | None = None):
        return self._manager.structures_for(atom_type, kind)

    def structure_names(self) -> list[str]:
        return self._manager.structure_names()

    def __repr__(self) -> str:
        return f"SnapshotView(epoch={self.epoch})"
