"""The access system of PRIMA (paper, section 3.2).

Atom-oriented interface with logical addressing, automatic back-reference
maintenance, tuning structures (access paths, sort orders, partitions,
atom clusters), deferred update, and five scan types.
"""

from repro.access.access_path import AccessPath
from repro.access.address import (
    BASE_STRUCTURE,
    AddressTable,
    Placement,
    RecordId,
    SurrogateGenerator,
)
from repro.access.atoms import AtomManager
from repro.access.btree import BStarTree, Key, make_key
from repro.access.cluster import AtomCluster
from repro.access.container import RecordContainer
from repro.access.deferred import DeferredUpdateManager
from repro.access.encoding import decode_atom, encode_atom, encoded_size
from repro.access.multidim import GridFile, KeyCondition
from repro.access.partition import Partition
from repro.access.scans import (
    AccessPathScan,
    AtomClusterScan,
    AtomClusterTypeScan,
    AtomTypeScan,
    ClusterSearchArgument,
    Scan,
    SearchArgument,
    SortScan,
)
from repro.access.sort_order import SortOrder
from repro.access.structure import StorageStructure
from repro.access.system import AccessSystem

__all__ = [
    "AccessPath",
    "AccessPathScan",
    "AccessSystem",
    "AddressTable",
    "AtomCluster",
    "AtomClusterScan",
    "AtomClusterTypeScan",
    "AtomManager",
    "AtomTypeScan",
    "BASE_STRUCTURE",
    "BStarTree",
    "ClusterSearchArgument",
    "DeferredUpdateManager",
    "GridFile",
    "Key",
    "KeyCondition",
    "Partition",
    "Placement",
    "RecordContainer",
    "RecordId",
    "Scan",
    "SearchArgument",
    "SortOrder",
    "SortScan",
    "StorageStructure",
    "SurrogateGenerator",
    "decode_atom",
    "encode_atom",
    "encoded_size",
    "make_key",
]
