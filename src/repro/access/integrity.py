"""Database-wide structural-integrity verification.

The access system maintains back-references *operationally* (every write
adjusts the paired attribute).  This module provides the complementary
*verification* pass: it checks that the stored database actually satisfies

* **symmetry** — a references b over an association iff b back-references a
  (the MAD invariant, paper 2.1/3.2),
* **existence** — every stored reference points to a live atom,
* **cardinality** — every SET attribute respects its full (min, max)
  restriction (minimums are deferred at write time to allow incremental
  molecule construction).

Tests and the facade's ``verify_integrity()`` use it; property-based tests
assert that no sequence of DML operations can produce violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.mad.types import SetType, Surrogate, reference_of, reference_values

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.access.atoms import AtomManager


@dataclass(frozen=True)
class Violation:
    """One integrity violation found by the verifier."""

    kind: str            # 'dangling', 'asymmetric', 'cardinality'
    atom: Surrogate
    attribute: str
    detail: str

    def __repr__(self) -> str:
        return f"[{self.kind}] {self.atom}.{self.attribute}: {self.detail}"


def verify_database(manager: "AtomManager") -> list[Violation]:
    """Run all checks over every atom; returns the violations found."""
    violations: list[Violation] = []
    schema = manager.schema
    for type_name in schema.atom_type_names():
        atom_type = schema.atom_type(type_name)
        for surrogate, values in manager.atoms_of_type(type_name):
            for attr_name in atom_type.reference_attrs():
                attr_type = atom_type.attr(attr_name)
                ref = reference_of(attr_type)
                assert ref is not None
                targets = reference_values(attr_type, values.get(attr_name))
                for target in targets:
                    if not manager.exists(target):
                        violations.append(Violation(
                            "dangling", surrogate, attr_name,
                            f"references deleted atom {target}",
                        ))
                        continue
                    partner = manager.get(target)
                    partner_attr_type = schema.atom_type(ref.target_type) \
                        .attr(ref.target_attr)
                    back = reference_values(
                        partner_attr_type, partner.get(ref.target_attr)
                    )
                    if surrogate not in back:
                        violations.append(Violation(
                            "asymmetric", surrogate, attr_name,
                            f"{target}.{ref.target_attr} lacks the "
                            f"back-reference",
                        ))
                if isinstance(attr_type, SetType):
                    count = len(targets)
                    if count < attr_type.min_card or (
                        attr_type.max_card is not None
                        and count > attr_type.max_card
                    ):
                        upper = attr_type.max_card
                        upper_text = "VAR" if upper is None else str(upper)
                        violations.append(Violation(
                            "cardinality", surrogate, attr_name,
                            f"{count} elements outside "
                            f"({attr_type.min_card},{upper_text})",
                        ))
    return violations


def check_symmetry_only(manager: "AtomManager") -> list[Violation]:
    """Just the symmetry/dangling checks (skip cardinality minimums)."""
    return [v for v in verify_database(manager) if v.kind != "cardinality"]
