"""Scans: navigational access with NEXT/PRIOR (paper, 3.2).

Effective processing of data system operations critically depends on
powerful navigational capabilities: a *scan* controls a dynamically defined
set of atoms, holds a current position in the set, and successively
delivers single atoms (NEXT/PRIOR).  Five scan types exist:

===========================  =====================================================
atom-type scan               all atoms of one type, system-defined order
sort scan                    all atoms of one type in a user-defined sort order,
                             with start/stop conditions (uses a redundant sort
                             order when available, else sorts explicitly)
access-path scan             entries of an access path, start/stop conditions and
                             direction per key
atom-cluster-type scan       all characteristic atoms of an atom-cluster type
                             (search arguments decidable in a single pass through
                             one cluster — the single-scan property [DPS86])
atom-cluster scan            all atoms of one type within a single atom cluster
===========================  =====================================================

Every scan may carry a *simple search argument*: a conjunction of
attribute-operator-value terms decidable on each atom in isolation.

Position maintenance: a scan snapshots the membership order when opened;
atoms deleted after opening are skipped at delivery time, so NEXT/PRIOR
remain well-defined under concurrent modification of the set.

Scans opened with ``lazy=True`` derive their positions *incrementally*
instead of materialising the snapshot at open time: the underlying
structure (B*-tree walk, sort-order list, access-path range) is advanced
only as far as delivery demands, so a bounded consumer (LIMIT, TopK's
tightening heap bound) leaves the rest of the walk untouched.  Positions
already derived stay snapshotted — NEXT/PRIOR over the consumed prefix
behave exactly like the eager scan.  The execution pipeline opens its
root scans lazily; direct (interactive) scans default to eager, which
keeps the full snapshot-at-open contract under concurrent deletes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.access.access_path import AccessPath
from repro.access.btree import make_key
from repro.access.cluster import AtomCluster
from repro.access.multidim import KeyCondition
from repro.access.sort_order import SortOrder
from repro.errors import AccessError, ScanStateError
from repro.mad.types import Surrogate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.access.atoms import AtomManager

#: Comparison operators usable in simple search arguments.
_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a is not None and b is not None and make_key(a) < make_key(b),
    "<=": lambda a, b: a is not None and b is not None and make_key(a) <= make_key(b),
    ">": lambda a, b: a is not None and b is not None and make_key(b) < make_key(a),
    ">=": lambda a, b: a is not None and b is not None and make_key(b) <= make_key(a),
    "contains": lambda a, b: isinstance(a, list) and b in a,
    "empty": lambda a, b: not a,
    "not_empty": lambda a, b: bool(a),
}


def _merge_entries(live: Iterator[tuple[tuple, Surrogate]],
                   extra: list[tuple[Any, tuple, Surrogate]],
                   reverse: bool) -> Iterator[tuple[tuple, Surrogate]]:
    """Merge a live index walk with displaced snapshot entries.

    Both inputs are sorted by (key, surrogate) — key descending when
    ``reverse``, the surrogate tie-break ascending either way (the tie
    semantics every ordered backing agrees on).  ``extra`` items are
    ``(encoded key, raw key values, surrogate)``.
    """
    extra_iter = iter(extra)
    pending = next(extra_iter, None)

    def before(a_key: Any, a_sur: Surrogate,
               b_key: Any, b_sur: Surrogate) -> bool:
        if a_key != b_key:
            return a_key > b_key if reverse else a_key < b_key
        return a_sur < b_sur

    for key_values, surrogate in live:
        key = make_key(key_values)
        while pending is not None and \
                before(pending[0], pending[2], key, surrogate):
            yield pending[1], pending[2]
            pending = next(extra_iter, None)
        yield key_values, surrogate
    while pending is not None:
        yield pending[1], pending[2]
        pending = next(extra_iter, None)


class SearchArgument:
    """A conjunction of (attribute, operator, value) terms."""

    def __init__(self, *terms: tuple[str, str, Any]) -> None:
        for _attr, op, _value in terms:
            if op not in _OPS:
                raise AccessError(
                    f"unknown operator {op!r}; known: {sorted(_OPS)}"
                )
        self.terms = terms

    def matches(self, values: dict[str, Any]) -> bool:
        return all(
            _OPS[op](values.get(attr), value)
            for attr, op, value in self.terms
        )

    def __repr__(self) -> str:
        inner = " AND ".join(f"{a} {op} {v!r}" for a, op, v in self.terms)
        return f"SearchArgument({inner})"


class Scan:
    """Common NEXT/PRIOR machinery over a snapshot of positions.

    Every scan counts the rows it delivers (``rows_delivered`` plus the
    shared counters ``scan_rows_delivered`` and ``scan_rows:<Type>``) —
    the per-operator row/cost accounting the execution pipeline and the
    benchmarks report on.
    """

    def __init__(self, counters: Any = None, lazy: bool = False) -> None:
        self._positions: list[Any] | None = None
        self._stream: Iterator[Any] | None = None   # pending tail (lazy)
        self._cursor = -1          # index of the element delivered last
        self._closed = False
        self._lazy = lazy
        self._counters = counters
        #: Rows this scan has delivered over its lifetime.
        self.rows_delivered = 0

    def _count_delivery(self) -> None:
        self.rows_delivered += 1
        if self._counters is not None:
            self._counters.bump("scan_rows_delivered")
            self._counters.bump(f"scan_rows:{type(self).__name__}")

    # Subclasses provide the ordered snapshot and the delivery logic. ----------

    def _snapshot(self) -> list[Any]:
        raise NotImplementedError

    def _snapshot_iter(self) -> Iterator[Any]:
        """The ordered positions as a stream (default: the eager list)."""
        return iter(self._snapshot())

    def _deliver(self, position: Any) -> tuple[Surrogate, dict[str, Any]] | None:
        """Fetch the atom at ``position``; None when it vanished or fails
        the search argument."""
        raise NotImplementedError

    # -- the scan protocol ----------------------------------------------------------

    def _ensure_open(self) -> list[Any]:
        if self._closed:
            raise ScanStateError("scan is closed")
        if self._positions is None:
            if self._lazy:
                self._positions = []
                self._stream = self._snapshot_iter()
            else:
                self._positions = list(self._snapshot_iter())
            if self._counters is not None:
                self._counters.bump("scans_opened")
        return self._positions

    def _fill_to(self, index: int) -> bool:
        """Grow the position list to cover ``index`` (lazy scans pull from
        the pending stream); False when the set ends first."""
        assert self._positions is not None
        while len(self._positions) <= index:
            if self._stream is None:
                return False
            try:
                self._positions.append(next(self._stream))
            except StopIteration:
                self._stream = None
                return False
        return True

    def next(self) -> tuple[Surrogate, dict[str, Any]] | None:
        """Advance to and return the next qualifying atom (None at end)."""
        positions = self._ensure_open()
        cursor = self._cursor
        while self._fill_to(cursor + 1):
            cursor += 1
            result = self._deliver(positions[cursor])
            if result is not None:
                self._cursor = cursor
                self._count_delivery()
                return result
        self._cursor = len(positions)
        return None

    def prior(self) -> tuple[Surrogate, dict[str, Any]] | None:
        """Step back to and return the previous qualifying atom."""
        positions = self._ensure_open()
        cursor = min(self._cursor, len(positions))
        while cursor - 1 >= 0:
            cursor -= 1
            result = self._deliver(positions[cursor])
            if result is not None:
                self._cursor = cursor
                self._count_delivery()
                return result
        self._cursor = -1
        return None

    def rewind(self) -> None:
        """Reset the position before the first element (keeps the snapshot)."""
        self._ensure_open()
        self._cursor = -1

    def close(self) -> None:
        self._closed = True
        if self._stream is not None:
            generator_close = getattr(self._stream, "close", None)
            if generator_close is not None:
                generator_close()
            self._stream = None
        self._positions = None

    def __iter__(self) -> Iterator[tuple[Surrogate, dict[str, Any]]]:
        while True:
            item = self.next()
            if item is None:
                return
            yield item


class AtomTypeScan(Scan):
    """All atoms of one type in system-defined (physical) order.

    Corresponds to the relation scan of the RSS [As76].  ``attrs`` selects
    attributes ("only selected attributes"); the search argument restricts
    the result set.
    """

    def __init__(self, manager: "AtomManager", type_name: str,
                 search: SearchArgument | None = None,
                 attrs: list[str] | None = None) -> None:
        super().__init__(counters=manager.counters)
        self._manager = manager
        self._type_name = type_name
        self._search = search
        self._attrs = attrs
        manager.schema.atom_type(type_name)   # validate early

    def _snapshot(self) -> list[Surrogate]:
        return [s for s, _values in self._manager.atoms_of_type(self._type_name)]

    def _deliver(self, position: Surrogate):
        if not self._manager.exists(position):
            return None
        values = self._manager.get(position)
        if self._search is not None and not self._search.matches(values):
            return None
        if self._attrs is not None:
            values = self._manager.get(position, attrs=self._attrs)
        return position, values


class SortScan(Scan):
    """All atoms of one type in a user-defined sort order.

    Uses a redundant :class:`SortOrder` when one matches the criterion;
    otherwise the sort is performed explicitly into a temporary order
    (which is exactly what the paper allows — the scan works either way).
    Start and stop conditions bound the delivered key range; the
    direction is first-class (``reverse=True`` walks the order
    descending, with the surrogate tie-break kept ascending on every
    backing — sort order, access path, and explicit sort agree on ties).

    Besides the static start/stop conditions the scan accepts a
    **dynamic** stop key (:meth:`set_stop_bound`): a consumer that learns
    mid-scan how far the walk can possibly matter (TopK's tightening heap
    threshold) feeds the bound in, and the walk terminates as soon as the
    current key passes it in scan direction.  Combined with ``lazy=True``
    the underlying B*-tree/sort-order walk itself stops — not just the
    delivery.
    """

    def __init__(self, manager: "AtomManager", type_name: str,
                 sort_attrs: list[str],
                 search: SearchArgument | None = None,
                 start: Any = None, stop: Any = None,
                 include_start: bool = True, include_stop: bool = True,
                 reverse: bool = False, lazy: bool = False) -> None:
        super().__init__(counters=manager.counters, lazy=lazy)
        self._manager = manager
        self._type_name = type_name
        self._sort_attrs = tuple(sort_attrs)
        self._search = search
        self._start = start
        self._stop = stop
        self._include_start = include_start
        self._include_stop = include_stop
        self._reverse = reverse
        #: Dynamic stop key over a prefix of ``sort_attrs`` (raw values).
        self._stop_bound: tuple | None = None
        self._support: SortOrder | None = None
        for structure in manager.structures_for(type_name, "sort_order"):
            assert isinstance(structure, SortOrder)
            if structure.sort_attrs == self._sort_attrs:
                self._support = structure
                break
        self.used_sort_order = self._support is not None
        # "It may engage an access path if available" (paper, 3.2): a
        # B*-tree over the sort attributes delivers the value order free.
        self._path_support: AccessPath | None = None
        if self._support is None:
            for structure in manager.structures_for(type_name,
                                                    "access_path"):
                assert isinstance(structure, AccessPath)
                if structure.attrs == self._sort_attrs and \
                        structure.method == "btree":
                    self._path_support = structure
                    break
        self.used_access_path = self._path_support is not None

    def set_stop_bound(self, values: tuple) -> None:
        """Install (or tighten) the dynamic stop key.

        ``values`` are raw attribute values for a leading prefix of the
        sort attributes.  The walk stops at the first entry whose key
        prefix lies strictly *beyond* the bound in scan direction —
        entries tying the bound on the prefix still flow, because a
        consumer bounding on a prefix cannot reject ties.
        """
        bound = tuple(values)
        if len(bound) > len(self._sort_attrs):
            raise AccessError(
                f"stop bound {bound!r} is longer than the sort criterion "
                f"{self._sort_attrs!r}"
            )
        self._stop_bound = bound

    def _beyond_stop_bound(self, key_values: tuple) -> bool:
        bound = self._stop_bound
        if bound is None:
            return False
        probe = make_key(tuple(key_values[:len(bound)]))
        limit = make_key(bound)
        return probe < limit if self._reverse else limit < probe

    def _snapshot_iter(self) -> Iterator[Surrogate]:
        index_backed = True
        if self._support is not None:
            entries: Iterator[tuple[tuple, Surrogate]] = \
                self._support.iterate_entries(
                    start=self._start, stop=self._stop,
                    include_start=self._include_start,
                    include_stop=self._include_stop, reverse=self._reverse,
                )
        elif self._path_support is not None:
            condition = KeyCondition(
                start=self._start, stop=self._stop,
                include_start=self._include_start,
                include_stop=self._include_stop,
                descending=self._reverse,
            )
            conditions = [condition] + \
                [KeyCondition()] * (len(self._sort_attrs) - 1)
            entries = self._path_support.scan(conditions)
        else:
            # The explicit sort reads through the manager itself, so a
            # snapshot manager already delivers epoch-correct entries.
            entries = self._explicit_entries()
            index_backed = False
        if index_backed and getattr(self._manager, "is_snapshot", False):
            entries = self._overlay_entries(entries)
        for key_values, surrogate in entries:
            if self._counters is not None:
                self._counters.bump("sort_scan_entries_walked")
            if self._beyond_stop_bound(key_values):
                return
            yield surrogate

    def _overlay_entries(self, entries: Iterator[tuple[tuple, Surrogate]]
                         ) -> Iterator[tuple[tuple, Surrogate]]:
        """Snapshot mode over a *live* index walk: atoms displaced since
        the epoch (modified, deleted, or created) are skipped where the
        live structure has them and merged back in — with their epoch
        key values, at the position those values sort to."""
        overlay = self._manager.overlay(self._type_name)
        if not overlay:
            yield from entries
            return
        displaced = set(overlay)
        extra: list[tuple[Any, tuple, Surrogate]] = []
        for surrogate, values in overlay.items():
            if values is None:
                continue   # invisible at the epoch
            raw = tuple(values.get(a) for a in self._sort_attrs)
            key = make_key(raw)
            if self._start is not None:
                lo = make_key(self._start)
                if key < lo or (key == lo and not self._include_start):
                    continue
            if self._stop is not None:
                hi = make_key(self._stop)
                if hi < key or (key == hi and not self._include_stop):
                    continue
            extra.append((key, raw, surrogate))
        extra.sort(key=lambda e: (e[0], e[2]))
        if self._reverse:
            extra.sort(key=lambda e: e[0], reverse=True)
        live = ((k, s) for k, s in entries if s not in displaced)
        yield from _merge_entries(live, extra, self._reverse)

    def _explicit_entries(self) -> Iterator[tuple[tuple, Surrogate]]:
        """Explicit sort into a temporary order (no supporting structure).

        The sort is by (key, surrogate) ascending; a descending scan
        stably re-sorts on the key alone, which keeps the surrogate
        tie-break ascending — the same tie semantics as the index-backed
        paths and the stable explicit Sort operator.
        """
        entries: list[tuple[Any, tuple, Surrogate]] = []
        for surrogate, values in self._manager.atoms_of_type(self._type_name):
            raw = tuple(values.get(a) for a in self._sort_attrs)
            key = make_key(raw)
            if self._start is not None:
                lo = make_key(self._start)
                if key < lo or (key == lo and not self._include_start):
                    continue
            if self._stop is not None:
                hi = make_key(self._stop)
                if hi < key or (key == hi and not self._include_stop):
                    continue
            entries.append((key, raw, surrogate))
        entries.sort(key=lambda e: (e[0], e[2]))
        if self._reverse:
            entries.sort(key=lambda e: e[0], reverse=True)
        for _key, raw, surrogate in entries:
            yield raw, surrogate

    def _deliver(self, position: Surrogate):
        if not self._manager.exists(position):
            return None
        values: dict[str, Any] | None = None
        # The sort order's record copies track the *live* state; under a
        # snapshot only the manager (the epoch view) may serve values.
        if self._support is not None and \
                not getattr(self._manager, "is_snapshot", False):
            values = self._support.read(position)
            if values is not None:
                self._manager.counters.bump("reads_from_sort_order")
        if values is None:
            values = self._manager.get(position)
        if self._search is not None and not self._search.matches(values):
            return None
        return position, values


class AccessPathScan(Scan):
    """Scan over an access path with per-key conditions and directions.

    Key-sequential access comes for free from the path's value order; with
    n keys the caller chooses start/stop conditions and direction for every
    key individually.

    Like the sort scan, the access-path scan accepts a **dynamic** stop
    key (:meth:`set_stop_bound`) on top of its static
    :class:`KeyCondition` bounds: a B*-tree walk already bounded by the
    predicate's range terminates even earlier once a consumer (TopK's
    tightening heap threshold) learns how far the order can possibly
    matter — the static condition and the dynamic bound combine, and
    whichever cuts first stops the walk.
    """

    def __init__(self, manager: "AtomManager", path: AccessPath,
                 conditions: list[KeyCondition] | None = None,
                 search: SearchArgument | None = None,
                 lazy: bool = False) -> None:
        super().__init__(counters=manager.counters, lazy=lazy)
        self._manager = manager
        self._path = path
        self._conditions = conditions
        self._search = search
        self._reverse = bool(conditions and conditions[0].descending)
        #: Dynamic stop key over a prefix of the path attributes.
        self._stop_bound: tuple | None = None

    def set_stop_bound(self, values: tuple) -> None:
        """Install (or tighten) the dynamic stop key (raw values for a
        leading prefix of the path attributes; ties still flow)."""
        bound = tuple(values)
        if len(bound) > len(self._path.attrs):
            raise AccessError(
                f"stop bound {bound!r} is longer than the path attributes "
                f"{self._path.attrs!r}"
            )
        self._stop_bound = bound

    def _beyond_stop_bound(self, key_values: tuple) -> bool:
        bound = self._stop_bound
        if bound is None:
            return False
        probe = make_key(tuple(key_values[:len(bound)]))
        limit = make_key(bound)
        return probe < limit if self._reverse else limit < probe

    def _snapshot_iter(self) -> Iterator[Surrogate]:
        entries: Iterator[tuple[tuple, Surrogate]] = \
            self._path.scan(self._conditions)
        if getattr(self._manager, "is_snapshot", False):
            entries = self._overlay_entries(entries)
        for key_values, surrogate in entries:
            if self._counters is not None:
                self._counters.bump("access_path_entries_walked")
            if self._beyond_stop_bound(key_values):
                return
            yield surrogate

    def _overlay_entries(self, entries: Iterator[tuple[tuple, Surrogate]]
                         ) -> Iterator[tuple[tuple, Surrogate]]:
        """Snapshot mode: skip displaced atoms in the live walk, merge
        their epoch keys back in (see :meth:`SortScan._overlay_entries`)."""
        overlay = self._manager.overlay(self._path.atom_type)
        if not overlay:
            yield from entries
            return
        displaced = set(overlay)
        conditions = list(self._conditions) if self._conditions else \
            [KeyCondition() for _ in self._path.attrs]
        extra: list[tuple[Any, tuple, Surrogate]] = []
        for surrogate, values in overlay.items():
            if values is None:
                continue   # invisible at the epoch
            raw = self._path.key_of(values)
            if not AccessPath._qualifies_rest(raw, conditions):
                continue
            extra.append((make_key(raw), raw, surrogate))
        extra.sort(key=lambda e: (e[0], e[2]))
        if self._reverse:
            extra.sort(key=lambda e: e[0], reverse=True)
        live = ((k, s) for k, s in entries if s not in displaced)
        yield from _merge_entries(live, extra, self._reverse)

    def _deliver(self, position: Surrogate):
        if not self._manager.exists(position):
            return None
        values = self._manager.get(position)
        if self._search is not None and not self._search.matches(values):
            return None
        return position, values


class ClusterSearchArgument:
    """A search argument decidable in one pass through a single cluster.

    Quantifies a simple term over the member atoms with a given label:
    ``exists`` (default) or ``all`` (single-scan property [DPS86]).
    """

    def __init__(self, label: str, term: SearchArgument,
                 quantifier: str = "exists") -> None:
        if quantifier not in ("exists", "all"):
            raise AccessError("quantifier must be 'exists' or 'all'")
        self.label = label
        self.term = term
        self.quantifier = quantifier

    def matches(self, members: dict[str, list[dict[str, Any]]]) -> bool:
        atoms = members.get(self.label, [])
        if self.quantifier == "exists":
            return any(self.term.matches(atom) for atom in atoms)
        return all(self.term.matches(atom) for atom in atoms)


class AtomClusterTypeScan(Scan):
    """All characteristic atoms of an atom-cluster type.

    Delivers (root surrogate, characteristic atom) pairs; the optional
    cluster search argument is evaluated in one pass through each cluster.
    """

    def __init__(self, manager: "AtomManager", cluster: AtomCluster,
                 search: ClusterSearchArgument | None = None) -> None:
        super().__init__(counters=manager.counters)
        self._manager = manager
        self._cluster = cluster
        self._search = search

    def _snapshot(self) -> list[Surrogate]:
        return self._cluster.roots()

    def _deliver(self, position: Surrogate):
        if not self._manager.exists(position):
            return None
        if self._search is not None:
            members = self._cluster.read_cluster(position)
            if not self._search.matches(members):
                return None
        return position, self._cluster.characteristic(position)


class AtomClusterScan(Scan):
    """All atoms of one type within one single atom cluster."""

    def __init__(self, manager: "AtomManager", cluster: AtomCluster,
                 root: Surrogate, member_type: str,
                 search: SearchArgument | None = None) -> None:
        super().__init__(counters=manager.counters)
        self._manager = manager
        self._cluster = cluster
        self._root = root
        self._member_type = member_type
        self._search = search

    def _snapshot(self) -> list[Surrogate]:
        return [
            member for member in
            self._cluster.members_of(self._root)
            if member.atom_type == self._member_type
        ]

    def _deliver(self, position: Surrogate):
        if not self._manager.exists(position):
            return None
        values = self._cluster.read_member(self._root, position)
        if self._search is not None and not self._search.matches(values):
            return None
        return position, values
