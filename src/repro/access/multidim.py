"""Multi-dimensional access paths (paper, 3.2).

PRIMA offers multi-dimensional access path structures over n keys, where
start/stop conditions and directions may be specified *individually for
every key* involved in a scan — the data system determines the selection
path through the n-dimensional space.

The structure implemented is a grid file: every dimension carries a scale
of split points partitioning the space into cells; each cell holds a bucket
of entries.  When a bucket overflows, the cell is split along one dimension
(round-robin) at the median of the resident values.  Box queries visit only
cells intersecting the query box; the per-key direction ordering is applied
to the qualifying entries.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import AccessError
from repro.access.btree import Key, make_key
from repro.mad.types import Surrogate


@dataclass(frozen=True)
class KeyCondition:
    """Start/stop condition and direction for one key of a scan."""

    start: Any = None
    stop: Any = None
    include_start: bool = True
    include_stop: bool = True
    descending: bool = False


class GridFile:
    """An n-dimensional grid file over (key tuple, surrogate) entries."""

    def __init__(self, dims: int, bucket_capacity: int = 32) -> None:
        if dims < 1:
            raise AccessError("grid file needs at least one dimension")
        if bucket_capacity < 2:
            raise AccessError("bucket capacity must be at least 2")
        self.dims = dims
        self.bucket_capacity = bucket_capacity
        #: Per-dimension sorted split points.
        self._scales: list[list[Any]] = [[] for _ in range(dims)]
        #: cell coordinates -> entries in that cell.
        self._cells: dict[tuple[int, ...], list[tuple[tuple, Surrogate]]] = {}
        self._size = 0
        self._next_split_dim = 0

    # -- inspection ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def cell_count(self) -> int:
        return len(self._cells)

    def scales(self) -> list[list[Any]]:
        return [list(scale) for scale in self._scales]

    # -- coordinates -----------------------------------------------------------------

    def _coord(self, key: tuple) -> tuple[int, ...]:
        return tuple(
            bisect_right(self._scales[d], self._rankable(key[d]))
            for d in range(self.dims)
        )

    @staticmethod
    def _rankable(value: Any) -> Any:
        # None sorts below everything; normalise via a rank pair.
        if value is None:
            return (0, 0)
        if isinstance(value, bool):
            return (1, int(value))
        if isinstance(value, (int, float)):
            return (2, value)
        if isinstance(value, str):
            return (3, value)
        if isinstance(value, Surrogate):
            return (4, (value.atom_type, value.number))
        raise AccessError(f"value {value!r} cannot be used as a grid key")

    def _check_key(self, key_values: Any) -> tuple:
        key = make_key(key_values).values
        if len(key) != self.dims:
            raise AccessError(
                f"grid file has {self.dims} dimensions, key {key} has "
                f"{len(key)}"
            )
        return key

    # -- updates ---------------------------------------------------------------------

    def insert(self, key_values: Any, surrogate: Surrogate) -> None:
        """Add an entry; duplicate (key, surrogate) pairs are rejected."""
        key = self._check_key(key_values)
        coord = self._coord(key)
        bucket = self._cells.setdefault(coord, [])
        if (key, surrogate) in bucket:
            raise AccessError(f"duplicate grid entry {(key, surrogate)}")
        bucket.append((key, surrogate))
        self._size += 1
        if len(bucket) > self.bucket_capacity:
            self._split(coord)

    def delete(self, key_values: Any, surrogate: Surrogate) -> None:
        """Remove an entry; raises when absent."""
        key = self._check_key(key_values)
        coord = self._coord(key)
        bucket = self._cells.get(coord, [])
        try:
            bucket.remove((key, surrogate))
        except ValueError:
            raise AccessError(
                f"grid entry {(key, surrogate)} not found"
            ) from None
        self._size -= 1
        if not bucket:
            del self._cells[coord]

    def _split(self, coord: tuple[int, ...]) -> None:
        bucket = self._cells[coord]
        # Pick a dimension (round-robin) where the bucket actually spreads
        # and whose median is a *new* boundary (duplicate split points
        # would create empty stripes and corrupt the directory remap).
        dim = median = None
        for attempt in range(self.dims):
            candidate = (self._next_split_dim + attempt) % self.dims
            scale = self._scales[candidate]
            distinct = sorted({self._rankable(entry[0][candidate])
                               for entry in bucket})
            if len(distinct) < 2:
                continue
            # Candidate split values, middle-out (skip the minimum: a
            # boundary below every entry would not split the bucket).
            values = distinct[1:]
            order = sorted(range(len(values)),
                           key=lambda i: abs(i - len(values) // 2))
            for index in order:
                value = values[index]
                pos = bisect_right(scale, value)
                if pos > 0 and scale[pos - 1] == value:
                    continue   # already a boundary
                dim, median = candidate, value
                break
            if dim is not None:
                break
        if dim is None:
            return  # nothing splittable; the bucket stays oversized
        self._next_split_dim = (dim + 1) % self.dims

        position = bisect_right(self._scales[dim], median)
        self._scales[dim].insert(position, median)
        # The new boundary cuts through the whole hyperplane: every cell
        # whose interval in ``dim`` contained the boundary (index ==
        # position) straddles it and is redistributed; cells above shift
        # by one; cells below are untouched.
        old_cells = self._cells
        self._cells = {}
        for cell_coord, cell_bucket in old_cells.items():
            if cell_coord[dim] > position:
                shifted = list(cell_coord)
                shifted[dim] += 1
                self._cells[tuple(shifted)] = cell_bucket
            elif cell_coord[dim] == position:
                for key, surrogate in cell_bucket:
                    self._cells.setdefault(self._coord(key), []) \
                        .append((key, surrogate))
            else:
                self._cells[cell_coord] = cell_bucket

    # -- queries ---------------------------------------------------------------------

    def box(self, conditions: list[KeyCondition]) -> Iterator[tuple[tuple, Surrogate]]:
        """Entries within the box, ordered per-key by each direction.

        ``conditions[d]`` gives the start/stop condition and the traversal
        direction for dimension ``d``; results are ordered lexicographically
        with each key position ordered in its own direction.
        """
        if len(conditions) != self.dims:
            raise AccessError(
                f"need exactly {self.dims} key conditions, got {len(conditions)}"
            )
        matches = [
            (key, surrogate)
            for key, surrogate in self._candidates(conditions)
            if self._qualifies(key, conditions)
        ]

        def sort_key(entry: tuple[tuple, Surrogate]) -> tuple:
            parts = []
            for d, cond in enumerate(conditions):
                rank, value = self._rankable(entry[0][d])
                if cond.descending:
                    rank = -rank
                    value = _Descending(value)
                parts.append((rank, value))
            parts.append((entry[1].atom_type, entry[1].number))
            return tuple(parts)

        yield from sorted(matches, key=sort_key)

    def all_entries(self) -> Iterator[tuple[tuple, Surrogate]]:
        """Every entry, ordered ascending in all dimensions."""
        yield from self.box([KeyCondition() for _ in range(self.dims)])

    def _candidates(self, conditions: list[KeyCondition]) -> Iterator[tuple[tuple, Surrogate]]:
        ranges: list[range] = []
        for d, cond in enumerate(conditions):
            scale = self._scales[d]
            lo = 0
            hi = len(scale)
            if cond.start is not None:
                lo = bisect_right(scale, self._rankable(cond.start))
                # entries equal to a split point sit in the cell above it;
                # keep the cell below too when the bound is inclusive.
                lo = max(0, lo - 1)
            if cond.stop is not None:
                hi = bisect_right(scale, self._rankable(cond.stop))
            ranges.append(range(lo, hi + 1))
        for coord, bucket in self._cells.items():
            if all(coord[d] in ranges[d] for d in range(self.dims)):
                yield from bucket

    def _qualifies(self, key: tuple, conditions: list[KeyCondition]) -> bool:
        for d, cond in enumerate(conditions):
            ranked = self._rankable(key[d])
            if cond.start is not None:
                start = self._rankable(cond.start)
                if ranked < start or (ranked == start and not cond.include_start):
                    return False
            if cond.stop is not None:
                stop = self._rankable(cond.stop)
                if stop < ranked or (ranked == stop and not cond.include_stop):
                    return False
        return True

    # -- invariants (property tests) -----------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError on any structural inconsistency."""
        total = 0
        for coord, bucket in self._cells.items():
            assert bucket, "empty bucket retained in directory"
            for key, _ in bucket:
                assert self._coord(key) == coord, "entry in wrong cell"
            total += len(bucket)
        assert total == self._size, "size drift"
        for scale in self._scales:
            assert scale == sorted(scale), "unsorted scale"


class _Descending:
    """Inverts the comparison order of a wrapped value."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Descending") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Descending) and self.value == other.value
