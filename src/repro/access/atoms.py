"""The atom manager: the access system's atom-oriented interface.

Like the Research Storage System of System R [As76], the access system
offers retrieval and update of single atoms identified by their logical
address (paper, 3.2).  Performing update operations, it is responsible for
the **automatic maintenance of referential integrity** defined by reference
attributes: an update on a reference attribute includes implicit updates on
other atoms to adjust the corresponding back-reference attributes.

The atom manager also drives the registered tuning structures (access
paths, sort orders, partitions, atom clusters): inserts and deletes update
them immediately; modifies rewrite only the base record and defer the rest
(deferred update).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.access.address import (
    BASE_STRUCTURE,
    AddressTable,
    RecordId,
    SurrogateGenerator,
)
from repro.access.container import RecordContainer
from repro.access.deferred import DeferredUpdateManager
from repro.access.encoding import decode_atom, encode_atom
from repro.access.structure import StorageStructure
from repro.errors import (
    AtomNotFoundError,
    CardinalityError,
    DuplicateKeyError,
    IntegrityError,
    StructureExistsError,
    StructureNotFoundError,
)
from repro.access.snapshots import AtomVersionStore, SnapshotView
from repro.mad.schema import AtomType, Schema
from repro.mad.types import (
    ReferenceType,
    SetType,
    Surrogate,
    is_reference,
    reference_values,
)
from repro.storage.system import StorageSystem
from repro.util.stats import Counters


class AtomManager:
    """Insert, read, modify and delete atoms; maintain all their records."""

    #: Monotonic LDL stamp (class-level default keeps old checkpoints
    #: loadable): bumped whenever a tuning structure is installed or
    #: dropped — access-path choices of cached plans depend on the
    #: structure inventory, so this feeds the plan-cache version.
    structures_version = 0

    #: Copy-on-write version store (class-level default keeps old
    #: checkpoints loadable; see :meth:`version_store`).
    versions: AtomVersionStore | None = None

    def __init__(self, storage: StorageSystem, schema: Schema,
                 counters: Counters | None = None) -> None:
        self.storage = storage
        self.schema = schema
        self.counters = counters if counters is not None else Counters()
        self.addresses = AddressTable()
        self.surrogates = SurrogateGenerator()
        self.deferred = DeferredUpdateManager(self._read_base_values,
                                              counters=self.counters)
        self._containers: dict[str, RecordContainer] = {}
        self._key_index: dict[str, dict[tuple, Surrogate]] = {}
        self._structures: dict[str, StorageStructure] = {}
        self._structures_by_type: dict[str, list[StorageStructure]] = {}
        self.structures_version = 0
        self.versions = AtomVersionStore()

    # ----------------------------------------------------------- snapshots --

    def version_store(self) -> AtomVersionStore:
        """The copy-on-write version store (created on demand, so
        checkpoints from before the snapshot era load fine)."""
        store = self.versions
        if store is None:
            store = self.versions = AtomVersionStore()
        return store

    @property
    def data_version(self) -> int:
        """The published atom-version epoch (the snapshot clock)."""
        return self.version_store().epoch

    def publish_epoch(self) -> int:
        """Publish a new epoch — called at commit boundaries (checkin,
        DML statement end, DDL), never per low-level operation."""
        return self.version_store().publish()

    def open_snapshot(self) -> SnapshotView:
        """Pin a snapshot at the current epoch; the caller must
        :meth:`SnapshotView.release` it when the reader is done."""
        store = self.version_store()
        epoch = store.pin()
        self.counters.bump("snapshots_pinned")
        return SnapshotView(self, epoch)

    # ------------------------------------------------------------------ setup --

    def register_atom_type(self, name: str) -> None:
        """Create the base storage of a (previously declared) atom type."""
        atom_type = self.schema.atom_type(name)
        if atom_type.name in self._containers:
            return
        self._containers[name] = RecordContainer(
            self.storage, f"at_{name}", page_size=8192
        )
        self._key_index[name] = {}

    def unregister_atom_type(self, name: str) -> None:
        """Drop the base storage of an atom type (atoms must be gone)."""
        container = self._containers.pop(name, None)
        if container is not None:
            container.clear()
        self._key_index.pop(name, None)
        for structure in self._structures_by_type.pop(name, []):
            self._structures.pop(structure.name, None)
            structure.drop()

    def _container(self, atom_type: str) -> RecordContainer:
        try:
            return self._containers[atom_type]
        except KeyError:
            self.register_atom_type(atom_type)
            return self._containers[atom_type]

    # ------------------------------------------------------- tuning structures --

    def add_structure(self, structure: StorageStructure,
                      backfill: bool = True) -> StorageStructure:
        """Install a tuning structure; existing atoms are backfilled."""
        if structure.name in self._structures:
            raise StructureExistsError(
                f"storage structure {structure.name!r} already exists"
            )
        self._structures[structure.name] = structure
        self.structures_version = self.structures_version + 1
        for type_name in structure.watched_types:
            self._structures_by_type.setdefault(type_name, []) \
                .append(structure)
        if backfill:
            for surrogate, values in self.atoms_of_type(structure.atom_type):
                structure.on_insert(surrogate, values)
        return structure

    def drop_structure(self, name: str) -> None:
        structure = self._structures.pop(name, None)
        if structure is None:
            raise StructureNotFoundError(f"no storage structure {name!r}")
        self.structures_version = self.structures_version + 1
        for type_name in structure.watched_types:
            self._structures_by_type[type_name].remove(structure)
        self.deferred.cancel_all(structure.structure_id)
        for surrogate in list(self.addresses.surrogates(structure.atom_type)):
            self.addresses.unplace(surrogate, structure.structure_id)
        structure.drop()

    def structure(self, name: str) -> StorageStructure:
        try:
            return self._structures[name]
        except KeyError:
            raise StructureNotFoundError(f"no storage structure {name!r}") \
                from None

    def structures_for(self, atom_type: str,
                       kind: str | None = None) -> list[StorageStructure]:
        out = self._structures_by_type.get(atom_type, [])
        if kind is not None:
            out = [s for s in out if s.kind == kind]
        return list(out)

    def structure_names(self) -> list[str]:
        return sorted(self._structures)

    # ----------------------------------------------------------------- inserts --

    def insert(self, type_name: str, values: dict[str, Any] | None = None,
               ) -> Surrogate:
        """Insert a new atom; returns its freshly generated surrogate.

        Values may assign all or only selected attributes (paper, 3.2);
        reference attributes trigger back-reference maintenance on the
        referenced atoms.
        """
        atom_type = self.schema.atom_type(type_name)
        checked = atom_type.validate_values(values or {}, partial=False)
        self._check_targets_exist(atom_type, checked)
        surrogate = self.surrogates.generate(type_name)
        checked[atom_type.identifier_attr] = surrogate
        self._check_key_free(atom_type, checked)

        store = self.version_store()
        store.preserve(surrogate, None)
        store.note_touched(type_name)
        self.addresses.register(surrogate)
        record_id = self._container(type_name).insert(encode_atom(checked))
        self.addresses.place(surrogate, BASE_STRUCTURE, record_id)
        self._key_register(atom_type, checked, surrogate)

        # Symmetric maintenance: every reference we store implies a
        # back-reference in the target atom.
        for attr_name in atom_type.reference_attrs():
            for target in reference_values(atom_type.attr(attr_name),
                                           checked.get(attr_name)):
                self._backref_add(atom_type, attr_name, surrogate, target)

        for structure in self._structures_by_type.get(type_name, []):
            structure.on_insert(surrogate, checked)
        self.counters.bump("atoms_inserted")
        return surrogate

    def restore_atom(self, surrogate: Surrogate,
                     values: dict[str, Any]) -> None:
        """Re-insert a previously deleted atom under its old surrogate.

        Used by transaction recovery to undo a delete: the atom reappears
        with its last stored state, and back-references to it are re-built
        from its own reference attributes (symmetry restores both sides).
        """
        atom_type = self.schema.atom_type(surrogate.atom_type)
        if self.addresses.exists(surrogate):
            raise IntegrityError(f"atom {surrogate} already exists")
        stored = dict(values)
        stored[atom_type.identifier_attr] = surrogate
        self._check_key_free(atom_type, stored)
        store = self.version_store()
        store.preserve(surrogate, None)
        store.note_touched(surrogate.atom_type)
        self.surrogates.note_existing(surrogate)
        self.addresses.register(surrogate)
        record_id = self._container(surrogate.atom_type) \
            .insert(encode_atom(stored))
        self.addresses.place(surrogate, BASE_STRUCTURE, record_id)
        self._key_register(atom_type, stored, surrogate)
        for attr_name in atom_type.reference_attrs():
            for target in reference_values(atom_type.attr(attr_name),
                                           stored.get(attr_name)):
                if self.addresses.exists(target):
                    self._backref_add(atom_type, attr_name, surrogate, target)
        for structure in self._structures_by_type.get(surrogate.atom_type, []):
            structure.on_insert(surrogate, stored)
        self.counters.bump("atoms_restored")

    # ------------------------------------------------------------------- reads --

    def get(self, surrogate: Surrogate,
            attrs: list[str] | None = None) -> dict[str, Any]:
        """Read an atom — whole or only selected attributes.

        The physical record with minimum access cost serves the read: a
        fresh partition covering the requested attributes wins over the
        (larger) base record.
        """
        atom_type = self.schema.atom_type(surrogate.atom_type)
        if not self.addresses.exists(surrogate):
            raise AtomNotFoundError(f"no atom with logical address {surrogate}")
        self.counters.bump("atoms_read")
        if attrs is not None:
            unknown = set(attrs) - set(atom_type.attributes)
            if unknown:
                raise AtomNotFoundError(
                    f"atom type {atom_type.name!r} has no attributes "
                    f"{sorted(unknown)}"
                )
            for partition in self.structures_for(surrogate.atom_type,
                                                 "partition"):
                if partition.covers(attrs):                # type: ignore[attr-defined]
                    copy = partition.read(surrogate)       # type: ignore[attr-defined]
                    if copy is not None:
                        self.counters.bump("reads_from_partition")
                        out = {atom_type.identifier_attr: surrogate}
                        for attr in attrs:
                            out[attr] = copy.get(attr)
                        return out
        values = self._read_base_values(surrogate)
        if attrs is None:
            return values
        out = {atom_type.identifier_attr: surrogate}
        for attr in attrs:
            out[attr] = values.get(attr)
        return out

    def exists(self, surrogate: Surrogate) -> bool:
        return self.addresses.exists(surrogate)

    def atoms_of_type(self, type_name: str) -> Iterator[tuple[Surrogate, dict[str, Any]]]:
        """All atoms of a type in system-defined (physical) order."""
        atom_type = self.schema.atom_type(type_name)
        container = self._container(type_name)
        for _record_id, payload in container.scan():
            values = decode_atom(payload)
            yield values[atom_type.identifier_attr], values

    def count(self, type_name: str) -> int:
        return self.addresses.count(type_name)

    def find_by_key(self, type_name: str, key: tuple | Any) -> Surrogate | None:
        """Locate an atom by its KEYS_ARE value (None when absent)."""
        if not isinstance(key, tuple):
            key = (key,)
        return self._key_index.get(type_name, {}).get(key)

    # ----------------------------------------------------------------- modifies --

    def modify(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        """Modify selected attributes of an atom (never the IDENTIFIER).

        Reference-attribute changes imply implicit updates on other atoms
        to adjust the appropriate back-reference attributes.
        """
        atom_type = self.schema.atom_type(surrogate.atom_type)
        changes = atom_type.validate_values(values, partial=True)
        self._check_targets_exist(atom_type, changes)
        old = self._read_base_values(surrogate)
        new = dict(old)
        new.update(changes)
        if new == old:
            return
        self._key_move(atom_type, old, new, surrogate)

        # Back-reference deltas for every changed reference attribute.
        # Self-references (an atom connected to itself over a recursive
        # association) are folded into ``new`` directly — writing them via
        # the generic path would be overwritten by the base rewrite below.
        for attr_name in atom_type.reference_attrs():
            if attr_name not in changes:
                continue
            attr_type = atom_type.attr(attr_name)
            before = set(reference_values(attr_type, old.get(attr_name)))
            after = set(reference_values(attr_type, new.get(attr_name)))
            for removed in before - after:
                if removed == surrogate:
                    self._self_backref(atom_type, attr_name, surrogate, new,
                                       add=False)
                else:
                    self._backref_remove(atom_type, attr_name, surrogate,
                                         removed)
            for added in after - before:
                if added == surrogate:
                    self._self_backref(atom_type, attr_name, surrogate, new,
                                       add=True)
                else:
                    self._backref_add(atom_type, attr_name, surrogate, added)

        store = self.version_store()
        store.preserve(surrogate, old)
        store.note_touched(surrogate.atom_type)
        self._write_base(surrogate, new)
        self._notify_modify(surrogate, old, new)
        self.counters.bump("atoms_modified")

    # ------------------------------------------------------------------ deletes --

    def delete(self, surrogate: Surrogate) -> None:
        """Delete an atom, disconnecting it from all its partners.

        Every reference this atom holds (in either association direction)
        is withdrawn from the partner atom's paired attribute, so no
        dangling references remain; then all records are removed and the
        logical address is released.
        """
        atom_type = self.schema.atom_type(surrogate.atom_type)
        values = self._read_base_values(surrogate)
        store = self.version_store()
        store.preserve(surrogate, values)
        store.note_touched(surrogate.atom_type)
        for attr_name in atom_type.reference_attrs():
            for target in reference_values(atom_type.attr(attr_name),
                                           values.get(attr_name)):
                if self.addresses.exists(target):
                    self._backref_remove(atom_type, attr_name, surrogate,
                                         target)
        for structure in self._structures_by_type.get(surrogate.atom_type, []):
            structure.on_delete(surrogate, values)
            self.deferred.cancel(structure.structure_id, surrogate)
        placement = self.addresses.placement(surrogate, BASE_STRUCTURE)
        assert placement is not None
        self._container(surrogate.atom_type).delete(placement.record)
        self._key_unregister(atom_type, values)
        self.addresses.release(surrogate)
        self.counters.bump("atoms_deleted")

    # ------------------------------------------------- back-reference machinery --

    def _backref_add(self, source_type: AtomType, source_attr: str,
                     source: Surrogate, target: Surrogate) -> None:
        assoc = self.schema.association(source_type.name, source_attr)
        target_type = self.schema.atom_type(assoc.target_type)
        attr_type = target_type.attr(assoc.target_attr)
        current = self._read_base_values(target)
        if isinstance(attr_type, ReferenceType):
            existing = current.get(assoc.target_attr)
            if existing is not None and existing != source:
                raise IntegrityError(
                    f"{target}.{assoc.target_attr} already references "
                    f"{existing}; disconnect it before connecting {source}"
                )
            if existing == source:
                return
            new_value: Any = source
        else:
            members = list(current.get(assoc.target_attr) or [])
            if source in members:
                return
            members.append(source)
            members.sort(key=repr)
            if isinstance(attr_type, SetType) and \
                    attr_type.max_card is not None and \
                    len(members) > attr_type.max_card:
                raise CardinalityError(
                    f"{target}.{assoc.target_attr} may hold at most "
                    f"{attr_type.max_card} references"
                )
            new_value = members
        new = dict(current)
        new[assoc.target_attr] = new_value
        store = self.version_store()
        store.preserve(target, current)
        store.note_touched(target.atom_type)
        self._write_base(target, new)
        self._notify_modify(target, current, new)
        self.counters.bump("backrefs_maintained")

    def _backref_remove(self, source_type: AtomType, source_attr: str,
                        source: Surrogate, target: Surrogate) -> None:
        assoc = self.schema.association(source_type.name, source_attr)
        attr_type = self.schema.atom_type(assoc.target_type) \
            .attr(assoc.target_attr)
        current = self._read_base_values(target)
        if isinstance(attr_type, ReferenceType):
            if current.get(assoc.target_attr) != source:
                return
            new_value: Any = None
        else:
            members = list(current.get(assoc.target_attr) or [])
            if source not in members:
                return
            members.remove(source)
            new_value = members
        new = dict(current)
        new[assoc.target_attr] = new_value
        store = self.version_store()
        store.preserve(target, current)
        store.note_touched(target.atom_type)
        self._write_base(target, new)
        self._notify_modify(target, current, new)
        self.counters.bump("backrefs_maintained")

    def _self_backref(self, atom_type: AtomType, source_attr: str,
                      surrogate: Surrogate, new: dict[str, Any],
                      add: bool) -> None:
        """Maintain the back-reference of a self-referencing atom in place."""
        assoc = self.schema.association(atom_type.name, source_attr)
        attr_type = atom_type.attr(assoc.target_attr)
        if isinstance(attr_type, ReferenceType):
            if add:
                existing = new.get(assoc.target_attr)
                if existing is not None and existing != surrogate:
                    raise IntegrityError(
                        f"{surrogate}.{assoc.target_attr} already references "
                        f"{existing}"
                    )
                new[assoc.target_attr] = surrogate
            elif new.get(assoc.target_attr) == surrogate:
                new[assoc.target_attr] = None
            return
        members = list(new.get(assoc.target_attr) or [])
        if add and surrogate not in members:
            members.append(surrogate)
            members.sort(key=repr)
            if isinstance(attr_type, SetType) and \
                    attr_type.max_card is not None and \
                    len(members) > attr_type.max_card:
                raise CardinalityError(
                    f"{surrogate}.{assoc.target_attr} may hold at most "
                    f"{attr_type.max_card} references"
                )
        elif not add and surrogate in members:
            members.remove(surrogate)
        new[assoc.target_attr] = members

    def _check_targets_exist(self, atom_type: AtomType,
                             values: dict[str, Any]) -> None:
        for attr_name, value in values.items():
            attr_type = atom_type.attr(attr_name)
            if not is_reference(attr_type):
                continue
            for target in reference_values(attr_type, value):
                if not self.addresses.exists(target):
                    raise IntegrityError(
                        f"{atom_type.name}.{attr_name} references "
                        f"non-existent atom {target}"
                    )

    # -------------------------------------------------------------- key indexes --

    def _key_of(self, atom_type: AtomType,
                values: dict[str, Any]) -> tuple | None:
        if not atom_type.keys:
            return None
        return tuple(values.get(attr) for attr in atom_type.keys)

    def _check_key_free(self, atom_type: AtomType,
                        values: dict[str, Any]) -> None:
        key = self._key_of(atom_type, values)
        if key is None or all(part is None for part in key):
            return
        holder = self._key_index.setdefault(atom_type.name, {}).get(key)
        if holder is not None:
            raise DuplicateKeyError(
                f"atom type {atom_type.name!r}: key {key} already taken "
                f"by {holder}"
            )

    def _key_register(self, atom_type: AtomType, values: dict[str, Any],
                      surrogate: Surrogate) -> None:
        key = self._key_of(atom_type, values)
        if key is not None and not all(part is None for part in key):
            self._key_index.setdefault(atom_type.name, {})[key] = surrogate

    def _key_unregister(self, atom_type: AtomType,
                        values: dict[str, Any]) -> None:
        key = self._key_of(atom_type, values)
        if key is not None:
            self._key_index.get(atom_type.name, {}).pop(key, None)

    def _key_move(self, atom_type: AtomType, old: dict[str, Any],
                  new: dict[str, Any], surrogate: Surrogate) -> None:
        old_key = self._key_of(atom_type, old)
        new_key = self._key_of(atom_type, new)
        if old_key == new_key:
            return
        if new_key is not None and not all(p is None for p in new_key):
            holder = self._key_index.setdefault(atom_type.name, {}) \
                .get(new_key)
            if holder is not None and holder != surrogate:
                raise DuplicateKeyError(
                    f"atom type {atom_type.name!r}: key {new_key} already "
                    f"taken by {holder}"
                )
        if old_key is not None:
            self._key_index.get(atom_type.name, {}).pop(old_key, None)
        if new_key is not None and not all(p is None for p in new_key):
            self._key_index[atom_type.name][new_key] = surrogate

    # --------------------------------------------------------- record plumbing --

    def _read_base_values(self, surrogate: Surrogate) -> dict[str, Any]:
        placement = self.addresses.placement(surrogate, BASE_STRUCTURE)
        if placement is None:
            raise AtomNotFoundError(f"no atom with logical address {surrogate}")
        payload = self._container(surrogate.atom_type).read(placement.record)
        return decode_atom(payload)

    def _write_base(self, surrogate: Surrogate,
                    values: dict[str, Any]) -> None:
        placement = self.addresses.placement(surrogate, BASE_STRUCTURE)
        assert placement is not None
        new_record = self._container(surrogate.atom_type).update(
            placement.record, encode_atom(values)
        )
        if new_record != placement.record:
            self.addresses.place(surrogate, BASE_STRUCTURE, new_record)

    def _notify_modify(self, surrogate: Surrogate, old: dict[str, Any],
                       new: dict[str, Any]) -> None:
        """Drive the tuning structures after a base rewrite.

        Immediate structures (access paths) adjust themselves here;
        deferred structures are marked stale and queued (deferred update).
        """
        for structure in self._structures_by_type.get(surrogate.atom_type, []):
            structure.on_modify(surrogate, old, new)
            if structure.deferred:
                self.addresses.mark_stale(surrogate, structure.structure_id)
                self.deferred.defer(structure, surrogate)
