"""The access system facade (Fig. 3.1: "storage structures -> atom-oriented").

Bundles the atom manager with factory methods for the four tuning
structures, so the LDL executor and the data system program against one
object.
"""

from __future__ import annotations

from repro.access.access_path import AccessPath
from repro.access.atoms import AtomManager
from repro.access.cluster import AtomCluster
from repro.access.partition import Partition
from repro.access.sort_order import SortOrder
from repro.mad.molecule import StructureNode
from repro.mad.schema import Schema
from repro.storage.system import StorageSystem
from repro.util.stats import Counters


class AccessSystem:
    """Atom operations plus tuning-structure management."""

    def __init__(self, storage: StorageSystem, schema: Schema,
                 counters: Counters | None = None) -> None:
        self.storage = storage
        self.schema = schema
        self.counters = counters if counters is not None else Counters()
        self.atoms = AtomManager(storage, schema, counters=self.counters)

    # Convenience delegates -----------------------------------------------------

    def insert(self, type_name, values=None):
        """Insert an atom (see :meth:`AtomManager.insert`)."""
        return self.atoms.insert(type_name, values)

    def get(self, surrogate, attrs=None):
        """Read an atom (see :meth:`AtomManager.get`)."""
        return self.atoms.get(surrogate, attrs)

    def modify(self, surrogate, values):
        """Modify an atom (see :meth:`AtomManager.modify`)."""
        return self.atoms.modify(surrogate, values)

    def delete(self, surrogate):
        """Delete an atom (see :meth:`AtomManager.delete`)."""
        return self.atoms.delete(surrogate)

    # Tuning-structure factories (driven by the LDL executor) ----------------------

    def create_access_path(self, name: str, type_name: str,
                           attrs: list[str],
                           method: str = "btree") -> AccessPath:
        """CREATE ACCESS PATH — B*-tree or grid file over given attributes."""
        atom_type = self.schema.atom_type(type_name)
        path = AccessPath(name, atom_type, attrs, method=method)
        self.atoms.add_structure(path)
        return path

    def create_sort_order(self, name: str, type_name: str,
                          sort_attrs: list[str]) -> SortOrder:
        """CREATE SORT ORDER — redundant sorted record list."""
        atom_type = self.schema.atom_type(type_name)
        order = SortOrder(name, atom_type, sort_attrs,
                          self.storage, self.atoms.addresses)
        self.atoms.add_structure(order)
        return order

    def create_partition(self, name: str, type_name: str,
                         attrs: list[str]) -> Partition:
        """CREATE PARTITION — separate storage of an attribute combination."""
        atom_type = self.schema.atom_type(type_name)
        partition = Partition(name, atom_type, attrs,
                              self.storage, self.atoms.addresses)
        self.atoms.add_structure(partition)
        return partition

    def create_cluster(self, name: str,
                       structure: StructureNode) -> AtomCluster:
        """CREATE ATOM CLUSTER — materialised molecules on page sequences."""
        self.schema.atom_type(structure.atom_type)
        cluster = AtomCluster(name, structure, self.atoms, self.storage)
        self.atoms.add_structure(cluster)
        return cluster

    def drop_structure(self, name: str) -> None:
        """DROP — remove any tuning structure by name."""
        self.atoms.drop_structure(name)

    # Deferred update control -----------------------------------------------------------

    def propagate_deferred(self, limit: int | None = None) -> int:
        """Propagate pending deferred updates (all by default)."""
        return self.atoms.deferred.propagate(limit)
