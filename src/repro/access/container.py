"""Record containers: variable-length byte strings in slotted pages.

Physical records "are stored consecutively in 'containers' offered by the
storage system" (paper, 3.2).  A :class:`RecordContainer` owns one segment
and places records into its slotted pages, maintaining a simple free-space
inventory so inserts find a page without scanning the whole segment.

**Long records** — "the restriction to a certain page size ... is too
stringent, especially considering atom clusters and strings like texts and
images" (paper, 3.3) — are routed onto *page sequences* transparently: the
slotted page keeps a small stub, the bytes live on the sequence, and every
container operation (read, update, delete, scan) resolves the indirection,
so callers never see the difference.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import AccessError, PageOverflowError, RecordNotFoundError, StorageError
from repro.access.address import RecordId
from repro.storage.constants import PAGE_HEADER_SIZE, SLOT_ENTRY_SIZE
from repro.storage.page import PageId
from repro.storage.system import StorageSystem


class RecordContainer:
    """Insert/read/update/delete/scan of records in one segment."""

    def __init__(self, storage: StorageSystem, segment_name: str,
                 page_size: int = 8192) -> None:
        self._storage = storage
        self.segment_name = segment_name
        if not storage.segments.exists(segment_name):
            storage.create_segment(segment_name, page_size)
        self.page_size = storage.segment(segment_name).page_size
        self._max_record = self.page_size - PAGE_HEADER_SIZE - SLOT_ENTRY_SIZE
        #: page_no -> free-byte estimate, refreshed on every touch.
        self._free_space: dict[int, int] = {}
        self._record_count = 0
        #: Long-record indirection: stub RecordId -> page-sequence header.
        self._long: dict[RecordId, PageId] = {}

    @property
    def long_record_count(self) -> int:
        """Number of records currently routed onto page sequences."""
        return len(self._long)

    # -- inspection ---------------------------------------------------------------

    @property
    def record_count(self) -> int:
        return self._record_count

    def page_ids(self) -> list[PageId]:
        segment = self._storage.segment(self.segment_name)
        return [PageId(self.segment_name, no) for no in segment.page_numbers()]

    # -- operations ----------------------------------------------------------------

    def insert(self, payload: bytes) -> RecordId:
        """Store ``payload``; returns the new record's physical address.

        Payloads exceeding one page go onto a page sequence; the returned
        id addresses the stub, so the indirection is invisible.
        """
        if len(payload) > self._max_record:
            sequence = self._storage.sequences.create(self.segment_name)
            self._storage.sequences.write(sequence, payload)
            stub = self.insert(b"LONG")
            self._long[stub] = sequence
            return stub
        needed = len(payload) + SLOT_ENTRY_SIZE
        page_id = self._find_page(needed)
        if page_id is not None:
            try:
                with self._storage.page(page_id, write=True) as page:
                    slot = page.insert(payload)
                    self._free_space[page_id.page_no] = page.free_space
                self._record_count += 1
                return RecordId(page_id, slot)
            except PageOverflowError:
                # The free-space estimate was optimistic (tombstone bytes
                # plus directory growth); fall through to a fresh page.
                pass
        page_id = self._storage.allocate_page(self.segment_name)
        with self._storage.page(page_id, write=True) as page:
            slot = page.insert(payload)
            self._free_space[page_id.page_no] = page.free_space
        self._record_count += 1
        return RecordId(page_id, slot)

    def read(self, record_id: RecordId) -> bytes:
        """Return the record's byte string."""
        self._check_ownership(record_id)
        sequence = self._long.get(record_id)
        if sequence is not None:
            return self._storage.sequences.read(sequence)
        try:
            with self._storage.page(record_id.page) as page:
                return page.read(record_id.slot)
        except StorageError as exc:
            raise RecordNotFoundError(str(exc)) from exc

    def update(self, record_id: RecordId, payload: bytes) -> RecordId:
        """Replace the record's bytes; may relocate (returns the new id)."""
        self._check_ownership(record_id)
        sequence = self._long.get(record_id)
        if sequence is not None:
            if len(payload) > self._max_record:
                self._storage.sequences.write(sequence, payload)
                return record_id
            # shrank below the threshold: back into the slotted page
            self._storage.sequences.drop(sequence)
            del self._long[record_id]
            self.delete(record_id)
            return self.insert(payload)
        if len(payload) > self._max_record:
            # grew past the threshold: move onto a page sequence
            self.delete(record_id)
            return self.insert(payload)
        try:
            with self._storage.page(record_id.page, write=True) as page:
                page.update(record_id.slot, payload)
                self._free_space[record_id.page.page_no] = page.free_space
            return record_id
        except PageOverflowError:
            pass  # move to another page below
        except StorageError as exc:
            raise RecordNotFoundError(str(exc)) from exc
        self.delete(record_id)
        return self.insert(payload)

    def delete(self, record_id: RecordId) -> None:
        """Remove the record (its page keeps serving other records)."""
        self._check_ownership(record_id)
        sequence = self._long.pop(record_id, None)
        if sequence is not None:
            self._storage.sequences.drop(sequence)
        try:
            with self._storage.page(record_id.page, write=True) as page:
                reclaimed = len(page.read(record_id.slot))
                page.delete(record_id.slot)
                # The tombstoned bytes are reclaimable by compaction, so
                # count them as free for placement decisions.
                self._free_space[record_id.page.page_no] = \
                    page.free_space + reclaimed
        except StorageError as exc:
            raise RecordNotFoundError(str(exc)) from exc
        self._record_count -= 1

    def scan(self) -> Iterator[tuple[RecordId, bytes]]:
        """All records in physical (page, slot) order — the system-defined
        order of the atom-type scan.  Long records are resolved."""
        from repro.storage.page import PAGE_TYPE_DATA
        for page_id in self.page_ids():
            with self._storage.page(page_id) as page:
                if page.page_type != PAGE_TYPE_DATA:
                    continue   # page-sequence pages of long records
                entries = list(page.records())
            for slot, payload in entries:
                record_id = RecordId(page_id, slot)
                sequence = self._long.get(record_id)
                if sequence is not None:
                    yield record_id, self._storage.sequences.read(sequence)
                else:
                    yield record_id, payload

    def clear(self) -> None:
        """Delete every record (pages are freed)."""
        for sequence in self._long.values():
            self._storage.sequences.drop(sequence)
        self._long.clear()
        for page_id in self.page_ids():
            self._storage.free_page(page_id)
        self._free_space.clear()
        self._record_count = 0

    # -- internals ---------------------------------------------------------------------

    def _check_ownership(self, record_id: RecordId) -> None:
        if record_id.page.segment != self.segment_name:
            raise AccessError(
                f"record {record_id} does not belong to container "
                f"{self.segment_name!r}"
            )

    def _find_page(self, needed: int) -> PageId | None:
        for page_no, free in self._free_space.items():
            if free >= needed:
                return PageId(self.segment_name, page_no)
        return None
