"""Access paths as installable tuning structures (paper, 2.3 / 3.2).

Several access methods may exist for one or more attributes, permitting
multidimensional access.  An access path maps the values of its attribute
list to surrogates; one-attribute paths use the B*-tree, multi-attribute
paths may choose the grid file for symmetric multi-dimensional access.

Access paths are *immediate* structures: queries consult them directly, so
their entries are adjusted within the triggering operation (they index only
keys and surrogates — no record copies — which is why the paper's deferred
update argument does not apply to them).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.access.btree import BStarTree
from repro.access.multidim import GridFile, KeyCondition
from repro.access.structure import StorageStructure
from repro.errors import AccessError
from repro.mad.schema import AtomType
from repro.mad.types import Surrogate


class AccessPath(StorageStructure):
    """An index over one or more attributes of an atom type."""

    kind = "access_path"
    deferred = False

    def __init__(self, name: str, atom_type: AtomType, attrs: list[str],
                 method: str = "btree") -> None:
        super().__init__(name, atom_type.name)
        if not attrs:
            raise AccessError("an access path needs at least one attribute")
        for attr in attrs:
            atom_type.attr(attr)   # raises on unknown attributes
        self.attrs = tuple(attrs)
        if method == "btree":
            self._index: BStarTree | GridFile = BStarTree()
        elif method == "grid":
            self._index = GridFile(dims=len(attrs))
        else:
            raise AccessError(
                f"unknown access method {method!r} (btree or grid)"
            )
        self.method = method

    # -- helpers -------------------------------------------------------------------

    def key_of(self, values: dict[str, Any]) -> tuple:
        return tuple(values.get(attr) for attr in self.attrs)

    def __len__(self) -> int:
        return len(self._index)

    # -- maintenance hooks ----------------------------------------------------------

    def on_insert(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        self._index.insert(self.key_of(values), surrogate)

    def on_delete(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        self._index.delete(self.key_of(values), surrogate)

    def on_modify(self, surrogate: Surrogate, old: dict[str, Any],
                  new: dict[str, Any]) -> None:
        old_key = self.key_of(old)
        new_key = self.key_of(new)
        if old_key != new_key:
            self._index.delete(old_key, surrogate)
            self._index.insert(new_key, surrogate)

    def drop(self) -> None:
        if isinstance(self._index, BStarTree):
            self._index = BStarTree()
        else:
            self._index = GridFile(dims=len(self.attrs))

    # -- lookups -----------------------------------------------------------------------

    def search(self, key: Any) -> list[Surrogate]:
        """Exact-match lookup."""
        if isinstance(self._index, BStarTree):
            return self._index.search(key)
        key_tuple = key if isinstance(key, tuple) else (key,)
        conditions = [KeyCondition(start=v, stop=v) for v in key_tuple]
        return [s for _k, s in self._index.box(conditions)]

    def scan(self, conditions: list[KeyCondition] | None = None,
             reverse: bool = False) -> Iterator[tuple[tuple, Surrogate]]:
        """Range scan with per-key start/stop conditions and directions.

        For the B*-tree only the first key's condition bounds the scan
        (linear order); the grid file honours every key's condition
        individually (the n-dimensional selection path).  ``reverse``
        flips the scan direction when no explicit conditions are given —
        a convenience mirroring ``SortOrder.iterate(reverse=...)``;
        callers with explicit conditions set ``descending`` per key
        instead (as the direction-aware sort scan does).  A reverse
        B*-tree walk keeps the surrogate tie-break ascending within
        equal keys (see :meth:`BStarTree.range`), so descending
        access-path scans agree with the stable sort on ties.
        """
        if conditions is None:
            conditions = [KeyCondition(descending=reverse)] + \
                [KeyCondition() for _ in self.attrs[1:]]
        if len(conditions) != len(self.attrs):
            raise AccessError(
                f"access path {self.name!r} needs {len(self.attrs)} key "
                f"conditions, got {len(conditions)}"
            )
        if isinstance(self._index, GridFile):
            yield from self._index.box(conditions)
            return
        first = conditions[0]
        rest = conditions[1:]
        for key, surrogate in self._index.range(
            start=first.start, stop=first.stop,
            include_start=first.include_start,
            include_stop=first.include_stop,
            reverse=first.descending,
        ):
            values = key.values
            if self._qualifies_rest(values[1:], rest):
                yield values, surrogate

    @staticmethod
    def _qualifies_rest(values: tuple, conditions: list[KeyCondition]) -> bool:
        from repro.access.btree import make_key
        for value, cond in zip(values, conditions):
            if cond.start is not None:
                lo = make_key(cond.start)
                v = make_key(value)
                if v < lo or (v == lo and not cond.include_start):
                    return False
            if cond.stop is not None:
                hi = make_key(cond.stop)
                v = make_key(value)
                if hi < v or (v == hi and not cond.include_stop):
                    return False
        return True
