"""Sort orders: redundant sorted record lists (paper, 3.2).

A *sort order* consists of a sorted list of physical records, one for each
atom of the respective type.  It supports the sort scan: reading all atoms
in a user-defined order according to a specified sort criterion without
sorting at query time.  The sort scan also works *without* such a support
structure — it then sorts explicitly into a temporary order (benchmark A3
measures the difference).

The record copies live in their own container; the order itself is kept in
a B*-tree over the sort key, so inserts keep the list sorted and range
restrictions (start/stop conditions) are cheap.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.access.address import AddressTable, RecordId
from repro.access.btree import BStarTree
from repro.access.container import RecordContainer
from repro.access.encoding import decode_atom, encode_atom
from repro.access.structure import StorageStructure
from repro.mad.schema import AtomType
from repro.mad.types import Surrogate
from repro.storage.system import StorageSystem


class SortOrder(StorageStructure):
    """Redundant copy of one atom type, sorted by a key attribute list."""

    kind = "sort_order"
    deferred = True

    def __init__(self, name: str, atom_type: AtomType, sort_attrs: list[str],
                 storage: StorageSystem, addresses: AddressTable,
                 page_size: int = 8192) -> None:
        super().__init__(name, atom_type.name)
        for attr in sort_attrs:
            atom_type.attr(attr)    # raises on unknown attributes
        self.sort_attrs = tuple(sort_attrs)
        self._identifier_attr = atom_type.identifier_attr
        self._addresses = addresses
        self._container = RecordContainer(
            storage, f"so_{name}", page_size=page_size
        )
        self._index = BStarTree()

    # -- helpers ------------------------------------------------------------------

    def key_of(self, values: dict[str, Any]) -> tuple:
        return tuple(values.get(attr) for attr in self.sort_attrs)

    @property
    def record_count(self) -> int:
        return self._container.record_count

    # -- maintenance hooks -------------------------------------------------------------

    def on_insert(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        stored = dict(values)
        stored[self._identifier_attr] = surrogate
        record_id = self._container.insert(encode_atom(stored))
        self._addresses.place(surrogate, self.structure_id, record_id)
        self._index.insert(self.key_of(values), surrogate)

    def on_delete(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        placement = self._addresses.placement(surrogate, self.structure_id)
        if placement is not None:
            self._container.delete(placement.record)
            self._addresses.unplace(surrogate, self.structure_id)
        self._index.delete(self.key_of(values), surrogate)

    def on_modify(self, surrogate: Surrogate, old: dict[str, Any],
                  new: dict[str, Any]) -> None:
        # Keep the *order* correct immediately (it is an in-memory index);
        # the record copy itself is refreshed later (deferred update).
        old_key = self.key_of(old)
        new_key = self.key_of(new)
        if old_key != new_key:
            self._index.delete(old_key, surrogate)
            self._index.insert(new_key, surrogate)

    def refresh(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        stored = dict(values)
        stored[self._identifier_attr] = surrogate
        payload = encode_atom(stored)
        placement = self._addresses.placement(surrogate, self.structure_id)
        if placement is None:
            record_id = self._container.insert(payload)
        else:
            record_id = self._container.update(placement.record, payload)
        self._addresses.mark_fresh(surrogate, self.structure_id, record_id)

    # -- scanning support -----------------------------------------------------------------

    def iterate(self, start: Any = None, stop: Any = None,
                include_start: bool = True, include_stop: bool = True,
                reverse: bool = False) -> Iterator[Surrogate]:
        """Surrogates in sort-key order within the start/stop conditions.

        ``reverse=True`` walks the order backwards (descending keys); the
        surrogate tie-break stays ascending either way, so a reverse walk
        equals a stable descending sort.
        """
        for _values, surrogate in self.iterate_entries(
            start=start, stop=stop, include_start=include_start,
            include_stop=include_stop, reverse=reverse,
        ):
            yield surrogate

    def iterate_entries(self, start: Any = None, stop: Any = None,
                        include_start: bool = True, include_stop: bool = True,
                        reverse: bool = False,
                        ) -> Iterator[tuple[tuple, Surrogate]]:
        """(sort-key values, surrogate) pairs in scan order.

        The key values let a caller drive a *dynamic* stop condition
        (e.g. TopK's tightening heap bound) without re-reading atoms.
        """
        for key, surrogate in self._index.range(
            start=start, stop=stop, include_start=include_start,
            include_stop=include_stop, reverse=reverse,
        ):
            yield key.values, surrogate

    def read(self, surrogate: Surrogate) -> dict[str, Any] | None:
        """The sort order's record copy, or None when absent/stale."""
        placement = self._addresses.placement(surrogate, self.structure_id)
        if placement is None or not placement.fresh:
            return None
        return decode_atom(self._container.read(placement.record))

    def drop(self) -> None:
        self._container.clear()
        self._index = BStarTree()
