"""B*-tree access paths (paper, 3.2).

Access paths map attribute values to surrogates.  Linear orders based on
B*-trees allow sequential NEXT/PRIOR traversal and range scans with start
and stop conditions; value orders come for free.

The variant implemented is a B+-tree with doubly linked leaves (the form
"B*-tree" commonly denoted in the German DBMS literature of the time).
Index nodes are memory-resident — the reproduction treats the index as
cached, while the *records* the entries point to live in buffered pages;
all I/O-shape claims are about record access, not index node access.

Keys are tuples of attribute values; duplicate keys are supported by
keeping the referencing surrogate in the entry ordering, which also makes
deletes exact.  ``None`` sorts before every other value (missing attribute
values are indexed lowest).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import AccessError
from repro.mad.types import Surrogate

#: Rank tags giving a total order across the value types that may appear in
#: one key position (None < bool < numbers < strings < surrogates).
_RANKS = {type(None): 0, bool: 1, int: 2, float: 2, str: 3, Surrogate: 4}


def _rank(value: Any) -> int:
    try:
        return _RANKS[type(value)]
    except KeyError:
        raise AccessError(f"value {value!r} cannot be used as a key") from None


class Key:
    """A comparable wrapper over a tuple of attribute values."""

    __slots__ = ("values",)

    def __init__(self, values: tuple[Any, ...]) -> None:
        self.values = values

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Key) and self.values == other.values

    def __hash__(self) -> int:
        return hash(self.values)

    def __lt__(self, other: "Key") -> bool:
        for mine, theirs in zip(self.values, other.values):
            if mine == theirs:
                continue
            my_rank, their_rank = _rank(mine), _rank(theirs)
            if my_rank != their_rank:
                return my_rank < their_rank
            if isinstance(mine, Surrogate):
                return (mine.atom_type, mine.number) < \
                    (theirs.atom_type, theirs.number)
            return mine < theirs
        return len(self.values) < len(other.values)

    def __le__(self, other: "Key") -> bool:
        return self == other or self < other

    def __repr__(self) -> str:
        return f"Key{self.values}"


def make_key(values: Any) -> Key:
    """Build a key from a scalar or a sequence of scalars.

    Every element is validated to belong to the orderable value universe,
    so unusable keys fail at insert time, not during a later comparison.
    """
    if isinstance(values, Key):
        return values
    if isinstance(values, tuple):
        parts = values
    elif isinstance(values, list):
        parts = tuple(values)
    else:
        parts = (values,)
    for part in parts:
        _rank(part)
    return Key(parts)


class _Node:
    __slots__ = ("leaf", "keys", "children", "entries", "next", "prev", "parent")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.keys: list[tuple[Key, Surrogate]] = []   # leaf: composite keys
        self.children: list["_Node"] = []             # inner: fan-out
        self.entries: list[tuple[Key, Surrogate]] = []  # alias of keys (leaf)
        self.next: "_Node | None" = None
        self.prev: "_Node | None" = None
        self.parent: "_Node | None" = None


def _composite_lt(a: tuple[Key, Surrogate], b: tuple[Key, Surrogate]) -> bool:
    if a[0] != b[0]:
        return a[0] < b[0]
    return (a[1].atom_type, a[1].number) < (b[1].atom_type, b[1].number)


def _bisect(entries: list[tuple[Key, Surrogate]],
            item: tuple[Key, Surrogate], right: bool = False) -> int:
    lo, hi = 0, len(entries)
    while lo < hi:
        mid = (lo + hi) // 2
        if right:
            if _composite_lt(item, entries[mid]):
                hi = mid
            else:
                lo = mid + 1
        else:
            if _composite_lt(entries[mid], item):
                lo = mid + 1
            else:
                hi = mid
    return lo


class BStarTree:
    """The access path: ordered map from keys to surrogates."""

    def __init__(self, order: int = 32) -> None:
        if order < 4:
            raise AccessError("B*-tree order must be at least 4")
        self.order = order
        self._root = _Node(leaf=True)
        self._size = 0

    # -- inspection -------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        node, levels = self._root, 1
        while not node.leaf:
            node = node.children[0]
            levels += 1
        return levels

    def _leftmost(self) -> _Node:
        node = self._root
        while not node.leaf:
            node = node.children[0]
        return node

    def _rightmost(self) -> _Node:
        node = self._root
        while not node.leaf:
            node = node.children[-1]
        return node

    # -- point operations -----------------------------------------------------------

    def insert(self, key_values: Any, surrogate: Surrogate) -> None:
        """Add an entry; duplicate (key, surrogate) pairs are rejected."""
        item = (make_key(key_values), surrogate)
        leaf = self._find_leaf(item)
        pos = _bisect(leaf.keys, item)
        if pos < len(leaf.keys) and leaf.keys[pos] == item:
            raise AccessError(f"duplicate index entry {item}")
        leaf.keys.insert(pos, item)
        self._size += 1
        if len(leaf.keys) > self.order:
            self._split(leaf)

    def delete(self, key_values: Any, surrogate: Surrogate) -> None:
        """Remove an entry; raises when it is absent."""
        item = (make_key(key_values), surrogate)
        leaf = self._find_leaf(item)
        pos = _bisect(leaf.keys, item)
        if pos >= len(leaf.keys) or leaf.keys[pos] != item:
            raise AccessError(f"index entry {item} not found")
        leaf.keys.pop(pos)
        self._size -= 1
        self._rebalance(leaf)

    def search(self, key_values: Any) -> list[Surrogate]:
        """All surrogates stored under exactly this key."""
        key = make_key(key_values)
        out = [s for k, s in self.range(start=key, stop=key,
                                        include_start=True, include_stop=True)]
        return out

    def contains(self, key_values: Any, surrogate: Surrogate) -> bool:
        item = (make_key(key_values), surrogate)
        leaf = self._find_leaf(item)
        pos = _bisect(leaf.keys, item)
        return pos < len(leaf.keys) and leaf.keys[pos] == item

    # -- range scans -------------------------------------------------------------------

    def range(self, start: Any = None, stop: Any = None,
              include_start: bool = True, include_stop: bool = True,
              reverse: bool = False) -> Iterator[tuple[Key, Surrogate]]:
        """Entries with start ≤ key ≤ stop in key order (or reversed).

        ``None`` bounds are open; inclusivity flags realise the start/stop
        conditions of the access-path scan.

        A reverse scan delivers *keys* in descending order but keeps the
        surrogate tie-break **ascending** within each run of equal keys:
        equal-key entries arrive in insertion order either way, which is
        exactly what a stable sort with a reversed key produces — so an
        index-backed descending scan and the explicit Sort operator agree
        on ties.
        """
        start_key = None if start is None else make_key(start)
        stop_key = None if stop is None else make_key(stop)

        def in_range(key: Key) -> bool:
            if start_key is not None:
                if key < start_key or (key == start_key and not include_start):
                    return False
            if stop_key is not None:
                if stop_key < key or (key == stop_key and not include_stop):
                    return False
            return True

        if not reverse:
            if start_key is None:
                node, pos = self._leftmost(), 0
            else:
                probe = (start_key, Surrogate("", -(2 ** 62)))
                node = self._find_leaf(probe)
                pos = _bisect(node.keys, probe)
            while node is not None:
                while pos < len(node.keys):
                    key, surrogate = node.keys[pos]
                    if stop_key is not None and stop_key < key:
                        return
                    if in_range(key):
                        yield key, surrogate
                    pos += 1
                node = node.next
                pos = 0
        else:
            def walk_backward() -> Iterator[tuple[Key, Surrogate]]:
                if stop_key is None:
                    node = self._rightmost()
                    pos = len(node.keys) - 1
                else:
                    probe = (stop_key, Surrogate("￿", 2 ** 62))
                    node = self._find_leaf(probe)
                    pos = _bisect(node.keys, probe, right=True) - 1
                while node is not None:
                    while pos >= 0:
                        key, surrogate = node.keys[pos]
                        if start_key is not None and key < start_key:
                            return
                        if in_range(key):
                            yield key, surrogate
                        pos -= 1
                    node = node.prev
                    pos = len(node.keys) - 1 if node is not None else -1

            # Re-establish the ascending surrogate tie-break: the backward
            # walk visits a run of equal keys in descending surrogate
            # order, so buffer each run and emit it reversed.
            run: list[tuple[Key, Surrogate]] = []
            for key, surrogate in walk_backward():
                if run and run[-1][0] != key:
                    yield from reversed(run)
                    run.clear()
                run.append((key, surrogate))
            yield from reversed(run)

    def items(self) -> Iterator[tuple[Key, Surrogate]]:
        """All entries in key order."""
        return self.range()

    # -- structural invariants (used by property tests) ------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError when any B-tree invariant is violated."""
        min_fill = self.order // 2

        def visit(node: _Node, depth: int, leaf_depths: list[int]) -> None:
            if node is not self._root:
                count = len(node.keys) if node.leaf else len(node.children)
                assert count >= (min_fill if node.leaf else 2), \
                    "underfull node"
            if node.leaf:
                leaf_depths.append(depth)
                for a, b in zip(node.keys, node.keys[1:]):
                    assert _composite_lt(a, b), "unsorted leaf"
            else:
                assert len(node.keys) == len(node.children) - 1, \
                    "inner key/child mismatch"
                for child in node.children:
                    assert child.parent is node, "broken parent link"
                    visit(child, depth + 1, leaf_depths)

        leaf_depths: list[int] = []
        visit(self._root, 0, leaf_depths)
        assert len(set(leaf_depths)) <= 1, "leaves at different depths"
        assert self._size == sum(1 for _ in self.items()), "size drift"

    # -- internals ----------------------------------------------------------------------

    def _find_leaf(self, item: tuple[Key, Surrogate]) -> _Node:
        node = self._root
        while not node.leaf:
            pos = _bisect(node.keys, item, right=True)
            node = node.children[pos]
        return node

    def _split(self, node: _Node) -> None:
        mid = len(node.keys) // 2 if node.leaf else len(node.children) // 2
        right = _Node(leaf=node.leaf)
        if node.leaf:
            right.keys = node.keys[mid:]
            node.keys = node.keys[:mid]
            separator = right.keys[0]
            right.next = node.next
            if right.next is not None:
                right.next.prev = right
            node.next = right
            right.prev = node
        else:
            separator = node.keys[mid - 1]
            right.keys = node.keys[mid:]
            right.children = node.children[mid:]
            node.keys = node.keys[:mid - 1]
            node.children = node.children[:mid]
            for child in right.children:
                child.parent = right

        parent = node.parent
        if parent is None:
            new_root = _Node(leaf=False)
            new_root.keys = [separator]
            new_root.children = [node, right]
            node.parent = new_root
            right.parent = new_root
            self._root = new_root
            return
        pos = parent.children.index(node)
        parent.children.insert(pos + 1, right)
        parent.keys.insert(pos, separator)
        right.parent = parent
        if len(parent.children) > self.order:
            self._split(parent)

    def _rebalance(self, node: _Node) -> None:
        min_fill = self.order // 2
        if node is self._root:
            if not node.leaf and len(node.children) == 1:
                self._root = node.children[0]
                self._root.parent = None
            return
        count = len(node.keys) if node.leaf else len(node.children)
        if count >= (min_fill if node.leaf else 2):
            return
        parent = node.parent
        assert parent is not None
        pos = parent.children.index(node)

        # Try borrowing from the left or right sibling.
        if pos > 0:
            left = parent.children[pos - 1]
            if (len(left.keys) if left.leaf else len(left.children)) > \
                    (min_fill if left.leaf else 2):
                self._borrow(parent, pos - 1, from_left=True)
                return
        if pos + 1 < len(parent.children):
            right = parent.children[pos + 1]
            if (len(right.keys) if right.leaf else len(right.children)) > \
                    (min_fill if right.leaf else 2):
                self._borrow(parent, pos, from_left=False)
                return

        # Merge with a sibling.
        if pos > 0:
            self._merge(parent, pos - 1)
        else:
            self._merge(parent, pos)
        self._rebalance(parent)

    def _borrow(self, parent: _Node, sep_index: int, from_left: bool) -> None:
        left = parent.children[sep_index]
        right = parent.children[sep_index + 1]
        if left.leaf:
            if from_left:
                moved = left.keys.pop()
                right.keys.insert(0, moved)
            else:
                moved = right.keys.pop(0)
                left.keys.append(moved)
            parent.keys[sep_index] = right.keys[0]
        else:
            if from_left:
                moved_child = left.children.pop()
                moved_key = left.keys.pop()
                right.children.insert(0, moved_child)
                right.keys.insert(0, parent.keys[sep_index])
                parent.keys[sep_index] = moved_key
                moved_child.parent = right
            else:
                moved_child = right.children.pop(0)
                moved_key = right.keys.pop(0)
                left.children.append(moved_child)
                left.keys.append(parent.keys[sep_index])
                parent.keys[sep_index] = moved_key
                moved_child.parent = left

    def _merge(self, parent: _Node, sep_index: int) -> None:
        left = parent.children[sep_index]
        right = parent.children[sep_index + 1]
        if left.leaf:
            left.keys.extend(right.keys)
            left.next = right.next
            if right.next is not None:
                right.next.prev = left
        else:
            left.keys.append(parent.keys[sep_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
            for child in right.children:
                child.parent = left
        parent.keys.pop(sep_index)
        parent.children.pop(sep_index + 1)
