"""Binary encoding of atoms into physical records.

Physical records are *byte strings of variable length* (paper, 3.2).  The
encoding is self-describing (tag + payload per value) so that partitions —
records holding only an attribute subset — and cluster records can be
decoded without consulting the schema.  An encoded atom is a small
dictionary image::

    u8  tag ATOM
    u16 attribute count
    per attribute: name (STR), value (tagged)

All integers little-endian; strings UTF-8 with u32 length prefixes.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import AccessError
from repro.mad.types import Surrogate

_TAG_NULL = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_STR = 3
_TAG_BOOL_TRUE = 4
_TAG_BOOL_FALSE = 5
_TAG_BYTES = 6
_TAG_LIST = 7
_TAG_DICT = 8
_TAG_SURROGATE = 9
_TAG_ATOM = 10

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")


def _encode_value(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_TAG_NULL)
    elif isinstance(value, bool):
        out.append(_TAG_BOOL_TRUE if value else _TAG_BOOL_FALSE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        out += _I64.pack(value)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_TAG_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out.append(_TAG_BYTES)
        out += _U32.pack(len(value))
        out += bytes(value)
    elif isinstance(value, Surrogate):
        raw = value.atom_type.encode("utf-8")
        out.append(_TAG_SURROGATE)
        out += _U16.pack(len(raw))
        out += raw
        out += _I64.pack(value.number)
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        out += _U32.pack(len(value))
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        out += _U32.pack(len(value))
        for key in value:
            if not isinstance(key, str):
                raise AccessError(f"record field name must be str, got {key!r}")
            _encode_value(key, out)
            _encode_value(value[key], out)
    else:
        raise AccessError(f"value {value!r} of type {type(value).__name__} "
                          f"is not encodable")


def _decode_value(data: bytes, pos: int) -> tuple[Any, int]:
    tag = data[pos]
    pos += 1
    if tag == _TAG_NULL:
        return None, pos
    if tag == _TAG_BOOL_TRUE:
        return True, pos
    if tag == _TAG_BOOL_FALSE:
        return False, pos
    if tag == _TAG_INT:
        return _I64.unpack_from(data, pos)[0], pos + 8
    if tag == _TAG_FLOAT:
        return _F64.unpack_from(data, pos)[0], pos + 8
    if tag == _TAG_STR:
        length = _U32.unpack_from(data, pos)[0]
        pos += 4
        return data[pos:pos + length].decode("utf-8"), pos + length
    if tag == _TAG_BYTES:
        length = _U32.unpack_from(data, pos)[0]
        pos += 4
        return bytes(data[pos:pos + length]), pos + length
    if tag == _TAG_SURROGATE:
        name_len = _U16.unpack_from(data, pos)[0]
        pos += 2
        atom_type = data[pos:pos + name_len].decode("utf-8")
        pos += name_len
        number = _I64.unpack_from(data, pos)[0]
        return Surrogate(atom_type, number), pos + 8
    if tag == _TAG_LIST:
        count = _U32.unpack_from(data, pos)[0]
        pos += 4
        items = []
        for _ in range(count):
            item, pos = _decode_value(data, pos)
            items.append(item)
        return items, pos
    if tag == _TAG_DICT:
        count = _U32.unpack_from(data, pos)[0]
        pos += 4
        record: dict[str, Any] = {}
        for _ in range(count):
            key, pos = _decode_value(data, pos)
            value, pos = _decode_value(data, pos)
            record[key] = value
        return record, pos
    raise AccessError(f"corrupt record: unknown value tag {tag} at byte {pos - 1}")


def encode_atom(values: dict[str, Any]) -> bytes:
    """Encode an attribute-value dict into a physical-record byte string."""
    out = bytearray()
    out.append(_TAG_ATOM)
    out += _U16.pack(len(values))
    for name, value in values.items():
        _encode_value(name, out)
        _encode_value(value, out)
    return bytes(out)


def decode_atom(data: bytes) -> dict[str, Any]:
    """Decode a physical record back into an attribute-value dict."""
    if not data or data[0] != _TAG_ATOM:
        raise AccessError("corrupt record: missing atom tag")
    count = _U16.unpack_from(data, 1)[0]
    pos = 3
    values: dict[str, Any] = {}
    for _ in range(count):
        name, pos = _decode_value(data, pos)
        value, pos = _decode_value(data, pos)
        values[name] = value
    if pos != len(data):
        raise AccessError(
            f"corrupt record: {len(data) - pos} trailing bytes"
        )
    return values


def encoded_size(values: dict[str, Any]) -> int:
    """Size in bytes of the encoded form of ``values``."""
    return len(encode_atom(values))
