"""Partitions: separate storage of attribute combinations (paper, 3.2).

The projection of frequently used attributes may be supported by means of
*partitions*, i.e. separate storage of attribute combinations — a physical
record then corresponds to a *part* of an atom.  Partitions collect the
results of projections; reading a partition record transfers far fewer
bytes than reading the whole atom (benchmark A4).

Partitions are deferred-update structures: a modify touches only the base
copy; the partition record is refreshed later (or lazily on read).
"""

from __future__ import annotations

from typing import Any

from repro.access.address import AddressTable, RecordId
from repro.access.container import RecordContainer
from repro.access.encoding import decode_atom, encode_atom
from repro.access.structure import StorageStructure
from repro.errors import SchemaError
from repro.mad.schema import AtomType
from repro.mad.types import Surrogate
from repro.storage.system import StorageSystem


class Partition(StorageStructure):
    """Vertical partition of one atom type over a fixed attribute subset."""

    kind = "partition"
    deferred = True

    def __init__(self, name: str, atom_type: AtomType, attrs: list[str],
                 storage: StorageSystem, addresses: AddressTable,
                 page_size: int = 2048) -> None:
        super().__init__(name, atom_type.name)
        for attr in attrs:
            atom_type.attr(attr)     # raises on unknown attributes
        if atom_type.identifier_attr in attrs:
            raise SchemaError(
                "the IDENTIFIER attribute is stored implicitly; do not list it"
            )
        self.attrs = tuple(attrs)
        self._identifier_attr = atom_type.identifier_attr
        self._addresses = addresses
        self._container = RecordContainer(
            storage, f"pt_{name}", page_size=page_size
        )

    # -- queries used by the optimizer --------------------------------------------

    def covers(self, requested: list[str] | tuple[str, ...]) -> bool:
        """True when every requested attribute is stored in this partition
        (the IDENTIFIER is always available)."""
        stored = set(self.attrs) | {self._identifier_attr}
        return set(requested) <= stored

    @property
    def record_count(self) -> int:
        return self._container.record_count

    # -- maintenance hooks ------------------------------------------------------------

    def _project(self, surrogate: Surrogate,
                 values: dict[str, Any]) -> dict[str, Any]:
        out: dict[str, Any] = {self._identifier_attr: surrogate}
        for attr in self.attrs:
            out[attr] = values.get(attr)
        return out

    def on_insert(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        record_id = self._container.insert(
            encode_atom(self._project(surrogate, values))
        )
        self._addresses.place(surrogate, self.structure_id, record_id)

    def on_delete(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        placement = self._addresses.placement(surrogate, self.structure_id)
        if placement is not None:
            self._container.delete(placement.record)
            self._addresses.unplace(surrogate, self.structure_id)

    def on_modify(self, surrogate: Surrogate, old: dict[str, Any],
                  new: dict[str, Any]) -> None:
        # Deferred: the base copy was already rewritten by the atom
        # manager; our record is refreshed later via refresh().
        return

    def refresh(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        placement = self._addresses.placement(surrogate, self.structure_id)
        payload = encode_atom(self._project(surrogate, values))
        if placement is None:
            record_id = self._container.insert(payload)
        else:
            record_id = self._container.update(placement.record, payload)
        self._addresses.mark_fresh(surrogate, self.structure_id, record_id)

    # -- reads --------------------------------------------------------------------------

    def read(self, surrogate: Surrogate) -> dict[str, Any] | None:
        """The partition's copy, or None when absent/stale."""
        placement = self._addresses.placement(surrogate, self.structure_id)
        if placement is None or not placement.fresh:
            return None
        return decode_atom(self._container.read(placement.record))

    def drop(self) -> None:
        self._container.clear()
