"""Deferred update of redundant storage structures (paper, 3.2).

Storage redundancy may introduce substantial overhead when an atom is
modified (and necessarily all its allocated physical records).  To limit
the amount of *immediate* overhead, during an update operation only one
physical record — the base copy — is modified, whereas all others are
modified later: the affected placements are marked stale and a refresh task
is queued here.

Propagation runs when :meth:`propagate` is called (benchmarks call it at a
controlled point; the facade calls it at commit) or lazily when a stale
copy is about to be read.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro.access.structure import StorageStructure
from repro.mad.types import Surrogate
from repro.util.stats import Counters


class DeferredUpdateManager:
    """Queue of pending refreshes of redundant records."""

    def __init__(self, read_base: Callable[[Surrogate], dict[str, Any]],
                 counters: Counters | None = None) -> None:
        #: Reads the authoritative (base) state of an atom.
        self._read_base = read_base
        self.counters = counters if counters is not None else Counters()
        #: (structure id, surrogate) -> structure, insertion-ordered so the
        #: propagation order is deterministic.
        self._pending: OrderedDict[tuple[str, Surrogate], StorageStructure]
        self._pending = OrderedDict()

    # -- queueing ---------------------------------------------------------------

    def defer(self, structure: StorageStructure, surrogate: Surrogate) -> None:
        """Queue a refresh of ``surrogate``'s copy in ``structure``."""
        key = (structure.structure_id, surrogate)
        self._pending.pop(key, None)   # re-queue at the tail
        self._pending[key] = structure
        self.counters.bump("deferred_queued")

    def cancel(self, structure_id: str, surrogate: Surrogate) -> None:
        """Drop a pending refresh (the atom was deleted)."""
        self._pending.pop((structure_id, surrogate), None)

    def cancel_all(self, structure_id: str) -> None:
        """Drop every pending refresh of one structure (it was dropped)."""
        for key in [k for k in self._pending if k[0] == structure_id]:
            del self._pending[key]

    # -- inspection --------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def is_pending(self, structure_id: str, surrogate: Surrogate) -> bool:
        return (structure_id, surrogate) in self._pending

    # -- propagation ---------------------------------------------------------------

    def propagate(self, limit: int | None = None) -> int:
        """Refresh up to ``limit`` pending copies (all when None).

        Returns the number of refreshes performed.
        """
        done = 0
        while self._pending and (limit is None or done < limit):
            key = next(iter(self._pending))
            structure = self._pending.pop(key)
            _structure_id, surrogate = key
            values = self._read_base(surrogate)
            structure.refresh(surrogate, values)
            self.counters.bump("deferred_propagated")
            done += 1
        return done

    def propagate_one(self, structure: StorageStructure,
                      surrogate: Surrogate) -> bool:
        """Refresh one specific pending copy (lazy, read-triggered path).

        Returns True when a refresh was performed.
        """
        key = (structure.structure_id, surrogate)
        if key not in self._pending:
            return False
        del self._pending[key]
        values = self._read_base(surrogate)
        structure.refresh(surrogate, values)
        self.counters.bump("deferred_propagated_lazy")
        return True
