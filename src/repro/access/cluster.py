"""Atom clusters: materialised molecules in physical contiguity (Fig. 3.2).

In order to speed up construction of frequently used molecules, atoms of
the 'main lanes' to be traversed during molecule derivation are allocated
in physical contiguity (paper, 3.2).  An atom-cluster type is declared by
naming the atom types whose atoms are to be clustered; each cluster is
defined by a *characteristic atom* containing references to all member
atoms, grouped by atom type.

The reproduction follows Fig. 3.2 exactly:

a) logical view — the characteristic atom references the members;
b) one **physical record** holds the characteristic atom plus the encoded
   member atoms (the n:m atom↔record mapping);
c) the record is mapped onto a **page sequence**, whose header plus an
   auxiliary directory provide relative addressing, so a single member atom
   can be fetched without reassembling the whole cluster.

Record layout::

    u32 header length
    header  = encoded dict {root, members: {label: [surrogates]},
                            directory: [[surrogate, label, offset, length]]}
    payload = concatenated encoded member atoms (offsets relative to
              payload start)

Clusters are deferred-update structures: when any member atom changes, the
affected clusters are marked stale and rebuilt later (or lazily on read).
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Any, Iterator

from repro.access.encoding import decode_atom, encode_atom
from repro.access.structure import StorageStructure
from repro.errors import AccessError
from repro.mad.molecule import StructureNode
from repro.mad.types import Surrogate, reference_values
from repro.storage.page import PageId
from repro.storage.system import StorageSystem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.access.atoms import AtomManager

_U32 = struct.Struct("<I")


class AtomCluster(StorageStructure):
    """An atom-cluster type over a molecule structure."""

    kind = "cluster"
    deferred = True

    def __init__(self, name: str, structure: StructureNode,
                 manager: "AtomManager", storage: StorageSystem,
                 page_size: int = 8192) -> None:
        super().__init__(name, structure.atom_type)
        self.structure = structure
        self._manager = manager
        self._storage = storage
        self._segment = f"cl_{name}"
        if not storage.segments.exists(self._segment):
            storage.create_segment(self._segment, page_size)
        #: root surrogate -> header page of the cluster's page sequence.
        self._sequences: dict[Surrogate, PageId] = {}
        #: member surrogate -> roots of the clusters containing it.
        self._member_roots: dict[Surrogate, set[Surrogate]] = {}
        #: clusters whose record no longer matches the base data.
        self._stale: set[Surrogate] = set()

    # -- structure interface --------------------------------------------------------

    @property
    def watched_types(self) -> tuple[str, ...]:
        return tuple(self.structure.atom_types())

    @property
    def cluster_count(self) -> int:
        return len(self._sequences)

    def roots(self) -> list[Surrogate]:
        """Characteristic atoms (cluster roots) in surrogate order."""
        return sorted(self._sequences)

    def is_stale(self, root: Surrogate) -> bool:
        return root in self._stale

    # -- maintenance hooks -------------------------------------------------------------

    def on_insert(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        if surrogate.atom_type == self.atom_type:
            self.materialize(surrogate)

    def on_delete(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        if surrogate.atom_type == self.atom_type and \
                surrogate in self._sequences:
            self._drop_cluster(surrogate)
            return
        for root in sorted(self._member_roots.get(surrogate, set())):
            # Deleting a member atom deletes it from the cluster; the
            # back-reference machinery has already disconnected it, so a
            # rebuild reflects the new membership.
            self.materialize(root)

    def on_modify(self, surrogate: Surrogate, old: dict[str, Any],
                  new: dict[str, Any]) -> None:
        if surrogate.atom_type == self.atom_type and \
                surrogate in self._sequences:
            self._stale.add(surrogate)
        for root in self._member_roots.get(surrogate, set()):
            self._stale.add(root)

    def refresh(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        """Deferred-update propagation: rebuild every affected cluster."""
        targets: set[Surrogate] = set()
        if surrogate.atom_type == self.atom_type and \
                surrogate in self._sequences:
            targets.add(surrogate)
        targets |= self._member_roots.get(surrogate, set())
        for root in sorted(targets & self._stale):
            self.materialize(root)

    def drop(self) -> None:
        self._sequences.clear()
        self._member_roots.clear()
        self._stale.clear()
        self._storage.drop_segment(self._segment)

    # -- materialisation -----------------------------------------------------------------

    def derive_members(self, root: Surrogate) -> list[tuple[str, Surrogate]]:
        """Traverse the structure from ``root``; returns (label, surrogate)
        pairs in derivation order, duplicates removed."""
        out: list[tuple[str, Surrogate]] = []
        seen: set[tuple[str, Surrogate]] = set()

        def visit(node: StructureNode, atoms: list[Surrogate]) -> None:
            for surrogate in atoms:
                entry = (node.label, surrogate)
                if entry in seen:
                    continue
                seen.add(entry)
                out.append(entry)
            for child in node.children:
                assert child.via is not None
                attr = child.via.source_attr
                next_atoms: list[Surrogate] = []
                for surrogate in atoms:
                    values = self._manager.get(surrogate)
                    attr_type = self._manager.schema \
                        .atom_type(surrogate.atom_type).attr(attr)
                    next_atoms.extend(
                        reference_values(attr_type, values.get(attr))
                    )
                visit(child, next_atoms)
            if node.recursive and node.via is not None:
                attr = node.via.source_attr
                frontier = atoms
                while frontier:
                    next_atoms = []
                    for surrogate in frontier:
                        values = self._manager.get(surrogate)
                        attr_type = self._manager.schema \
                            .atom_type(surrogate.atom_type).attr(attr)
                        for target in reference_values(attr_type,
                                                       values.get(attr)):
                            entry = (node.label, target)
                            if entry not in seen:
                                seen.add(entry)
                                out.append(entry)
                                next_atoms.append(target)
                    frontier = next_atoms

        visit(self.structure, [root])
        return out

    def materialize(self, root: Surrogate) -> None:
        """(Re)build the cluster record of ``root`` on its page sequence."""
        if not self._manager.exists(root):
            return
        members = self.derive_members(root)

        payload_parts: list[bytes] = []
        directory: list[list[Any]] = []
        grouped: dict[str, list[Surrogate]] = {}
        offset = 0
        for label, surrogate in members:
            encoded = encode_atom(self._manager.get(surrogate))
            directory.append([surrogate, label, offset, len(encoded)])
            payload_parts.append(encoded)
            offset += len(encoded)
            grouped.setdefault(label, []).append(surrogate)

        header = encode_atom({
            "root": root,
            "members": {label: list(s) for label, s in grouped.items()},
            "directory": directory,
        })
        record = _U32.pack(len(header)) + header + b"".join(payload_parts)

        sequence = self._sequences.get(root)
        if sequence is None:
            sequence = self._storage.sequences.create(self._segment)
            self._sequences[root] = sequence
        self._storage.sequences.write(sequence, record)

        # Refresh the member → roots index.
        for surrogate, roots in list(self._member_roots.items()):
            roots.discard(root)
            if not roots:
                del self._member_roots[surrogate]
        for _label, surrogate in members:
            if surrogate != root:
                self._member_roots.setdefault(surrogate, set()).add(root)
        self._stale.discard(root)

    def _drop_cluster(self, root: Surrogate) -> None:
        sequence = self._sequences.pop(root)
        self._storage.sequences.drop(sequence)
        for surrogate, roots in list(self._member_roots.items()):
            roots.discard(root)
            if not roots:
                del self._member_roots[surrogate]
        self._stale.discard(root)

    # -- reads -------------------------------------------------------------------------------

    def _ensure_fresh(self, root: Surrogate) -> PageId:
        if root not in self._sequences:
            raise AccessError(
                f"cluster {self.name!r} has no cluster rooted at {root}"
            )
        if root in self._stale:
            # Lazy propagation: a stale record must not serve reads.
            self._manager.deferred.propagate_one(self, root)
            if root in self._stale:
                self.materialize(root)
        return self._sequences[root]

    def characteristic(self, root: Surrogate) -> dict[str, Any]:
        """The characteristic atom: references to all members, grouped by
        type (Fig. 3.2a)."""
        sequence = self._ensure_fresh(root)
        header_len = _U32.unpack(
            self._storage.sequences.read_slice(sequence, 0, 4)
        )[0]
        header = decode_atom(
            self._storage.sequences.read_slice(sequence, 4, header_len)
        )
        return {"root": header["root"], "members": header["members"]}

    def read_cluster(self, root: Surrogate,
                     chained: bool = True) -> dict[str, list[dict[str, Any]]]:
        """All member atoms, grouped by structure label, in **one** page-
        sequence transfer (chained I/O)."""
        sequence = self._ensure_fresh(root)
        record = self._storage.sequences.read(sequence, chained=chained)
        header_len = _U32.unpack_from(record, 0)[0]
        header = decode_atom(bytes(record[4:4 + header_len]))
        payload_start = 4 + header_len
        out: dict[str, list[dict[str, Any]]] = {}
        for _surrogate, label, offset, length in header["directory"]:
            start = payload_start + offset
            atom = decode_atom(bytes(record[start:start + length]))
            out.setdefault(label, []).append(atom)
        return out

    def read_member(self, root: Surrogate,
                    member: Surrogate) -> dict[str, Any]:
        """Direct access to a single member atom via relative addressing —
        only the pages covering the atom are touched (Fig. 3.2c)."""
        sequence = self._ensure_fresh(root)
        header_len = _U32.unpack(
            self._storage.sequences.read_slice(sequence, 0, 4)
        )[0]
        header = decode_atom(
            self._storage.sequences.read_slice(sequence, 4, header_len)
        )
        for surrogate, _label, offset, length in header["directory"]:
            if surrogate == member:
                start = 4 + header_len + offset
                return decode_atom(
                    self._storage.sequences.read_slice(sequence, start, length)
                )
        raise AccessError(
            f"atom {member} is not a member of the cluster rooted at {root}"
        )

    def members_of(self, root: Surrogate,
                   atom_type: str | None = None) -> Iterator[Surrogate]:
        """Member surrogates of one cluster (optionally one type only)."""
        char = self.characteristic(root)
        for label, surrogates in sorted(char["members"].items()):
            for surrogate in surrogates:
                if atom_type is None or surrogate.atom_type == atom_type:
                    yield surrogate
