"""Abstract interface of the LDL-installable tuning structures.

All tuning mechanisms — atom clusters as well as access paths, sort orders,
and partitions — generate *additional storage structures* which materialise
homogeneous or heterogeneous result sets (paper, 3.2).  Such a redundant
structure may be generated and dropped at any time; it is maintained by the
access system and invisible at the MAD interface.

Concrete structures implement this interface; the atom manager calls the
hooks on every atom operation.  A structure with ``deferred = True`` is not
rewritten during a modify — the placement is merely marked stale and a
refresh is queued (deferred update), limiting the immediate overhead of
redundancy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.mad.types import Surrogate


class StorageStructure(ABC):
    """One redundant storage structure over a single atom type."""

    #: Structure kind tag: 'access_path', 'sort_order', 'partition', 'cluster'.
    kind: str = "?"
    #: True when modifies are propagated lazily (deferred update).
    deferred: bool = False

    def __init__(self, name: str, atom_type: str) -> None:
        self.name = name
        self.atom_type = atom_type

    @property
    def structure_id(self) -> str:
        """Key under which placements are filed in the address table."""
        return f"{self.kind}:{self.name}"

    @property
    def watched_types(self) -> tuple[str, ...]:
        """Atom types whose operations this structure must observe.

        Single-type structures watch only their own type; atom clusters
        watch every member type of their heterogeneous atom set.
        """
        return (self.atom_type,)

    # -- maintenance hooks -------------------------------------------------------

    @abstractmethod
    def on_insert(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        """A new atom of the structure's type was inserted."""

    @abstractmethod
    def on_delete(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        """An atom was deleted (``values`` is its last stored state)."""

    @abstractmethod
    def on_modify(self, surrogate: Surrogate, old: dict[str, Any],
                  new: dict[str, Any]) -> None:
        """An atom changed.  Immediate structures update their copy here;
        deferred structures only adjust in-memory indexes — the record
        refresh happens in :meth:`refresh`."""

    def refresh(self, surrogate: Surrogate, values: dict[str, Any]) -> None:
        """Bring the structure's copy of the atom up to date (deferred
        update propagation).  Default: nothing to do."""

    @abstractmethod
    def drop(self) -> None:
        """Release all storage held by the structure."""
