"""The PRIMA facade: one object wiring all kernel layers together.

The conceptually simplest system structure uses PRIMA without additional
components as a 'complete' DBMS: the services at the MAD interface are
directly made available to its users (paper, section 4).  :class:`Prima`
is that configuration — storage system, access system, and data system
stacked per Fig. 3.1, plus the LDL entry point for the administrator.

    >>> db = Prima()
    >>> db.execute("CREATE ATOM_TYPE city (city_id: IDENTIFIER, "
    ...            "name: CHAR_VAR) KEYS_ARE (name)")
    ResultSet(affected=0)
    >>> db.execute("INSERT city (name = 'Kaiserslautern')").inserted
    city#1
    >>> len(db.query("SELECT ALL FROM city"))
    1
"""

from __future__ import annotations

from typing import Any

from repro.access.integrity import Violation, verify_database
from repro.access.system import AccessSystem
from repro.data.executor import DataSystem
from repro.data.result import ResultSet
from repro.data.validation import MoleculeTypeCatalog
from repro.errors import PrimaError
from repro.ldl.executor import LdlExecutor
from repro.mad.schema import Schema
from repro.mad.types import Surrogate
from repro.mql.parser import parse, parse_script
from repro.storage.disk import DiskGeometry
from repro.storage.system import StorageSystem


class Prima:
    """A complete single-user PRIMA instance."""

    def __init__(self, buffer_capacity: int = 256 * 8192,
                 policy: str = "modified-lru",
                 partitioned_buffer: bool = False,
                 geometry: DiskGeometry | None = None) -> None:
        self.storage = StorageSystem(
            buffer_capacity=buffer_capacity, policy=policy,
            partitioned=partitioned_buffer, geometry=geometry,
        )
        self.schema = Schema()
        self.access = AccessSystem(self.storage, self.schema)
        self.catalog = MoleculeTypeCatalog()
        self.data = DataSystem(self.access, self.catalog)
        self.ldl = LdlExecutor(self.access, self.data.validator)
        #: Network accounting of attached serving endpoints (see
        #: :meth:`attach_network`); summed into :meth:`io_report`.
        self._network_stats: list[Any] = []

    # -- MQL ----------------------------------------------------------------------

    def execute(self, mql: str) -> ResultSet:
        """Parse and execute one MQL statement."""
        return self.data.execute(parse(mql))

    def execute_script(self, mql: str) -> list[ResultSet]:
        """Parse and execute a ';'-separated MQL script.

        Each SELECT is drained before the next statement runs, so a later
        DML statement cannot mutate atoms under an open cursor.
        """
        results = []
        for statement in parse_script(mql):
            result = self.data.execute(statement)
            result.materialize()
            results.append(result)
        return results

    def query(self, mql: str) -> ResultSet:
        """Alias of :meth:`execute` for read-only statements.

        SELECTs return a **lazy** :class:`ResultSet`: a cursor over the
        compiled operator pipeline that constructs molecules as they are
        pulled (``for m in result``); ``len()``/indexing materialise on
        demand.
        """
        return self.execute(mql)

    def stream(self, mql: str) -> ResultSet:
        """One-molecule-at-a-time cursor over a SELECT (the paper's MAD
        interface contract): molecules are constructed on demand via
        ``fetch_next()``/iteration, and ``close()`` cancels the remaining
        work deterministically."""
        return self.execute(mql)

    def explain(self, mql: str, analyze: bool = False) -> str:
        """The processing plan of a SELECT.

        With ``analyze=False`` (the default) the plan is rendered without
        executing anything.  With ``analyze=True`` the compiled pipeline
        is executed to exhaustion and the rendered operator tree carries
        each operator's measured row count and self wall-time (the same
        quantities the ``operator_rows:*`` / ``operator_time:*`` counters
        accumulate in :meth:`io_report`).
        """
        statement = parse(mql)
        from repro.mql.ast import SelectStatement
        if not isinstance(statement, SelectStatement):
            raise PrimaError("EXPLAIN supports SELECT statements only")
        self.data._ensure_symmetry()  # noqa: SLF001
        plan = self.data.plan_select(statement)
        if not analyze:
            return plan.explain()
        pipeline = plan.compile(self.data)
        try:
            while pipeline.next() is not None:
                pass
        finally:
            pipeline.close()
        lines = [plan.explain(), "  analyzed:"]
        lines.extend("    " + line
                     for line in pipeline.render_tree(analyze=True))
        return "\n".join(lines)

    # -- LDL ------------------------------------------------------------------------

    def execute_ldl(self, ldl: str) -> list[str]:
        """Execute a ';'-separated LDL script (tuning structures)."""
        self.data._ensure_symmetry()  # noqa: SLF001
        return self.ldl.execute_script(ldl)

    # -- programmatic atom access (the access-system interface) ----------------------

    def insert_atom(self, type_name: str,
                    values: dict[str, Any] | None = None) -> Surrogate:
        """Insert one atom directly (bypassing MQL)."""
        return self.access.insert(type_name, values)

    def get_atom(self, surrogate: Surrogate,
                 attrs: list[str] | None = None) -> dict[str, Any]:
        """Read one atom directly."""
        return self.access.get(surrogate, attrs)

    def modify_atom(self, surrogate: Surrogate,
                    values: dict[str, Any]) -> None:
        """Modify one atom directly."""
        self.access.modify(surrogate, values)

    def delete_atom(self, surrogate: Surrogate) -> None:
        """Delete one atom directly."""
        self.access.delete(surrogate)

    # -- serving ------------------------------------------------------------------------

    def serve(self, model=None, max_sessions: int = 8,
              admission: str = "reject",
              queue_timeout: float | None = None,
              fetch_size: int | None = None):
        """A :class:`~repro.serve.SessionManager` over this instance.

        The serving layer multiplexes many concurrent client sessions
        onto this PRIMA: each session gets its own transaction/lock
        scope, queries stream through remote cursors (OPEN / FETCH(n) /
        CLOSE over the coupling network's cost model, double-buffered),
        and admission control bounds concurrency.  Knobs:

        * ``max_sessions`` — concurrent-session bound;
        * ``admission`` — ``'reject'`` (raise at the limit) or
          ``'queue'`` (wait for a slot, optionally ``queue_timeout``);
        * ``fetch_size`` — default cursor batch size (None: whole set in
          the open response, the set-oriented one-message-pair mode);
        * ``model`` — the :class:`~repro.coupling.NetworkModel` billed.

        The manager's network counters surface in :meth:`io_report` as
        ``net_messages`` / ``net_bytes`` / ``net_comm_time_ms``.
        """
        from repro.serve import SessionManager
        return SessionManager(self, model=model, max_sessions=max_sessions,
                              admission=admission,
                              queue_timeout=queue_timeout,
                              default_fetch_size=fetch_size)

    def attach_network(self, stats) -> None:
        """Register a serving endpoint's :class:`NetworkStats` so its
        communication counters appear in :meth:`io_report`."""
        if stats not in self._network_stats:
            self._network_stats.append(stats)

    # -- optimizer meta-data -----------------------------------------------------------

    def analyze(self, type_name: str | None = None) -> int:
        """Collect optimizer statistics (cardinalities, value ranges,
        association fan-outs); returns the atoms examined.  See
        :mod:`repro.data.statistics`."""
        return self.data.statistics.analyze(type_name)

    # -- introspection ----------------------------------------------------------------

    def dump_ddl(self) -> str:
        """Regenerate the MQL DDL of the current catalog (round-trips
        through the parser; see :mod:`repro.mad.ddl`)."""
        from repro.mad.ddl import dump_schema
        return dump_schema(self.schema, self.catalog)

    # -- persistence -------------------------------------------------------------------

    def save(self, path) -> int:
        """Checkpoint this instance to a file (see repro.persistence)."""
        from repro.persistence import save
        return save(self, path)

    @staticmethod
    def load(path) -> "Prima":
        """Restore a checkpointed instance (see repro.persistence)."""
        from repro.persistence import load
        return load(path)

    # -- maintenance ---------------------------------------------------------------------

    def commit(self) -> None:
        """Propagate deferred updates and flush dirty pages."""
        self.access.propagate_deferred()
        self.storage.flush()

    def verify_integrity(self) -> list[Violation]:
        """Run the database-wide structural-integrity verification."""
        return verify_database(self.access.atoms)

    def io_report(self) -> dict[str, Any]:
        """Disk/buffer/access counters for benchmark reporting.

        When serving endpoints are attached (:meth:`attach_network`),
        their communication accounting is summed in as ``net_messages``,
        ``net_bytes`` and ``net_comm_time_ms`` — the coupling-network
        counters alongside the operator/scan counters.
        """
        report = dict(self.storage.io_report())
        report.update(self.access.counters.snapshot())
        if self._network_stats:
            messages = nbytes = 0
            comm_ms = 0.0
            for stats in self._network_stats:
                snapshot = stats.snapshot()
                messages += snapshot["messages"]
                nbytes += snapshot["bytes_sent"]
                comm_ms += snapshot["comm_time_ms"]
            report["net_messages"] = messages
            report["net_bytes"] = nbytes
            report["net_comm_time_ms"] = round(comm_ms, 3)
        return report

    def reset_accounting(self) -> None:
        """Zero all counters (data is untouched)."""
        self.storage.reset_accounting()
        self.access.counters.reset()
        for stats in self._network_stats:
            stats.reset()
